"""Setup shim for offline editable installs.

The environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build an
editable wheel.  ``python setup.py develop`` provides the equivalent
egg-link editable install using only setuptools.
"""

from setuptools import setup

setup()
