"""Unit tests for the statistics engine (repro.sim.stats)."""

import math

import pytest

from repro.sim import Accumulator, CategoryCounter, Environment, Histogram, TimeWeighted


class TestAccumulator:
    def test_empty_mean_is_zero(self):
        assert Accumulator().mean() == 0.0

    def test_mean_of_known_values(self):
        acc = Accumulator()
        for v in (1.0, 2.0, 3.0, 4.0):
            acc.add(v)
        assert acc.mean() == pytest.approx(2.5)

    def test_variance_matches_sample_variance(self):
        acc = Accumulator()
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for v in values:
            acc.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert acc.variance() == pytest.approx(var)

    def test_variance_of_single_value_is_zero(self):
        acc = Accumulator()
        acc.add(3.0)
        assert acc.variance() == 0.0

    def test_min_max_tracking(self):
        acc = Accumulator()
        for v in (5.0, -1.0, 3.0):
            acc.add(v)
        assert acc.min == -1.0
        assert acc.max == 5.0

    def test_stdev_is_sqrt_of_variance(self):
        acc = Accumulator()
        for v in (1.0, 3.0):
            acc.add(v)
        assert acc.stdev() == pytest.approx(math.sqrt(acc.variance()))

    def test_percentile_with_reservoir(self):
        acc = Accumulator(reservoir=1000)
        for v in range(100):
            acc.add(float(v))
        assert acc.percentile(50) == pytest.approx(49.5, abs=1.0)
        assert acc.percentile(0) == 0.0
        assert acc.percentile(100) == 99.0

    def test_percentile_without_reservoir_falls_back_to_mean(self):
        acc = Accumulator()
        acc.add(10.0)
        acc.add(20.0)
        assert acc.percentile(99) == pytest.approx(15.0)

    def test_reservoir_percentiles_unbiased_on_long_ramp(self):
        """Regression: the old 'systematic reservoir' recomputed its
        stride each sample and overwrote slot ``seen % cap``, keeping a
        late-heavy biased sample.  Feeding a monotone ramp (worst case
        for order bias) must now estimate percentiles of the *whole*
        stream within a few percent."""
        n, cap = 100_000, 500
        acc = Accumulator(reservoir=cap)
        for i in range(n):
            acc.add(float(i))
        for q in (10, 25, 50, 75, 90):
            true_value = (q / 100.0) * (n - 1)
            assert acc.percentile(q) == pytest.approx(
                true_value, rel=0.03
            ), f"p{q} biased"

    def test_reservoir_covers_whole_stream_evenly(self):
        """The retained sample must span early *and* late observations
        with an even stride, not just the head plus sporadic tail."""
        n, cap = 20_000, 128
        acc = Accumulator(reservoir=cap)
        for i in range(n):
            acc.add(float(i))
        sample = sorted(acc._reservoir)
        assert len(sample) <= cap
        assert sample[0] == 0.0
        assert sample[-1] >= n * 0.85
        gaps = [b - a for a, b in zip(sample, sample[1:])]
        assert max(gaps) == min(gaps)  # perfectly even systematic stride

    def test_reservoir_is_deterministic(self):
        """Two accumulators fed the same stream keep identical samples
        (no RNG is consumed — simulation reproducibility)."""
        a, b = Accumulator(reservoir=64), Accumulator(reservoir=64)
        values = [((i * 2654435761) % 1000) / 7.0 for i in range(5000)]
        for v in values:
            a.add(v)
            b.add(v)
        assert a._reservoir == b._reservoir
        assert a.percentile(95) == b.percentile(95)

    def test_reservoir_reset_restarts_stride(self):
        acc = Accumulator(reservoir=16)
        for i in range(1000):
            acc.add(float(i))
        acc.reset()
        for i in range(8):
            acc.add(float(i))
        # After a reset the accumulator samples densely again.
        assert acc._reservoir == [float(i) for i in range(8)]

    def test_reset(self):
        acc = Accumulator(reservoir=10)
        acc.add(42.0)
        acc.reset()
        assert acc.count == 0
        assert acc.mean() == 0.0

    def test_welford_numerical_stability(self):
        acc = Accumulator()
        base = 1e9
        for v in (base + 4, base + 7, base + 13, base + 16):
            acc.add(v)
        assert acc.mean() == pytest.approx(base + 10)
        assert acc.variance() == pytest.approx(30.0)


class TestTimeWeighted:
    def test_constant_level(self):
        env = Environment()
        tw = TimeWeighted(env, level=3.0)
        env.run(until=10.0)
        assert tw.mean() == pytest.approx(3.0)

    def test_step_function_average(self):
        env = Environment()
        tw = TimeWeighted(env, level=0.0)

        def proc(env):
            yield env.timeout(4.0)
            tw.record(2.0)
            yield env.timeout(6.0)
            tw.record(0.0)

        env.process(proc(env))
        env.run(until=10.0)
        # 4 time units at 0, 6 at 2 -> mean 1.2
        assert tw.mean() == pytest.approx(1.2)

    def test_integral(self):
        env = Environment()
        tw = TimeWeighted(env, level=5.0)
        env.run(until=4.0)
        assert tw.integral() == pytest.approx(20.0)

    def test_reset_keeps_level(self):
        env = Environment()
        tw = TimeWeighted(env, level=7.0)
        env.run(until=5.0)
        tw.reset()
        env.run(until=10.0)
        assert tw.mean() == pytest.approx(7.0)

    def test_zero_span_returns_level(self):
        env = Environment()
        tw = TimeWeighted(env, level=9.0)
        assert tw.mean() == 9.0


class TestHistogram:
    def test_basic_binning(self):
        h = Histogram(0.0, 10.0, 10)
        for v in (0.5, 1.5, 1.7, 9.9):
            h.add(v)
        assert h.counts[0] == 1
        assert h.counts[1] == 2
        assert h.counts[9] == 1

    def test_underflow_overflow(self):
        h = Histogram(0.0, 10.0, 5)
        h.add(-1.0)
        h.add(10.0)
        h.add(99.0)
        assert h.underflow == 1
        assert h.overflow == 2
        assert h.total == 3

    def test_bin_edges(self):
        h = Histogram(0.0, 4.0, 4)
        assert h.bin_edges() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            Histogram(5.0, 5.0, 4)
        with pytest.raises(ValueError):
            Histogram(0.0, 5.0, 0)

    def test_reset(self):
        h = Histogram(0.0, 1.0, 2)
        h.add(0.5)
        h.reset()
        assert h.total == 0
        assert sum(h.counts) == 0


class TestCategoryCounter:
    def test_add_and_get(self):
        c = CategoryCounter()
        c.add("hit")
        c.add("hit")
        c.add("miss")
        assert c.get("hit") == 2
        assert c.get("miss") == 1
        assert c.get("unknown") == 0

    def test_ratio(self):
        c = CategoryCounter()
        c.add("hit", 3)
        c.add("miss", 1)
        assert c.ratio("hit") == pytest.approx(0.75)

    def test_ratio_empty_counter(self):
        assert CategoryCounter().ratio("anything") == 0.0

    def test_as_dict_copy(self):
        c = CategoryCounter()
        c.add("a")
        d = c.as_dict()
        d["a"] = 99
        assert c.get("a") == 1

    def test_reset(self):
        c = CategoryCounter()
        c.add("x")
        c.reset()
        assert c.total() == 0
