"""Scheduler-backend tests: heap vs calendar equivalence, sequence
monotonicity, and cancellation/compaction under the bucketed structure.

The central contract of the pluggable-scheduler refactor is that both
backends produce *bit-identical* ``(time, seq)`` dispatch order for any
workload.  ``Environment(trace=True)`` records exactly that order (and
disables the solo-slot short circuit so every event flows through the
structure), which makes the contract directly checkable: run the same
deterministic workload under both backends and compare the traces.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment, Interrupt
from repro.sim.core import Timeout
from repro.sim.scheduler import (
    CalendarScheduler,
    HeapScheduler,
    make_scheduler,
)

BACKENDS = ["heap", "calendar"]


# ---------------------------------------------------------------------------
# Backend selection plumbing
# ---------------------------------------------------------------------------

def test_make_scheduler_resolves_names_types_and_instances():
    assert isinstance(make_scheduler("heap"), HeapScheduler)
    assert isinstance(make_scheduler("calendar"), CalendarScheduler)
    assert isinstance(make_scheduler(HeapScheduler), HeapScheduler)
    inst = CalendarScheduler()
    assert make_scheduler(inst) is inst


def test_make_scheduler_env_var_default(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "heap")
    assert isinstance(make_scheduler(None), HeapScheduler)
    monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
    assert isinstance(make_scheduler(None), CalendarScheduler)
    monkeypatch.delenv("REPRO_SCHEDULER")
    assert isinstance(make_scheduler(None), CalendarScheduler)


def test_make_scheduler_rejects_unknown_name():
    with pytest.raises(ValueError):
        make_scheduler("splay-tree")


def test_environment_exposes_backend():
    assert Environment(scheduler="heap").scheduler.name == "heap"
    assert Environment(scheduler="calendar").scheduler.name == "calendar"


# ---------------------------------------------------------------------------
# Satellite: _seq strictly monotone across both scheduling paths
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_seq_strictly_monotone_across_both_paths(backend):
    """``Environment.schedule`` (explicit events) and the inlined
    ``timeout`` insert share one ``_insert`` choke point; the sequence
    counter must advance strictly monotonically over any interleaving
    of the two paths."""
    env = Environment(scheduler=backend, trace=True)
    rng = random.Random(42)
    seq_after = []
    for _ in range(300):
        if rng.random() < 0.5:
            env.timeout(rng.random() * 5.0)
        else:
            env.event().succeed(None)  # goes through schedule()
        seq_after.append(env._seq)
    # One fresh, strictly larger sequence number per scheduling call.
    assert seq_after == list(range(1, 301))
    env.run()
    # Dispatch consumed each entry exactly once, in (time, seq) order.
    tr = env.trace
    assert sorted(seq for _, seq in tr) == list(range(1, 301))
    assert tr == sorted(tr)


@pytest.mark.parametrize("backend", BACKENDS)
def test_seq_monotone_across_solo_flush(backend):
    """The solo slot defers the sequence assignment of a lone timeout;
    flushing it must still produce strictly ordered sequence numbers
    relative to the insert that triggered the flush."""
    env = Environment(scheduler=backend)
    fired = []

    def lone(env):
        # This timeout is parked in the solo slot (nothing else pending).
        t = env.timeout(5.0)
        assert env._solo is t
        # A second schedule flushes it; both must dispatch in time order.
        u = env.timeout(1.0)
        assert env._solo is None
        got = yield u
        fired.append(("u", env.now))
        yield t
        fired.append(("t", env.now))

    env.process(lone(env))
    env.run()
    assert fired == [("u", 1.0), ("t", 5.0)]
    assert env._seq >= 2


# ---------------------------------------------------------------------------
# Satellite: cancellation / compaction under the bucketed structure
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_ninety_percent_cancelled_dispatches_survivors_in_order(backend):
    """A structure that is 90% cancelled must still dispatch the
    surviving 10% in exact (time, seq) order."""
    env = Environment(scheduler=backend, trace=True)
    rng = random.Random(7)

    def waiter(env, delay):
        try:
            yield env.timeout(delay)
        except Interrupt:
            pass

    procs = []
    for i in range(400):
        delay = rng.choice([1.0, 2.0, 2.0, 3.0, 1.0 + rng.random() * 3.0])
        procs.append((env.process(waiter(env, delay)), i))
    # Interrupt 90% of them at t=0.5 (before any timeout fires).
    doomed = set(idx for _, idx in procs if idx % 10 != 0)

    def attacker(env):
        yield env.timeout(0.5)
        for p, idx in procs:
            if idx in doomed and p.is_alive:
                p.interrupt()

    env.process(attacker(env))
    env.run()
    for p, idx in procs:
        assert not p.is_alive
    # The trace records every live dispatch as (time, seq): it must be
    # sorted under exactly the (time, seq) ordering contract.
    tr = env.trace
    assert tr == sorted(tr)


def test_cancelled_entries_do_not_pin_empty_buckets():
    """Calendar-queue specific: compaction must delete buckets emptied
    by cancellation, not leave them to be scanned at dispatch time."""
    env = Environment(scheduler="calendar")

    def victim(env, delay):
        try:
            yield env.timeout(delay)
        except Interrupt:
            pass

    # 500 distinct far-future buckets, all cancelled.
    victims = [env.process(victim(env, 1000.0 + i)) for i in range(500)]

    def attacker(env):
        yield env.timeout(1.0)
        for v in victims:
            v.interrupt()

    env.process(attacker(env))
    env.run(until=2.0)
    sched = env.scheduler
    # Compaction swept the cancelled entries and their buckets.
    assert len(sched) < 250
    assert len(sched._buckets) < 250
    assert len(sched._times) == len(sched._buckets)
    # And the survivors still drain cleanly.
    env.run()
    assert all(not v.is_alive for v in victims)
    assert len(sched._buckets) == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_compaction_preserves_revived_events(backend):
    """An event cancelled and then re-awaited (revived) must still fire
    at its original time even though compaction ran in between."""
    env = Environment(scheduler=backend)
    shared = env.timeout(50.0, value="late")

    def victim(env):
        try:
            yield shared
        except Interrupt:
            pass

    v = env.process(victim(env))
    fired = []

    def attacker(env):
        yield env.timeout(1.0)
        v.interrupt()
        # shared is now cancelled; re-subscribe before compaction.
        value = yield shared
        fired.append((env.now, value))

    env.process(attacker(env))
    env.run()
    assert fired == [(50.0, "late")]


# ---------------------------------------------------------------------------
# Same-instant cohort semantics (calendar batched dispatch)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_same_instant_cohort_fifo(backend):
    """All events at one timestamp dispatch in creation (seq) order,
    including events appended to the instant *while it is draining*."""
    env = Environment(scheduler=backend)
    order = []

    def job(env, tag):
        yield env.timeout(1.0)
        order.append(tag)
        if tag < 3:
            # Schedule another zero-delay event at the same instant.
            env.process(tail(env, tag))

    def tail(env, tag):
        yield env.timeout(0.0)
        order.append(("tail", tag))

    for tag in range(5):
        env.process(job(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4, ("tail", 0), ("tail", 1), ("tail", 2)]


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_until_event_mid_cohort_then_resume(backend):
    """run(until=event) may stop in the middle of a same-instant cohort;
    a subsequent run must finish the rest of the cohort in order."""
    env = Environment(scheduler=backend)
    order = []

    def make(tag):
        ev = env.event()
        ev._ok = True
        ev.callbacks.append(lambda e, t=tag: order.append(t))
        env.schedule(ev, 1.0)
        return ev

    for tag in range(3):
        make(tag)
    sentinel = env.timeout(1.0)
    for tag in range(3, 6):
        make(tag)
    env.run(until=sentinel)
    # Stopped mid-cohort: 3..5 share the instant but have larger seqs.
    assert order == [0, 1, 2]
    assert env.peek() == 1.0
    env.run()
    assert order == [0, 1, 2, 3, 4, 5]


# ---------------------------------------------------------------------------
# The scheduler-equivalence oracle (hypothesis property test)
# ---------------------------------------------------------------------------

_ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["spawn", "interrupt", "chain", "burst"]),
        st.integers(min_value=0, max_value=9),
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False,
                  allow_infinity=False, width=32),
    ),
    min_size=1,
    max_size=40,
)


def _drive(backend, actions):
    """Run one deterministic workload built from ``actions`` and return
    the full (time, seq) dispatch trace plus an observable event log."""
    env = Environment(scheduler=backend, trace=True)
    log = []
    procs = {}

    def sleeper(env, key, delay):
        try:
            yield env.timeout(delay)
            log.append(("woke", key, env.now))
        except Interrupt:
            log.append(("interrupted", key, env.now))

    def chained(env, key, delay):
        # Two sequential waits; same-instant when delay == 0.
        try:
            yield env.timeout(delay)
            yield env.timeout(delay)
            log.append(("chained", key, env.now))
        except Interrupt:
            log.append(("interrupted", key, env.now))

    def burst(env, key, delay):
        # A fan-out of simultaneous events.
        try:
            for i in range(3):
                env.process(sleeper(env, (key, i), delay))
            yield env.timeout(delay)
            log.append(("burst", key, env.now))
        except Interrupt:
            log.append(("interrupted", key, env.now))

    def driver(env):
        for kind, slot, delay in actions:
            if kind == "spawn":
                procs[slot] = env.process(sleeper(env, slot, delay))
            elif kind == "chain":
                procs[slot] = env.process(chained(env, slot, delay))
            elif kind == "burst":
                procs[slot] = env.process(burst(env, slot, delay))
            elif kind == "interrupt":
                p = procs.get(slot)
                if p is not None and p.is_alive:
                    p.interrupt()
            yield env.timeout(delay * 0.25)

    env.process(driver(env))
    env.run()
    return list(env.trace), log


@settings(max_examples=60, deadline=None)
@given(actions=_ACTIONS)
def test_scheduler_equivalence_oracle(actions):
    """Random schedule/cancel/interrupt workloads dispatch in an
    identical (time, seq) order on both backends."""
    heap_trace, heap_log = _drive("heap", actions)
    cal_trace, cal_log = _drive("calendar", actions)
    assert heap_trace == cal_trace
    assert heap_log == cal_log


@settings(max_examples=30, deadline=None)
@given(actions=_ACTIONS)
def test_solo_short_circuit_is_observably_equivalent(actions):
    """The solo-slot inline fire (enabled in production, disabled under
    trace=True) must not change any observable outcome."""

    def observable(trace_mode):
        env = Environment(scheduler="calendar", trace=trace_mode)
        log = []

        def sleeper(env, key, delay):
            try:
                yield env.timeout(delay)
                log.append(("woke", key, env.now))
            except Interrupt:
                log.append(("interrupted", key, env.now))

        procs = {}

        def driver(env):
            for kind, slot, delay in actions:
                if kind == "interrupt":
                    p = procs.get(slot)
                    if p is not None and p.is_alive:
                        p.interrupt()
                else:
                    procs[slot] = env.process(sleeper(env, slot, delay))
                yield env.timeout(delay * 0.25)

        env.process(driver(env))
        env.run()
        return log, env.now

    assert observable(True) == observable(False)


# ---------------------------------------------------------------------------
# Timeout pooling safety
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_pooling_never_recycles_a_referenced_timeout(backend):
    """A timeout the user still holds must keep its documented final
    state (processed, value intact) instead of being recycled."""
    env = Environment(scheduler=backend)
    held = []

    def proc(env):
        for i in range(50):
            t = env.timeout(1.0, value=i)
            held.append(t)
            got = yield t
            assert got == i

    env.process(proc(env))
    env.run()
    assert all(t.processed for t in held)
    assert [t.value for t in held] == list(range(50))
    assert len(set(map(id, held))) == 50  # no aliasing of held objects


@pytest.mark.parametrize("backend", BACKENDS)
def test_pooled_timeouts_are_fresh_per_wait(backend):
    """Anonymous timeouts may be recycled internally, but each wait
    observes its own delay and value."""
    env = Environment(scheduler=backend)
    seen = []

    def proc(env):
        for i in range(100):
            got = yield env.timeout(0.5, value=i * 2)
            seen.append((env.now, got))

    env.process(proc(env))
    env.run()
    assert seen == [(0.5 * (i + 1), i * 2) for i in range(100)]


def test_pool_is_type_exact():
    """Timeout subclasses (fused service events) must never enter the
    one-slot pool: a later env.timeout() would hand back the subclass."""
    from repro.sim.resources import Resource

    env = Environment()
    res = Resource(env, capacity=1)

    def proc(env):
        yield res.serve_event(lambda: 1.0)
        t = env.timeout(1.0)
        assert type(t) is Timeout
        yield t

    env.process(proc(env))
    env.run()
    assert env.now == 2.0
