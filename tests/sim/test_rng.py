"""Unit tests for reproducible random streams (repro.sim.rng)."""

import pytest

from repro.sim import RandomStreams
from repro.sim.rng import hash_name


def test_same_seed_same_sequence():
    a = RandomStreams(seed=123)
    b = RandomStreams(seed=123)
    seq_a = [a.exponential("x", 1.0) for _ in range(20)]
    seq_b = [b.exponential("x", 1.0) for _ in range(20)]
    assert seq_a == seq_b


def test_different_seeds_differ():
    a = RandomStreams(seed=1)
    b = RandomStreams(seed=2)
    assert [a.uniform("u", 0, 1) for _ in range(5)] != [
        b.uniform("u", 0, 1) for _ in range(5)
    ]


def test_streams_are_independent():
    """Drawing from stream A must not perturb stream B."""
    a = RandomStreams(seed=9)
    b = RandomStreams(seed=9)
    # Interleave extra draws on an unrelated stream in `a` only.
    seq_a = []
    for _ in range(10):
        a.exponential("noise", 1.0)
        seq_a.append(a.uniform("signal", 0, 1))
    seq_b = [b.uniform("signal", 0, 1) for _ in range(10)]
    assert seq_a == seq_b


def test_exponential_mean():
    streams = RandomStreams(seed=5)
    n = 20000
    total = sum(streams.exponential("e", 2.5) for _ in range(n))
    assert total / n == pytest.approx(2.5, rel=0.05)


def test_exponential_zero_mean_returns_zero():
    streams = RandomStreams(seed=5)
    assert streams.exponential("e", 0.0) == 0.0


def test_uniform_int_bounds():
    streams = RandomStreams(seed=5)
    values = {streams.uniform_int("i", 3, 7) for _ in range(500)}
    assert values == {3, 4, 5, 6, 7}


def test_bernoulli_extremes():
    streams = RandomStreams(seed=5)
    assert streams.bernoulli("b", 0.0) is False
    assert streams.bernoulli("b", 1.0) is True


def test_bernoulli_probability():
    streams = RandomStreams(seed=5)
    n = 20000
    hits = sum(streams.bernoulli("b", 0.3) for _ in range(n))
    assert hits / n == pytest.approx(0.3, abs=0.02)


def test_choice_weighted_distribution():
    streams = RandomStreams(seed=5)
    n = 30000
    counts = [0, 0, 0]
    for _ in range(n):
        counts[streams.choice_weighted("c", [1.0, 2.0, 1.0])] += 1
    assert counts[0] / n == pytest.approx(0.25, abs=0.02)
    assert counts[1] / n == pytest.approx(0.50, abs=0.02)


def test_choice_weighted_rejects_bad_weights():
    streams = RandomStreams(seed=5)
    with pytest.raises(ValueError):
        streams.choice_weighted("c", [0.0, 0.0])
    with pytest.raises(ValueError):
        streams.choice_weighted("c", [-1.0, 2.0])


def test_geometric_like_size_minimum():
    streams = RandomStreams(seed=5)
    values = [streams.geometric_like_size("s", 10.0) for _ in range(2000)]
    assert min(values) >= 1
    assert sum(values) / len(values) == pytest.approx(10.0, rel=0.15)


def test_geometric_like_size_small_mean():
    streams = RandomStreams(seed=5)
    assert streams.geometric_like_size("s", 1.0) == 1


def test_zipf_in_range():
    streams = RandomStreams(seed=5)
    for _ in range(1000):
        rank = streams.zipf("z", 100, 0.8)
        assert 0 <= rank < 100


def test_zipf_skewed_toward_low_ranks():
    streams = RandomStreams(seed=5)
    n = 20000
    low = sum(1 for _ in range(n) if streams.zipf("z", 1000, 0.9) < 100)
    # With theta=0.9 far more than 10% of mass is on the first 10% of ranks.
    assert low / n > 0.3


def test_zipf_single_item():
    streams = RandomStreams(seed=5)
    assert streams.zipf("z", 1, 0.5) == 0


def test_spawn_child_is_deterministic():
    a = RandomStreams(seed=77).spawn("child")
    b = RandomStreams(seed=77).spawn("child")
    assert [a.uniform("u", 0, 1) for _ in range(5)] == [
        b.uniform("u", 0, 1) for _ in range(5)
    ]


def test_hash_name_stability():
    # FNV-1a of "abc" is a fixed, documented value.
    assert hash_name("abc") == 0xE71FA2190541574B
    assert hash_name("") == 0xCBF29CE484222325


def test_shuffle_is_reproducible():
    a = RandomStreams(seed=3)
    b = RandomStreams(seed=3)
    items_a = list(range(10))
    items_b = list(range(10))
    a.shuffle("sh", items_a)
    b.shuffle("sh", items_b)
    assert items_a == items_b
