"""Unit tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_environment_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_environment_custom_initial_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_time():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(3.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [3.5]


def test_timeout_value_passthrough():
    env = Environment()
    got = []

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        got.append(value)

    env.process(proc(env))
    env.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_zero_timeout_runs_in_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(0.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_are_deterministic():
    env = Environment()
    order = []

    def proc(env, tag, delay):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, "first", 2.0))
    env.process(proc(env, "second", 2.0))
    env.run()
    assert order == ["first", "second"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_past_time_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return 42

    result = env.run(until=env.process(proc(env)))
    assert result == 42
    assert env.now == 2.0


def test_run_until_event_never_fires_raises():
    env = Environment()
    orphan = env.event()
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_process_waits_for_process():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(3.0)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        log.append((env.now, result))

    env.process(parent(env))
    env.run()
    assert log == [(3.0, "done")]


def test_process_return_value_via_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return {"answer": 7}

    assert env.run(until=env.process(proc(env))) == {"answer": 7}


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter(env):
        value = yield gate
        log.append((env.now, value))

    def opener(env):
        yield env.timeout(4.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert log == [(4.0, "open")]


def test_event_double_succeed_raises():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_event_fail_propagates_into_process():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unhandled_failure_raises_from_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(proc(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_yielding_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_waiting_on_already_processed_event():
    env = Environment()
    log = []

    def proc(env):
        done = env.timeout(0.0, value="early")
        yield env.timeout(5.0)
        # `done` processed long ago; waiting must return immediately.
        value = yield done
        log.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert log == [(5.0, "early")]


def test_interrupt_during_timeout():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
            log.append("finished")
        except Interrupt as intr:
            log.append(("interrupted", env.now, intr.cause))

    def attacker(env, target):
        yield env.timeout(2.0)
        target.interrupt(cause="deadlock")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [("interrupted", 2.0, "deadlock")]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    def attacker(env, target):
        yield env.timeout(5.0)
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [6.0]


def test_is_alive_reflects_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_all_of_waits_for_everything():
    env = Environment()
    log = []

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        results = yield AllOf(env, [t1, t2])
        log.append((env.now, sorted(results.values())))

    env.process(proc(env))
    env.run()
    assert log == [(3.0, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    log = []

    def proc(env):
        yield AllOf(env, [])
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [0.0]


def test_any_of_fires_on_first():
    env = Environment()
    log = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(9.0, value="slow")
        results = yield AnyOf(env, [t1, t2])
        log.append((env.now, list(results.values())))

    env.process(proc(env))
    env.run(until=20.0)
    assert log == [(1.0, ["fast"])]


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_heap_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_nested_yield_from_composition():
    env = Environment()
    log = []

    def inner(env):
        yield env.timeout(2.0)
        return "inner-result"

    def outer(env):
        value = yield from inner(env)
        log.append((env.now, value))
        yield env.timeout(1.0)
        log.append(env.now)

    env.process(outer(env))
    env.run()
    assert log == [(2.0, "inner-result"), 3.0]


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value
