"""Unit tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_environment_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_environment_custom_initial_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_time():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(3.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [3.5]


def test_timeout_value_passthrough():
    env = Environment()
    got = []

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        got.append(value)

    env.process(proc(env))
    env.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_zero_timeout_runs_in_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(0.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_are_deterministic():
    env = Environment()
    order = []

    def proc(env, tag, delay):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, "first", 2.0))
    env.process(proc(env, "second", 2.0))
    env.run()
    assert order == ["first", "second"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_past_time_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return 42

    result = env.run(until=env.process(proc(env)))
    assert result == 42
    assert env.now == 2.0


def test_run_until_event_never_fires_raises():
    env = Environment()
    orphan = env.event()
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_process_waits_for_process():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(3.0)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        log.append((env.now, result))

    env.process(parent(env))
    env.run()
    assert log == [(3.0, "done")]


def test_process_return_value_via_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return {"answer": 7}

    assert env.run(until=env.process(proc(env))) == {"answer": 7}


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter(env):
        value = yield gate
        log.append((env.now, value))

    def opener(env):
        yield env.timeout(4.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert log == [(4.0, "open")]


def test_event_double_succeed_raises():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_event_fail_propagates_into_process():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unhandled_failure_raises_from_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(proc(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_yielding_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_waiting_on_already_processed_event():
    env = Environment()
    log = []

    def proc(env):
        done = env.timeout(0.0, value="early")
        yield env.timeout(5.0)
        # `done` processed long ago; waiting must return immediately.
        value = yield done
        log.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert log == [(5.0, "early")]


def test_interrupt_during_timeout():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
            log.append("finished")
        except Interrupt as intr:
            log.append(("interrupted", env.now, intr.cause))

    def attacker(env, target):
        yield env.timeout(2.0)
        target.interrupt(cause="deadlock")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [("interrupted", 2.0, "deadlock")]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    def attacker(env, target):
        yield env.timeout(5.0)
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [6.0]


def test_is_alive_reflects_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_all_of_waits_for_everything():
    env = Environment()
    log = []

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        results = yield AllOf(env, [t1, t2])
        log.append((env.now, sorted(results.values())))

    env.process(proc(env))
    env.run()
    assert log == [(3.0, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    log = []

    def proc(env):
        yield AllOf(env, [])
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [0.0]


def test_any_of_fires_on_first():
    env = Environment()
    log = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(9.0, value="slow")
        results = yield AnyOf(env, [t1, t2])
        log.append((env.now, list(results.values())))

    env.process(proc(env))
    env.run(until=20.0)
    assert log == [(1.0, ["fast"])]


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_heap_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_nested_yield_from_composition():
    env = Environment()
    log = []

    def inner(env):
        yield env.timeout(2.0)
        return "inner-result"

    def outer(env):
        value = yield from inner(env)
        log.append((env.now, value))
        yield env.timeout(1.0)
        log.append(env.now)

    env.process(outer(env))
    env.run()
    assert log == [(2.0, "inner-result"), 3.0]


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


# -- Environment.run edge cases ------------------------------------------


def test_simultaneous_events_exactly_at_float_horizon():
    env = Environment()
    log = []

    def proc(env, tag):
        yield env.timeout(2.5)
        log.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run(until=2.5)
    assert log == ["a", "b", "c"]
    assert env.now == 2.5


def test_zero_delay_chain_spawned_at_horizon_still_runs():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(2.5)
        yield env.timeout(0.0)  # lands exactly on the horizon
        log.append(env.now)

    env.process(proc(env))
    env.run(until=2.5)
    assert log == [2.5]


def test_run_until_event_that_fails_raises():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise KeyError("kaboom")

    with pytest.raises(KeyError, match="kaboom"):
        env.run(until=env.process(proc(env)))


def test_run_until_failed_and_processed_event_raises():
    env = Environment()
    gate = env.event()
    gate.fail(RuntimeError("late"))
    gate.defuse()
    env.run()  # processes the failed (defused) event
    with pytest.raises(RuntimeError, match="late"):
        env.run(until=gate)


def test_fifo_of_same_time_events_across_fast_path():
    """Timeouts (fast path) and plain events (generic path) landing at
    the same instant must still dispatch in creation order."""
    env = Environment()
    order = []

    def waiter(env, ev, tag):
        yield ev
        order.append(tag)

    def sleeper(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    e1 = env.event()
    env.process(waiter(env, e1, "event-1"))
    env.process(sleeper(env, "timeout-1"))
    e2 = env.event()
    env.process(waiter(env, e2, "event-2"))
    env.process(sleeper(env, "timeout-2"))

    def trigger(env):
        yield env.timeout(1.0)
        # succeed() schedules at the current instant, after the
        # already-scheduled timeouts.
        e1.succeed()
        e2.succeed()

    env.process(trigger(env))
    env.run()
    assert order == ["timeout-1", "timeout-2", "event-1", "event-2"]


# -- cancellation-aware scheduling ---------------------------------------


def test_interrupted_timeout_is_dropped_from_dispatch():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass

    def attacker(env, target):
        yield env.timeout(1.0)
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    # The abandoned timeout surfaced at t=100 as a no-op; no crash, no
    # resurrection of the victim.
    assert not target.is_alive


def test_mass_interrupt_compacts_heap():
    env = Environment()
    victims = []

    def victim(env):
        try:
            yield env.timeout(1_000_000.0)
        except Interrupt:
            pass

    def attacker(env):
        yield env.timeout(1.0)
        for v in victims:
            v.interrupt()

    victims = [env.process(victim(env)) for _ in range(500)]
    env.process(attacker(env))
    env.run(until=2.0)
    # All 500 far-future waits were cancelled; compaction must have
    # removed nearly all of them instead of dragging them to t=1e6.
    assert len(env.scheduler) < 250
    # Whatever survived compaction is dropped as a no-op at dispatch
    # (the clock still advances past it, as for any empty event).
    env.run()
    assert all(not v.is_alive for v in victims)


def test_cancelled_event_revived_by_new_waiter():
    """B subscribing to a timeout abandoned by interrupted A still
    wakes at the timeout's scheduled instant."""
    env = Environment()
    shared = env.timeout(10.0)
    log = []

    def a(env):
        try:
            yield shared
        except Interrupt:
            log.append(("a-interrupted", env.now))

    def b(env):
        yield env.timeout(1.0)
        yield shared
        log.append(("b-woke", env.now))

    def attacker(env, target):
        yield env.timeout(0.5)
        target.interrupt()

    pa = env.process(a(env))
    env.process(b(env))
    env.process(attacker(env, pa))
    env.run()
    assert log == [("a-interrupted", 0.5), ("b-woke", 10.0)]


def test_compacted_event_behaves_as_already_fired():
    """An abandoned wait collected by heap compaction delivers its value
    immediately to any later waiter (same contract as any past event)."""
    env = Environment()
    abandoned = []

    def victim(env, t):
        try:
            yield t
        except Interrupt:
            pass

    def attacker(env, targets):
        yield env.timeout(1.0)
        for v in targets:
            v.interrupt()

    timeouts = [env.timeout(1_000_000.0, value=i) for i in range(200)]
    targets = [env.process(victim(env, t)) for t in timeouts]
    env.process(attacker(env, targets))
    env.run(until=2.0)

    got = []

    def late_waiter(env):
        value = yield timeouts[0]
        got.append((env.now, value))

    env.process(late_waiter(env))
    env.run(until=3.0)
    assert got == [(2.0, 0)]
    assert not abandoned  # silence unused-var linters


def test_failed_event_with_no_waiters_still_raises_after_interrupt():
    """Cancellation must never swallow unhandled failure propagation:
    only successful events are dropped."""
    env = Environment()

    def child(env):
        yield env.timeout(2.0)
        raise RuntimeError("child failed")

    def parent(env, target):
        try:
            yield target
        except Interrupt:
            pass

    def attacker(env, target):
        yield env.timeout(1.0)
        target.interrupt()

    c = env.process(child(env))
    p = env.process(parent(env, c))
    env.process(attacker(env, p))
    with pytest.raises(RuntimeError, match="child failed"):
        env.run()


def test_abandoning_scheduled_failure_does_not_cancel_it():
    """Interrupting the only waiter of an already-scheduled *failed*
    event must not mark it cancelled: its unhandled-failure raise from
    the event loop still has to happen."""
    env = Environment()

    def child(env):
        yield env.timeout(2.0)
        raise RuntimeError("child failed")

    def parent(env, target):
        try:
            yield target
        except Interrupt:
            pass

    def attacker(env, target):
        # Fires at the same instant the child fails, but *after* the
        # child's completion event is scheduled and *before* it is
        # processed — the abandoned event is triggered-but-unprocessed.
        yield env.timeout(2.0)
        target.interrupt()

    c = env.process(child(env))
    p = env.process(parent(env, c))
    env.process(attacker(env, p))
    with pytest.raises(RuntimeError, match="child failed"):
        env.run()


def test_interrupt_uses_single_bound_callback():
    """The cached resume callback must be the object sitting in the
    target's callback list, or interrupt() could not detach it."""
    env = Environment()

    def victim(env):
        yield env.timeout(50.0)

    p = env.process(victim(env))
    env.run(until=1.0)
    target = p.target
    assert target is not None
    assert p._resume_cb in target.callbacks
    p.interrupt()
    assert p._resume_cb not in target.callbacks
    with pytest.raises(Interrupt):
        env.run()
