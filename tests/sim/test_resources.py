"""Unit tests for queueing resources (repro.sim.resources)."""

import pytest

from repro.sim import Environment, Interrupt, PriorityResource, Resource, Store
from repro.sim.core import SimulationError


def test_resource_grants_immediately_when_free():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def proc(env):
        req = res.request()
        yield req
        log.append(env.now)
        res.release(req)

    env.process(proc(env))
    env.run()
    assert log == [0.0]


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def proc(env, tag, hold):
        req = res.request()
        yield req
        order.append((tag, env.now))
        yield env.timeout(hold)
        res.release(req)

    env.process(proc(env, "a", 2.0))
    env.process(proc(env, "b", 2.0))
    env.process(proc(env, "c", 2.0))
    env.run()
    assert order == [("a", 0.0), ("b", 2.0), ("c", 4.0)]


def test_resource_capacity_two_parallel_grants():
    env = Environment()
    res = Resource(env, capacity=2)
    order = []

    def proc(env, tag):
        req = res.request()
        yield req
        order.append((tag, env.now))
        yield env.timeout(1.0)
        res.release(req)

    for tag in "abc":
        env.process(proc(env, tag))
    env.run()
    assert order == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_release_without_grant_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        res.release(res.__class__ and _pending_request(env, res))


def _pending_request(env, res):
    """Produce a request that is queued, never granted."""
    holder = res.request()  # grabs the only unit
    assert holder.triggered
    waiting = res.request()
    assert not waiting.triggered
    return waiting


def test_double_release_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_cancel_waiting_request_skipped_on_grant():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def cancelled(env):
        req = res.request()
        yield env.timeout(1.0)  # give up before being granted
        res.cancel(req)

    def patient(env):
        req = res.request()
        yield req
        order.append(env.now)
        res.release(req)

    env.process(holder(env))
    env.process(cancelled(env))
    env.process(patient(env))
    env.run()
    assert order == [5.0]


def test_cancel_granted_request_behaves_like_release():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    assert res.users == 1
    res.cancel(req)
    assert res.users == 0


def test_queue_length_tracking():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    res.request()
    res.request()
    assert res.queue_length == 2


def test_monitor_utilization_single_server():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc(env):
        req = res.request()
        yield req
        yield env.timeout(4.0)
        res.release(req)

    env.process(proc(env))
    env.run(until=8.0)
    # Busy 4 of 8 time units -> 50% utilization.
    assert res.monitor.utilization(res.capacity) == pytest.approx(0.5)


def test_monitor_reset_clears_history():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc(env):
        req = res.request()
        yield req
        yield env.timeout(4.0)
        res.release(req)

    env.process(proc(env))
    env.run(until=4.0)
    res.monitor.reset()
    env.run(until=8.0)
    assert res.monitor.utilization(res.capacity) == pytest.approx(0.0)


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)

    def proc(env, tag, priority):
        req = res.request(priority=priority)
        yield req
        order.append(tag)
        res.release(req)

    env.process(holder(env))
    env.process(proc(env, "low", 10))
    env.process(proc(env, "high", 1))
    env.process(proc(env, "mid", 5))
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_resource_fifo_within_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)

    def proc(env, tag):
        req = res.request(priority=5)
        yield req
        order.append(tag)
        res.release(req)

    env.process(holder(env))
    for tag in ("first", "second", "third"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("x")
    got = []

    def consumer(env):
        item = yield store.get()
        got.append(item)

    env.process(consumer(env))
    env.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(3.0)
        store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(3.0, "late")]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    for item in (1, 2, 3):
        store.put(item)
    env.process(consumer(env))
    env.run()
    assert got == [1, 2, 3]


def test_store_len_reports_backlog():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    assert len(store) == 2


@pytest.mark.parametrize("cls", [Resource, PriorityResource])
def test_queue_length_excludes_cancelled_waiters(cls):
    """Regression: base Resource counted cancelled waiters in
    ``_queue_len`` while PriorityResource filtered them, so queue-length
    statistics disagreed between the two classes after ``cancel()``.
    Both must now report only live waiters."""
    env = Environment()
    res = cls(env, capacity=1)
    holder = res.request()
    assert holder.triggered
    waiting = [res.request() for _ in range(4)]
    assert res.queue_length == 4
    res.cancel(waiting[1])
    res.cancel(waiting[2])
    assert res.queue_length == 2


@pytest.mark.parametrize("cls", [Resource, PriorityResource])
def test_queue_stats_identical_under_cancellation(cls):
    """The monitored queue level after cancellations must equal the live
    queue length — not the raw backlog including cancelled entries."""
    env = Environment()
    res = cls(env, capacity=1)

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(4.0)
        res.release(req)

    def quitter(env):
        req = res.request()
        yield env.timeout(1.0)
        res.cancel(req)
        # After the cancel the only recorded queue level is the one
        # live waiter below.
        assert res.monitor.queue.level == 1

    def patient(env):
        req = res.request()
        yield req
        res.release(req)

    env.process(holder(env))
    env.process(quitter(env))
    env.process(patient(env))
    env.run()
    assert res.queue_length == 0


def test_fifo_and_priority_queue_stats_agree_under_cancellation():
    """Drive both disciplines through the identical cancel scenario and
    compare the recorded time-weighted queue means."""

    def drive(cls):
        env = Environment()
        res = cls(env, capacity=1)

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(8.0)
            res.release(req)

        def quitter(env):
            req = res.request()
            yield env.timeout(2.0)
            res.cancel(req)

        def patient(env):
            req = res.request()
            yield req
            res.release(req)

        env.process(holder(env))
        env.process(quitter(env))
        env.process(patient(env))
        env.run(until=8.0)
        return res.monitor.mean_queue_length()

    fifo = drive(Resource)
    prio = drive(PriorityResource)
    assert fifo == pytest.approx(prio)
    # 2 waiters for 2s, then 1 waiter for 6s -> mean 10/8.
    assert fifo == pytest.approx(10.0 / 8.0)


def test_interrupt_withdraws_queued_request():
    """Kernel-level regression: interrupting a process blocked on
    ``request()`` must withdraw the request — it may never be granted
    to the dead process, and no capacity unit may leak."""
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def victim(env):
        req = res.request()
        try:
            yield req
        except Interrupt:
            order.append(("interrupted", env.now))
            return
        order.append("victim-granted")  # pragma: no cover - the bug
        res.release(req)

    def patient(env):
        req = res.request()
        yield req
        order.append(("patient-granted", env.now))
        res.release(req)

    def attacker(env, target):
        yield env.timeout(1.0)
        target.interrupt()

    env.process(holder(env))
    v = env.process(victim(env))
    env.process(patient(env))
    env.process(attacker(env, v))
    env.run()
    assert order == [("interrupted", 1.0), ("patient-granted", 5.0)]
    assert res.users == 0
    assert res.queue_length == 0


def test_interrupt_of_granted_but_undelivered_request_releases_unit():
    """If the grant event is scheduled but not yet delivered when the
    requester is interrupted, the unit must return to the pool.

    (The attacker's pending same-instant start event is also what keeps
    the victim's grant on the heap-scheduled path rather than the
    synchronous fast path — the very window this test protects.)
    """
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def victim(env):
        req = res.request()  # granted immediately; delivery is pending
        assert req.triggered and not req.processed
        try:
            yield req
        except Interrupt:
            log.append("interrupted")

    def attacker(env, target):
        # Runs in the same timestep, after the victim requested (its
        # start event was created first) but before the grant event is
        # processed: the abandoned wait is triggered-but-undelivered.
        assert res.users == 1
        target.interrupt()
        return
        yield  # pragma: no cover - makes this a generator

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == ["interrupted"]
    assert res.users == 0

    def late(env):
        req = res.request()
        yield req
        log.append("late-granted")
        res.release(req)

    env.process(late(env))
    env.run()
    assert log == ["interrupted", "late-granted"]


def test_interrupt_of_release_granted_undelivered_request_releases_unit():
    """Same hazard created the other way the window can arise: a
    *queued* request granted by ``release()``, with the requester
    interrupted in the same timestep before the grant is delivered."""
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)  # schedules the victim's grant (undelivered)

    def victim(env):
        req = res.request()  # queued behind the holder
        assert not req.triggered
        try:
            yield req
        except Interrupt:
            log.append("interrupted")

    def attacker(env, target):
        # Created after the holder, so its timeout at t=1.0 pops after
        # the holder's release scheduled the grant — the abandoned wait
        # is triggered-but-undelivered.
        yield env.timeout(1.0)
        assert res.users == 1
        target.interrupt()

    env.process(holder(env))
    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == ["interrupted"]
    assert res.users == 0

    def late(env):
        req = res.request()
        yield req
        log.append("late-granted")
        res.release(req)

    env.process(late(env))
    env.run()
    assert log == ["interrupted", "late-granted"]


def test_interrupted_store_getter_does_not_swallow_items():
    """A blocked getter that is interrupted must leave the getter queue:
    the next put() hands its item to a live consumer instead."""
    env = Environment()
    store = Store(env)
    got = []

    def doomed(env):
        try:
            item = yield store.get()
        except Interrupt:
            got.append("interrupted")
            return
        got.append(("doomed", item))  # pragma: no cover - the bug

    def survivor(env):
        yield env.timeout(2.0)
        item = yield store.get()
        got.append(("survivor", item))

    def producer(env, target):
        yield env.timeout(1.0)
        target.interrupt()
        yield env.timeout(2.0)
        store.put("payload")

    d = env.process(doomed(env))
    env.process(survivor(env))
    env.process(producer(env, d))
    env.run()
    assert got == ["interrupted", ("survivor", "payload")]


class TestUncontendedFastGrant:
    """The synchronous-grant fast path of Resource.request()."""

    def test_request_granted_synchronously_when_idle(self):
        """Free unit + nothing pending at this instant: the request
        comes back already processed, with no heap traffic."""
        env = Environment()
        res = Resource(env, capacity=1)
        req = res.request()
        assert req.processed and req.callbacks is None
        assert req.value is req
        assert res.users == 1
        assert env.peek() == float("inf")  # no grant event scheduled
        res.release(req)
        assert res.users == 0
        assert res.monitor.requests == 1
        assert res.monitor.completions == 1

    def test_priority_resource_fast_grant(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        req = res.request(priority=3)
        assert req.processed and res.users == 1
        res.release(req)
        assert res.users == 0

    def test_same_instant_pending_event_defers_grant(self):
        """With another event pending at ``now`` the grant must go
        through the heap, preserving the historical dispatch order."""
        env = Environment()
        res = Resource(env, capacity=1)
        env.timeout(0.0)  # unrelated event at the current instant
        req = res.request()
        assert req.triggered and not req.processed
        assert res.users == 1

        order = []

        def waiter(env):
            yield req
            order.append("granted")

        env.process(waiter(env))
        env.run()
        assert order == ["granted"]

    def test_yield_of_fast_request_continues_synchronously(self):
        env = Environment()
        res = Resource(env, capacity=2)
        trace = []

        def proc(env):
            req = res.request()
            trace.append(("before-yield", env.now, req.processed))
            got = yield req
            trace.append(("after-yield", env.now, got is req))
            yield env.timeout(1.0)
            res.release(req)

        env.process(proc(env))
        env.run()
        assert trace == [("before-yield", 0.0, True),
                         ("after-yield", 0.0, True)]
        assert res.users == 0

    def test_interrupt_while_holding_fast_granted_unit(self):
        """Interrupting a process that holds a fast-granted unit must
        return the unit through the cancel-as-release path."""
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def victim(env):
            # Request at a quiet instant (other processes started at
            # t=0) so the grant takes the synchronous fast path.
            yield env.timeout(0.5)
            req = res.request()
            assert req.processed  # fast grant
            try:
                yield env.timeout(10.0)
            except Interrupt:
                res.cancel(req)
                log.append(("interrupted", env.now))
                return
            res.release(req)  # pragma: no cover - interrupted before

        def contender(env):
            yield env.timeout(2.0)
            req = res.request()
            yield req
            log.append(("contender-granted", env.now))
            res.release(req)

        v = env.process(victim(env))
        env.process(contender(env))

        def attacker(env):
            yield env.timeout(1.0)
            v.interrupt()

        env.process(attacker(env))
        env.run()
        assert log == [("interrupted", 1.0), ("contender-granted", 2.0)]
        assert res.users == 0

    def test_interrupt_during_serve_with_fast_grant(self):
        """serve() must return a fast-granted unit when its holder is
        torn down at the service-time yield."""
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def victim(env):
            try:
                yield from res.serve(lambda: 10.0)
            except Interrupt:
                log.append("interrupted")

        def attacker(env, target):
            yield env.timeout(1.0)
            target.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert log == ["interrupted"]
        assert res.users == 0
        assert res.queue_length == 0

    def test_double_release_of_fast_request_rejected(self):
        env = Environment()
        res = Resource(env, capacity=1)
        req = res.request()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_fast_granted_request_is_release(self):
        env = Environment()
        res = Resource(env, capacity=1)
        req = res.request()
        assert res.users == 1
        res.cancel(req)
        assert res.users == 0


def test_mm1_queue_matches_theory():
    """M/M/1 with rho=0.5: mean wait in queue Wq = rho/(mu-lambda)."""
    env = Environment()
    from repro.sim import RandomStreams

    streams = RandomStreams(seed=7)
    server = Resource(env, capacity=1)
    waits = []
    lam, mu = 0.5, 1.0

    def customer(env):
        arrived = env.now
        req = server.request()
        yield req
        waits.append(env.now - arrived)
        yield env.timeout(streams.exponential("svc", 1.0 / mu))
        server.release(req)

    def source(env):
        while True:
            yield env.timeout(streams.exponential("arr", 1.0 / lam))
            env.process(customer(env))

    env.process(source(env))
    env.run(until=40000.0)
    rho = lam / mu
    expected_wq = rho / (mu - lam)  # = 1.0
    measured = sum(waits) / len(waits)
    assert measured == pytest.approx(expected_wq, rel=0.10)


def test_mmc_queue_matches_erlang_c():
    """M/M/2 with rho=0.6 per server: compare against Erlang-C."""
    import math

    env = Environment()
    from repro.sim import RandomStreams

    streams = RandomStreams(seed=11)
    c, lam, mu = 2, 1.2, 1.0
    server = Resource(env, capacity=c)
    waits = []

    def customer(env):
        arrived = env.now
        req = server.request()
        yield req
        waits.append(env.now - arrived)
        yield env.timeout(streams.exponential("svc", 1.0 / mu))
        server.release(req)

    def source(env):
        while True:
            yield env.timeout(streams.exponential("arr", 1.0 / lam))
            env.process(customer(env))

    env.process(source(env))
    env.run(until=40000.0)

    a = lam / mu
    rho = a / c
    erlang_b = (a ** c / math.factorial(c)) / sum(
        a ** k / math.factorial(k) for k in range(c + 1)
    )
    erlang_c = erlang_b / (1 - rho + rho * erlang_b)
    expected_wq = erlang_c / (c * mu - lam)
    measured = sum(waits) / len(waits)
    assert measured == pytest.approx(expected_wq, rel=0.15)


def test_md1_queue_matches_theory():
    """M/D/1 with rho=0.6: Wq = rho*S / (2(1-rho)) (Pollaczek-Khinchine)."""
    env = Environment()
    from repro.sim import RandomStreams

    streams = RandomStreams(seed=13)
    server = Resource(env, capacity=1)
    waits = []
    lam, service = 0.6, 1.0

    def customer(env):
        arrived = env.now
        req = server.request()
        yield req
        waits.append(env.now - arrived)
        yield env.timeout(service)  # deterministic service
        server.release(req)

    def source(env):
        while True:
            yield env.timeout(streams.exponential("arr", 1.0 / lam))
            env.process(customer(env))

    env.process(source(env))
    env.run(until=40000.0)
    rho = lam * service
    expected_wq = rho * service / (2 * (1 - rho))  # = 0.75
    measured = sum(waits) / len(waits)
    assert measured == pytest.approx(expected_wq, rel=0.10)
