"""Tests for the sharded multi-node cluster (repro.cluster).

Covers the 2PC commit path end to end (local vs distributed commits,
NVEM-vs-disk log placement), coordinator-crash failover through the
GEM decision table, determinism, and the fingerprint contract that
keeps the content-addressed point cache honest about cluster knobs.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    PartitionMap,
    cluster_config,
    node_scheme,
)
from repro.cluster.workload import ShardedDebitCreditWorkload
from repro.core.fingerprint import fingerprint, point_fingerprint
from repro.distributed.messages import CouplingConfig


def build_cluster(num_nodes=2, log="nvem", rate=50.0, dist=0.15,
                  seed=1, **kwargs):
    config = cluster_config(scheme=node_scheme(log=log),
                            num_nodes=num_nodes, seed=seed, **kwargs)
    workload = ShardedDebitCreditWorkload.for_cluster(
        config, arrival_rate_per_node=rate, distributed_fraction=dist)
    return config, workload


def run_cluster(num_nodes=2, log="nvem", rate=50.0, dist=0.15,
                warmup=1.0, duration=4.0, seed=1, **kwargs):
    config, workload = build_cluster(num_nodes, log, rate, dist,
                                     seed=seed, **kwargs)
    system = config.build_system(workload, seed=seed)
    results = system.run(warmup=warmup, duration=duration)
    return results, system


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0).validate()
        with pytest.raises(ValueError):
            cluster_config(gem_failover_delay=-1.0)
        with pytest.raises(ValueError):
            cluster_config(checkpoint_interval=0.0)
        # Crash schedule: node id in range, instants increasing.
        with pytest.raises(ValueError):
            cluster_config(num_nodes=2, crash_schedule=((5, 1.0),))
        with pytest.raises(ValueError):
            cluster_config(num_nodes=2,
                           crash_schedule=((0, 2.0), (1, 1.0)))

    def test_node_scheme_log_placements(self):
        nvem = node_scheme(log="nvem")
        disk = node_scheme(log="disk")
        assert nvem.log.device != disk.log.device
        assert any(u.name == "log0" for u in disk.disk_units)
        with pytest.raises(ValueError):
            node_scheme(log="papyrus")

    def test_workload_validation(self):
        config = cluster_config(num_nodes=2)
        with pytest.raises(ValueError):
            ShardedDebitCreditWorkload.for_cluster(
                config, arrival_rate_per_node=0.0)
        with pytest.raises(ValueError):
            ShardedDebitCreditWorkload.for_cluster(
                config, arrival_rate_per_node=50.0,
                distributed_fraction=1.5)


class TestClusterRun:
    def test_two_nodes_commit_locally_and_distributed(self):
        results, system = run_cluster()
        assert results.committed > 50
        cluster = results.cluster
        assert cluster is not None
        assert results.nodes == 2
        assert cluster["local_commits"] > 0
        assert cluster["distributed_commits"] > 0
        assert 0.0 < results.dist_fraction < 0.5
        # Every distributed commit exchanged work/prepare/vote/decision.
        messages = system.message_stats()
        for kind in ("2pc_work", "2pc_prepare", "2pc_vote", "2pc_commit"):
            assert messages[kind] > 0
        assert messages["2pc_prepare"] == messages["2pc_vote"]
        # Per-node shares are measured-window deltas: they add up to
        # the cluster-wide committed count (no warmup leakage).
        shares = system.node_results()
        assert len(shares) == 2
        assert sum(s.committed for s in shares) == results.committed

    def test_single_node_has_no_distributed_work(self):
        results, system = run_cluster(num_nodes=1, dist=0.5)
        assert results.nodes == 1
        assert results.cluster["distributed_commits"] == 0
        assert results.dist_fraction == 0.0
        assert results.commit_phase_ms > 0.0  # 1PC still forces a log
        assert system.message_stats().get("messages", 0) == 0

    def test_nvem_log_beats_disk_log_on_commit_phase(self):
        """The paper's §4 effect, doubled by 2PC: prepare + decision
        records forced through NVEM cost microseconds; through one log
        disk per node they cost two rotational latencies."""
        nvem, _ = run_cluster(log="nvem", dist=0.25)
        disk, _ = run_cluster(log="disk", dist=0.25)
        assert nvem.commit_phase_ms < disk.commit_phase_ms / 5
        assert nvem.in_doubt_time < disk.in_doubt_time

    def test_dollars_per_tps_populated(self):
        results, _ = run_cluster()
        assert results.dollars_per_tps > 0
        assert results.cluster["cost_dollars"] > 0

    def test_deterministic(self):
        a, _ = run_cluster(seed=5)
        b, _ = run_cluster(seed=5)
        assert a == b
        assert a.cluster == b.cluster


class TestCoordinatorCrash:
    def test_in_doubt_pieces_resolve_via_gem_failover(self):
        """Crashing node 0 mid-run leaves participants on node 1 in
        doubt (prepared, locks held).  They must not wait out the full
        restart: after ``gem_failover_delay`` the injector resolves
        them from the GEM-mirrored decision table, while the crashed
        node replays its log and the availability clock runs."""
        results, system = run_cluster(
            log="disk", rate=60.0, dist=1.0,
            coupling=CouplingConfig.network_coupling(),
            crash_schedule=((0, 2.5),), checkpoint_interval=2.0,
            warmup=1.0, duration=6.0, seed=7)
        cluster = results.cluster
        assert cluster["failover_resolved"] > 0
        assert cluster["in_doubt_total"] > 0
        # The outage is bounded: the restart completed inside the
        # window, so availability and MTTR are both populated.
        assert 0.0 < results.availability < 1.0
        assert results.restart_time_mean > 0.0
        assert len(system.faults.restarts) == 1
        node_id, stats = system.faults.restarts[0]
        assert node_id == 0
        assert stats.redo_pages > 0
        # The surviving node kept committing during the outage.
        shares = {s.node_id: s.committed for s in system.node_results()}
        assert shares[1] > shares[0]

    def test_no_schedule_means_no_recovery_overhead(self):
        results, system = run_cluster()
        assert results.recovery is None
        assert all(n.checkpointer is None for n in system.nodes)


class TestClusterFingerprint:
    """The content-addressed cache must miss when cluster knobs change."""

    def test_node_count_change_misses_cache(self):
        cfg2, wl2 = build_cluster(num_nodes=2)
        cfg4, wl4 = build_cluster(num_nodes=4)
        assert point_fingerprint(cfg2, wl2, 1.0, 4.0, 1) \
            != point_fingerprint(cfg4, wl4, 1.0, 4.0, 1)
        # The workload alone is enough: its shard map depends on N.
        assert fingerprint(wl2) != fingerprint(wl4)

    def test_identical_cluster_points_share_a_fingerprint(self):
        cfg_a, wl_a = build_cluster(num_nodes=2)
        cfg_b, wl_b = build_cluster(num_nodes=2)
        assert point_fingerprint(cfg_a, wl_a, 1.0, 4.0, 1) \
            == point_fingerprint(cfg_b, wl_b, 1.0, 4.0, 1)

    def test_cluster_knobs_are_fingerprinted(self):
        base, wl = build_cluster()
        for kwargs in ({"gem_failover_delay": 0.5},
                       {"crash_schedule": ((0, 3.0),)},
                       {"node_price": 1.0},
                       {"checkpoint_interval": 5.0}):
            changed, _ = build_cluster(**kwargs)
            assert fingerprint(changed) != fingerprint(base), kwargs
        assert fingerprint(
            ShardedDebitCreditWorkload.for_cluster(
                base, arrival_rate_per_node=50.0,
                distributed_fraction=0.3)) != fingerprint(wl)


def tiny_cluster_spec():
    """A two-point cluster sweep small enough for determinism tests."""
    from repro.experiments.api import CurveSpec, ExperimentSpec, SweepProfile

    def build(x):
        return build_cluster(num_nodes=int(x), rate=40.0, dist=0.3)

    return ExperimentSpec(
        id="_tiny_cluster", title="tiny cluster", x_label="nodes",
        y_label="tps",
        curves=[CurveSpec(label="nvem", build=build)],
        profiles={"fast": SweepProfile(xs=(1.0, 2.0), warmup=0.5,
                                       duration=1.5),
                  "full": SweepProfile(xs=(1.0, 2.0), warmup=0.5,
                                       duration=1.5)},
    )


class TestClusterDeterminism:
    """The cluster path honours the experiment-harness contract: the
    serial, parallel and cached evaluation paths are byte-identical."""

    def canonical(self, result) -> str:
        import json

        from repro.experiments.export import experiment_to_dict

        return json.dumps(experiment_to_dict(result), sort_keys=True,
                          separators=(",", ":"))

    def test_serial_parallel_and_cached_identical(self, tmp_path):
        import warnings

        from repro.experiments.api import ExperimentRunner
        from repro.experiments.store import ResultStore

        spec = tiny_cluster_spec()
        serial = self.canonical(
            ExperimentRunner().run_one(spec, profile="fast"))
        with warnings.catch_warnings():
            # A sandbox without working process pools degrades the
            # parallel runner to serial evaluation — same output.
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = self.canonical(
                ExperimentRunner(parallel=True).run_one(spec,
                                                        profile="fast"))
        store = ResultStore(str(tmp_path))
        cold_runner = ExperimentRunner(store=store)
        cold = self.canonical(cold_runner.run_one(spec, profile="fast"))
        warm_runner = ExperimentRunner(store=store)
        warm = self.canonical(warm_runner.run_one(spec, profile="fast"))
        assert serial == parallel == cold == warm
        assert cold_runner.last_stats.hits == 0
        assert warm_runner.last_stats.misses == 0
        assert warm_runner.last_stats.hits == warm_runner.last_stats.total


class TestWorkloadRouting:
    def test_home_node_matches_partition_map(self):
        """The workload routes by the same PartitionMap the shards use
        — every generated transaction's refs stay in range of its
        node's partition sizes."""
        config, workload = build_cluster(num_nodes=3, dist=0.5)
        system = config.build_system(workload, seed=3)
        pmap = PartitionMap(3)
        branches = config.branches_per_node
        for _ in range(300):
            tx = workload.make_transaction(system.streams)
            assert 0 <= tx.home_node < 3
            for node_id, refs in tx.remote_work:
                assert node_id != tx.home_node
                assert 0 <= node_id < 3
                assert refs
        assert pmap.node_of(branches * 3 - 1) in range(3)
