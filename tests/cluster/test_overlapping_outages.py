"""Overlapping multi-node outages: the availability clock charges the
union of down-intervals, and concurrent restarts really overlap."""

import pytest

from repro.cluster import cluster_config, node_scheme
from repro.cluster.workload import ShardedDebitCreditWorkload


def run_cluster(crash_schedule, num_nodes=3, rate=50.0, warmup=1.0,
                duration=8.0, seed=7):
    config = cluster_config(scheme=node_scheme(log="nvem"),
                            num_nodes=num_nodes, seed=seed,
                            crash_schedule=crash_schedule,
                            checkpoint_interval=2.0)
    workload = ShardedDebitCreditWorkload.for_cluster(
        config, arrival_rate_per_node=rate, distributed_fraction=0.15)
    system = config.build_system(workload, seed=seed)
    results = system.run(warmup=warmup, duration=duration)
    return results, system


class TestOverlappingOutages:
    def test_two_nodes_down_at_once_charge_the_union(self):
        """Node 1 crashes while node 0 is still replaying.  Both
        restarts complete, but the charged downtime is the union of the
        two intervals — strictly less than their sum, at least as long
        as either alone."""
        results, system = run_cluster(
            crash_schedule=((0, 2.5), (1, 2.6)))
        assert len(system.faults.restarts) == 2
        assert sorted(node for node, _ in system.faults.restarts) == [0, 1]
        recovery = results.recovery
        assert recovery["crashes"] == 2
        summed = recovery["restart_time_mean"] * recovery["crashes"]
        union = recovery["downtime"]
        assert 0 < union < summed
        per_restart = summed / 2
        assert union >= per_restart
        assert 0.0 < results.availability < 1.0

    def test_survivor_keeps_committing_through_double_outage(self):
        results, system = run_cluster(
            crash_schedule=((0, 2.5), (1, 2.6)))
        shares = {s.node_id: s.committed for s in system.node_results()}
        assert shares[2] > shares[0]
        assert shares[2] > shares[1]
        assert results.committed > 0

    def test_disjoint_crashes_still_sum(self):
        """A control: when the second crash waits for the first restart
        to finish, the union degenerates to the plain sum."""
        results, system = run_cluster(
            crash_schedule=((0, 2.5), (1, 6.0)), duration=10.0)
        assert len(system.faults.restarts) == 2
        recovery = results.recovery
        summed = recovery["restart_time_mean"] * recovery["crashes"]
        assert recovery["downtime"] == pytest.approx(summed, rel=1e-6)

    def test_crash_on_already_down_node_is_skipped(self):
        """A scheduled crash landing while that node is still replaying
        adds nothing: the node was already down."""
        results, system = run_cluster(
            crash_schedule=((0, 2.5), (0, 2.6)))
        assert len(system.faults.restarts) == 1
        assert results.recovery["crashes"] == 1
