"""Unit tests for the Debit-Credit workload generator."""

import pytest

from repro.sim import RandomStreams
from repro.workload.debit_credit import (
    DebitCreditWorkload,
    P_ACCOUNT,
    P_BRANCH_TELLER,
    P_HISTORY,
    build_debit_credit_partitions,
)


class TestPartitions:
    def test_clustered_bt_partition_has_one_page_per_branch(self):
        parts = build_debit_credit_partitions(num_branches=500,
                                              tellers_per_branch=10)
        bt = parts[P_BRANCH_TELLER]
        assert bt.num_pages == 500
        assert bt.block_factor == 11  # 1 branch + 10 tellers

    def test_account_partition_size(self):
        parts = build_debit_credit_partitions(
            num_branches=500, accounts_per_branch=100_000,
            account_block_factor=10,
        )
        account = parts[P_ACCOUNT]
        assert account.num_objects == 50_000_000
        assert account.num_pages == 5_000_000

    def test_history_has_no_locking(self):
        from repro.core.config import CCMode
        parts = build_debit_credit_partitions()
        assert parts[P_HISTORY].cc_mode is CCMode.NONE
        assert parts[P_HISTORY].sequential_append


class TestTransactionShape:
    def make(self, **kwargs):
        params = dict(arrival_rate=100.0, num_branches=10,
                      accounts_per_branch=100)
        params.update(kwargs)
        return DebitCreditWorkload(**params)

    def test_four_object_accesses_all_writes(self):
        workload = self.make()
        tx = workload.make_transaction(RandomStreams(1))
        assert len(tx.refs) == 4
        assert all(ref.is_write for ref in tx.refs)
        assert tx.is_update

    def test_three_distinct_pages_with_clustering(self):
        workload = self.make()
        tx = workload.make_transaction(RandomStreams(1))
        assert len({ref.page_key for ref in tx.refs}) == 3

    def test_access_order_account_history_branch_teller(self):
        workload = self.make()
        tx = workload.make_transaction(RandomStreams(1))
        assert [ref.tag for ref in tx.refs] == \
            ["ACCOUNT", "HISTORY", "BRANCH", "TELLER"]

    def test_branch_and_teller_share_page(self):
        workload = self.make()
        tx = workload.make_transaction(RandomStreams(1))
        assert tx.refs[2].page_key == tx.refs[3].page_key

    def test_teller_belongs_to_selected_branch(self):
        workload = self.make(tellers_per_branch=10)
        for seed in range(20):
            tx = workload.make_transaction(RandomStreams(seed))
            branch_page = tx.refs[2].page_no
            teller_obj = tx.refs[3].object_no
            assert teller_obj // 11 == branch_page

    def test_history_appends_sequentially(self):
        workload = self.make(history_block_factor=20)
        streams = RandomStreams(1)
        history_objects = [
            workload.make_transaction(streams).refs[1].object_no
            for _ in range(25)
        ]
        assert history_objects == list(range(25))
        # 20 objects per page: first 20 on page 0, next on page 1.
        pages = [obj // 20 for obj in history_objects]
        assert pages[:20] == [0] * 20
        assert pages[20:] == [1] * 5

    def test_home_account_probability(self):
        workload = self.make(home_account_probability=1.0,
                             num_branches=10, accounts_per_branch=100)
        streams = RandomStreams(3)
        for _ in range(50):
            tx = workload.make_transaction(streams)
            branch = tx.refs[2].page_no
            account = tx.refs[0].object_no
            assert account // 100 == branch

    def test_remote_account_goes_to_other_branch(self):
        workload = self.make(home_account_probability=0.0,
                             num_branches=10, accounts_per_branch=100)
        streams = RandomStreams(3)
        for _ in range(50):
            tx = workload.make_transaction(streams)
            branch = tx.refs[2].page_no
            account = tx.refs[0].object_no
            assert account // 100 != branch

    def test_k85_split(self):
        workload = self.make(home_account_probability=0.85,
                             num_branches=50, accounts_per_branch=100)
        streams = RandomStreams(7)
        home = 0
        n = 3000
        for _ in range(n):
            tx = workload.make_transaction(streams)
            if tx.refs[0].object_no // 100 == tx.refs[2].page_no:
                home += 1
        assert home / n == pytest.approx(0.85, abs=0.02)

    def test_invalid_arrival_rate(self):
        with pytest.raises(ValueError):
            DebitCreditWorkload(arrival_rate=0)

    def test_invalid_home_probability(self):
        with pytest.raises(ValueError):
            DebitCreditWorkload(arrival_rate=1, home_account_probability=2.0)
