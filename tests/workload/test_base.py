"""Unit tests for SOURCE infrastructure (repro.workload.base)."""

import pytest

from repro.core.config import (
    CMConfig,
    LogAllocation,
    NVEM,
    NVEMConfig,
    PartitionConfig,
    SystemConfig,
)
from repro.core.model import TransactionSystem
from repro.core.transaction import ObjectRef, Transaction
from repro.workload.base import PoissonArrivals, Workload


def make_system(workload):
    config = SystemConfig(
        partitions=[PartitionConfig("p", num_objects=100,
                                    allocation=NVEM)],
        disk_units=[],
        nvem=NVEMConfig(),
        cm=CMConfig(buffer_size=32),
        log=LogAllocation(device=NVEM),
    )
    return TransactionSystem(config, workload)


def factory(n):
    return Transaction(n + 1, "t", [ObjectRef(0, n % 100, n % 100, False)])


class TestPoissonArrivals:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, factory)

    def test_mean_rate(self):
        source = PoissonArrivals(100.0, factory)

        class W:
            def start(self, system):
                source.start(system)

        system = make_system(W())
        system.start_workload()
        system.env.run(until=20.0)
        # ~2000 arrivals expected over 20 s at 100 TPS.
        assert source.generated == pytest.approx(2000, rel=0.1)

    def test_limit_stops_generation(self):
        source = PoissonArrivals(1000.0, factory, limit=25)

        class W:
            def start(self, system):
                source.start(system)

        system = make_system(W())
        system.start_workload()
        system.env.run(until=5.0)
        assert source.generated == 25

    def test_transactions_reach_tm(self):
        source = PoissonArrivals(50.0, factory, limit=10)

        class W:
            def start(self, system):
                source.start(system)

        system = make_system(W())
        system.start_workload()
        system.env.run(until=5.0)
        assert system.tm.submitted == 10
        assert system.tm.completed == 10


class TestWorkloadProtocol:
    def test_sources_satisfy_protocol(self):
        from repro.workload.debit_credit import DebitCreditWorkload
        from repro.workload.trace import TraceWorkload, Trace, TraceFile, TraceTransaction

        assert isinstance(DebitCreditWorkload(arrival_rate=1.0), Workload)
        trace = Trace.from_transactions(
            [TraceFile("f", 10)],
            [TraceTransaction("t", [(0, 1, False)])],
        )
        assert isinstance(TraceWorkload(trace, arrival_rate=1.0), Workload)
