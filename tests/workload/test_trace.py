"""Unit tests for traces: format, I/O, workload, generator."""

import pytest

from repro.workload.trace import (
    Trace,
    TraceFile,
    TraceTransaction,
    TraceWorkload,
    build_trace_partitions,
    read_trace,
    write_trace,
)
from repro.workload.tracegen import RealWorkloadProfile, generate_trace


def tiny_trace():
    files = [TraceFile("f0", 100), TraceFile("f1", 50)]
    txs = [
        TraceTransaction("query", [(0, 1, False), (0, 2, False)]),
        TraceTransaction("update", [(1, 3, True), (0, 1, False)]),
        TraceTransaction("query", [(1, 4, False)]),
    ]
    return Trace.from_transactions(files, txs)


class TestTraceContainer:
    def test_lengths(self):
        trace = tiny_trace()
        assert len(trace) == 3
        assert trace.num_accesses == 5

    def test_transaction_roundtrip(self):
        trace = tiny_trace()
        tx = trace.transaction(1)
        assert tx.type_name == "update"
        assert tx.refs == [(1, 3, True), (0, 1, False)]
        assert tx.is_update

    def test_statistics(self):
        trace = tiny_trace()
        assert trace.write_fraction == pytest.approx(0.2)
        assert trace.update_tx_fraction == pytest.approx(1 / 3)
        assert trace.distinct_pages == 4  # (0,1),(0,2),(1,3),(1,4)
        assert trace.largest_tx == 2
        assert trace.mean_tx_size == pytest.approx(5 / 3)

    def test_iter_transactions(self):
        trace = tiny_trace()
        types = [tx.type_name for tx in trace.iter_transactions()]
        assert types == ["query", "update", "query"]

    def test_offset_validation(self):
        import numpy as np
        with pytest.raises(ValueError):
            Trace([], [], np.zeros(1, dtype=np.int16),
                  np.zeros(1, dtype=np.int64),
                  np.zeros(0, dtype=np.int16),
                  np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool))


class TestTraceIO:
    def test_write_read_roundtrip(self, tmp_path):
        trace = tiny_trace()
        path = str(tmp_path / "trace.txt")
        write_trace(trace, path)
        loaded = read_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.num_accesses == trace.num_accesses
        assert [f.name for f in loaded.files] == ["f0", "f1"]
        for i in range(len(trace)):
            a, b = trace.transaction(i), loaded.transaction(i)
            assert a.type_name == b.type_name
            assert a.refs == b.refs

    def test_read_rejects_access_before_transaction(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("A 0 1 R\n")
        with pytest.raises(ValueError, match="before any transaction"):
            read_trace(str(path))

    def test_read_rejects_bad_mode(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("T q\nA 0 1 Z\n")
        with pytest.raises(ValueError, match="bad mode"):
            read_trace(str(path))

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("WHAT 1 2 3\n")
        with pytest.raises(ValueError, match="unparseable"):
            read_trace(str(path))

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text("# comment\n\nF f0 10\nT q\nA 0 1 R\n")
        trace = read_trace(str(path))
        assert len(trace) == 1


class TestBuildPartitions:
    def test_one_partition_per_file(self):
        parts = build_trace_partitions(tiny_trace(), allocation="db0")
        assert [p.name for p in parts] == ["f0", "f1"]
        assert parts[0].num_objects == 100
        assert parts[0].block_factor == 1


class TestTraceWorkload:
    def test_requires_exactly_one_rate_spec(self):
        trace = tiny_trace()
        with pytest.raises(ValueError):
            TraceWorkload(trace)
        with pytest.raises(ValueError):
            TraceWorkload(trace, arrival_rate=1.0,
                          per_type_rates={"query": 1.0})

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TraceWorkload(tiny_trace(), arrival_rate=0.0)

    def test_per_type_rates_unknown_type(self):
        from repro.core.config import CMConfig, LogAllocation, NVEM, NVEMConfig, SystemConfig
        from repro.core.model import TransactionSystem

        trace = tiny_trace()
        workload = TraceWorkload(trace, per_type_rates={"ghost": 1.0})
        config = SystemConfig(
            partitions=build_trace_partitions(trace, allocation=NVEM),
            disk_units=[],
            nvem=NVEMConfig(),
            cm=CMConfig(),
            log=LogAllocation(device=NVEM),
        )
        system = TransactionSystem(config, workload)
        with pytest.raises(ValueError, match="no transactions of type"):
            system.start_workload()

    def test_replay_preserves_order_and_converts_refs(self):
        from repro.core.config import CMConfig, LogAllocation, NVEM, NVEMConfig, SystemConfig
        from repro.core.model import TransactionSystem

        trace = tiny_trace()
        workload = TraceWorkload(trace, arrival_rate=100.0, loop=False)
        config = SystemConfig(
            partitions=build_trace_partitions(trace, allocation=NVEM),
            disk_units=[],
            nvem=NVEMConfig(),
            cm=CMConfig(),
            log=LogAllocation(device=NVEM),
        )
        system = TransactionSystem(config, workload)
        submitted = []
        original = system.tm.submit

        def spy(tx):
            submitted.append(tx)
            original(tx)

        system.tm.submit = spy
        system.start_workload()
        system.env.run(until=5.0)
        assert [tx.tx_type for tx in submitted] == \
            ["query", "update", "query"]
        first = submitted[0]
        assert first.refs[0].partition_index == 0
        assert first.refs[0].page_no == 1
        assert first.refs[0].tag == "f0"

    def test_loop_wraps_around(self):
        from repro.core.config import CMConfig, LogAllocation, NVEM, NVEMConfig, SystemConfig
        from repro.core.model import TransactionSystem

        trace = tiny_trace()
        workload = TraceWorkload(trace, arrival_rate=100.0, loop=True,
                                 limit=7)
        config = SystemConfig(
            partitions=build_trace_partitions(trace, allocation=NVEM),
            disk_units=[],
            nvem=NVEMConfig(),
            cm=CMConfig(),
            log=LogAllocation(device=NVEM),
        )
        system = TransactionSystem(config, workload)
        system.start_workload()
        system.env.run(until=5.0)
        assert workload.submitted == 7


class TestTraceGenerator:
    @pytest.fixture(scope="class")
    def trace(self):
        profile = RealWorkloadProfile(
            num_transactions=800,
            target_accesses=45_000,
            adhoc_count=1,
            adhoc_accesses=3_000,
            total_pages=20_000,
        )
        return generate_trace(profile, seed=7)

    def test_transaction_count(self, trace):
        assert len(trace) == 800

    def test_access_volume_near_target(self, trace):
        assert trace.num_accesses == pytest.approx(45_000, rel=0.15)

    def test_twelve_types(self, trace):
        assert len(trace.type_names) == 12

    def test_write_fraction_near_published(self, trace):
        assert trace.write_fraction == pytest.approx(0.016, rel=0.35)

    def test_update_tx_fraction_near_published(self, trace):
        assert trace.update_tx_fraction == pytest.approx(0.20, abs=0.05)

    def test_adhoc_is_largest_and_sequential(self, trace):
        assert trace.largest_tx == 3_000
        for tx in trace.iter_transactions():
            if tx.type_name == "adhoc-query":
                pages = [page for _, page, _ in tx.refs]
                file_size = trace.files[0].num_pages
                for prev, nxt in zip(pages, pages[1:]):
                    assert nxt == (prev + 1) % file_size
                assert not tx.is_update
                break
        else:  # pragma: no cover
            pytest.fail("no ad-hoc query found")

    def test_thirteen_files_and_footprint(self, trace):
        assert len(trace.files) == 13
        assert sum(f.num_pages for f in trace.files) == 20_000

    def test_pages_within_file_bounds(self, trace):
        for i in range(len(trace)):
            for file_id, page, _ in trace.transaction(i).refs:
                assert 0 <= page < trace.files[file_id].num_pages

    def test_update_transactions_write_at_least_once(self, trace):
        for tx in trace.iter_transactions():
            writes = sum(1 for _, _, w in tx.refs if w)
            if writes:
                assert tx.is_update

    def test_deterministic_for_seed(self):
        profile = RealWorkloadProfile(
            num_transactions=100, target_accesses=4000,
            adhoc_count=0, total_pages=5000,
        )
        a = generate_trace(profile, seed=3)
        b = generate_trace(profile, seed=3)
        assert a.num_accesses == b.num_accesses
        assert a.transaction(50).refs == b.transaction(50).refs

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            RealWorkloadProfile(num_types=5).validate()
        with pytest.raises(ValueError):
            RealWorkloadProfile(locality_sizes=(0.5, 0.5, 0.5)).validate()
        with pytest.raises(ValueError):
            RealWorkloadProfile(update_tx_fraction=1.5).validate()
