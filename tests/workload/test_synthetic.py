"""Unit tests for the general synthetic workload model (§3.1)."""

import pytest

from repro.core.config import (
    CMConfig,
    DiskUnitConfig,
    LogAllocation,
    PartitionConfig,
    SubPartition,
    SystemConfig,
    TransactionTypeConfig,
)
from repro.sim import RandomStreams
from repro.workload.synthetic import SyntheticWorkload, _PartitionSampler


def make_config(partitions, tx_types):
    config = SystemConfig(
        partitions=partitions,
        disk_units=[DiskUnitConfig(name="db0", num_disks=4)],
        cm=CMConfig(),
        log=LogAllocation(device="db0"),
        tx_types=tx_types,
    )
    config.validate()
    return config


def simple_config(write_prob=0.5, sequential=False, var_size=False,
                  tx_size=5, matrix=None, subpartitions=None):
    partitions = [
        PartitionConfig("a", num_objects=1000, block_factor=10,
                        allocation="db0",
                        subpartitions=subpartitions or
                        [SubPartition(1.0, 1.0)]),
        PartitionConfig("b", num_objects=2000, block_factor=10,
                        allocation="db0"),
    ]
    tx_types = [TransactionTypeConfig(
        "t", arrival_rate=10, tx_size=tx_size, write_prob=write_prob,
        reference_matrix=matrix or {"a": 0.7, "b": 0.3},
        sequential=sequential, var_size=var_size,
    )]
    return make_config(partitions, tx_types)


class TestPartitionSampler:
    def test_uniform_sampling_covers_range(self):
        part = PartitionConfig("p", num_objects=100)
        sampler = _PartitionSampler(0, part)
        streams = RandomStreams(1)
        values = {sampler.sample_object(streams, "s") for _ in range(2000)}
        assert min(values) >= 0
        assert max(values) <= 99
        assert len(values) > 80

    def test_bc_rule_skew(self):
        """An 80/20 rule: 80% of accesses on the first 20% of objects."""
        part = PartitionConfig(
            "p", num_objects=1000,
            subpartitions=[SubPartition(20, 80), SubPartition(80, 20)],
        )
        sampler = _PartitionSampler(0, part)
        streams = RandomStreams(1)
        n = 10_000
        hot = sum(
            1 for _ in range(n)
            if sampler.sample_object(streams, "s") < 200
        )
        assert hot / n == pytest.approx(0.8, abs=0.02)

    def test_two_level_90_10_rule(self):
        """The paper's example: subpartition sizes 81/9/10 with access
        probabilities 1/9/90 encode a two-level 90/10 rule."""
        part = PartitionConfig(
            "p", num_objects=1000,
            subpartitions=[SubPartition(81, 1), SubPartition(9, 9),
                           SubPartition(10, 90)],
        )
        sampler = _PartitionSampler(0, part)
        streams = RandomStreams(1)
        n = 20_000
        counts = [0, 0, 0]
        for _ in range(n):
            obj = sampler.sample_object(streams, "s")
            if obj < 810:
                counts[0] += 1
            elif obj < 900:
                counts[1] += 1
            else:
                counts[2] += 1
        assert counts[2] / n == pytest.approx(0.90, abs=0.02)
        assert counts[1] / n == pytest.approx(0.09, abs=0.01)

    def test_append_cursor_wraps(self):
        part = PartitionConfig("p", num_objects=3)
        sampler = _PartitionSampler(0, part)
        assert [sampler.append_object() for _ in range(5)] == \
            [0, 1, 2, 0, 1]


class TestTransactionGeneration:
    def test_fixed_size(self):
        workload = SyntheticWorkload(simple_config(tx_size=5))
        tx = workload.make_transaction(RandomStreams(1),
                                       workload.config.tx_types[0])
        assert len(tx.refs) == 5

    def test_variable_size_mean(self):
        config = simple_config(tx_size=10, var_size=True)
        workload = SyntheticWorkload(config)
        streams = RandomStreams(1)
        sizes = [
            len(workload.make_transaction(streams,
                                          config.tx_types[0]).refs)
            for _ in range(2000)
        ]
        assert sum(sizes) / len(sizes) == pytest.approx(10, rel=0.1)
        assert min(sizes) >= 1

    def test_reference_matrix_split(self):
        config = simple_config(matrix={"a": 0.7, "b": 0.3})
        workload = SyntheticWorkload(config)
        streams = RandomStreams(1)
        counts = {0: 0, 1: 0}
        for _ in range(2000):
            tx = workload.make_transaction(streams, config.tx_types[0])
            for ref in tx.refs:
                counts[ref.partition_index] += 1
        total = counts[0] + counts[1]
        assert counts[0] / total == pytest.approx(0.7, abs=0.02)

    def test_write_probability(self):
        config = simple_config(write_prob=0.25)
        workload = SyntheticWorkload(config)
        streams = RandomStreams(1)
        writes = reads = 0
        for _ in range(1000):
            tx = workload.make_transaction(streams, config.tx_types[0])
            for ref in tx.refs:
                if ref.is_write:
                    writes += 1
                else:
                    reads += 1
        assert writes / (writes + reads) == pytest.approx(0.25, abs=0.03)

    def test_sequential_access_consecutive_objects(self):
        config = simple_config(sequential=True, tx_size=4)
        workload = SyntheticWorkload(config)
        tx = workload.make_transaction(RandomStreams(1),
                                       config.tx_types[0])
        # All refs in one partition, objects consecutive (mod size).
        parts = {ref.partition_index for ref in tx.refs}
        assert len(parts) == 1
        objs = [ref.object_no for ref in tx.refs]
        num_objects = workload.config.partitions[objs and
                                                 tx.refs[0].partition_index
                                                 ].num_objects
        for prev, nxt in zip(objs, objs[1:]):
            assert nxt == (prev + 1) % num_objects

    def test_page_numbers_respect_block_factor(self):
        config = simple_config()
        workload = SyntheticWorkload(config)
        tx = workload.make_transaction(RandomStreams(1),
                                       config.tx_types[0])
        for ref in tx.refs:
            assert ref.page_no == ref.object_no // 10

    def test_requires_tx_types(self):
        config = simple_config()
        config.tx_types = []
        with pytest.raises(ValueError):
            SyntheticWorkload(config)

    def test_transaction_ids_increase(self):
        config = simple_config()
        workload = SyntheticWorkload(config)
        streams = RandomStreams(1)
        tx1 = workload.make_transaction(streams, config.tx_types[0])
        tx2 = workload.make_transaction(streams, config.tx_types[0])
        assert tx2.tx_id == tx1.tx_id + 1
