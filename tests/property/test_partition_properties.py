"""Property-based tests for cluster partitioning (hypothesis).

The documented contract of :class:`repro.cluster.PartitionMap`: the
account/branch → node mapping is deterministic, total over every
non-negative global index, invertible, and balanced — for any prefix
``[0, M)`` of the index space the per-node shard sizes differ by at
most one, for any node count ``N >= 1``.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import PartitionMap

nodes_strategy = st.integers(min_value=1, max_value=64)
index_strategy = st.integers(min_value=0, max_value=100_000)


@given(num_nodes=nodes_strategy, index=index_strategy)
@settings(max_examples=200, deadline=None)
def test_mapping_total_and_deterministic(num_nodes, index):
    """Every index maps to exactly one in-range node, and two
    independently built maps (different processes, different sweep
    points) agree on it."""
    a = PartitionMap(num_nodes)
    b = PartitionMap(num_nodes)
    node = a.node_of(index)
    assert 0 <= node < num_nodes
    assert b.node_of(index) == node
    assert b.local_index(index) == a.local_index(index)


@given(num_nodes=nodes_strategy, index=index_strategy)
@settings(max_examples=200, deadline=None)
def test_mapping_invertible(num_nodes, index):
    """(node_of, local_index) loses nothing: global_index round-trips."""
    pmap = PartitionMap(num_nodes)
    assert pmap.global_index(pmap.node_of(index),
                             pmap.local_index(index)) == index


@given(num_nodes=nodes_strategy,
       total=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=200, deadline=None)
def test_shards_balanced_within_one(num_nodes, total):
    """For any prefix [0, total), per-node counts differ by <= 1, they
    sum to the total, and shard_size agrees with brute-force counting."""
    pmap = PartitionMap(num_nodes)
    counts = [0] * num_nodes
    for index in range(total):
        counts[pmap.node_of(index)] += 1
    assert sum(counts) == total
    assert max(counts) - min(counts) <= 1
    for node in range(num_nodes):
        assert pmap.shard_size(node, total) == counts[node]
