"""Property-based tests for buffer-manager invariants (hypothesis).

The buffer manager is driven with random access streams under random
configurations; after every simulated run the §3.2 invariants must
hold:

* frame counts never exceed capacities;
* NOFORCE: no page cached in both main memory and NVEM;
* the write-buffer occupancy is never negative;
* every page access is attributed to exactly one hierarchy level.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import NVEMCachingMode, UpdateStrategy
from repro.core.transaction import ObjectRef, Transaction
from tests.core.test_bm import build_system


def drive(env, bm, accesses):
    """Run a stream of (page, is_write) accesses as one process each."""
    def tx_proc(tx, ref):
        yield from bm.fix_page(tx, ref)

    for i, (page, is_write) in enumerate(accesses):
        tx = Transaction(i + 1, "t", [])
        ref = ObjectRef(0, page, page, is_write)
        env.process(tx_proc(tx, ref))
    env.run()


access_stream = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40), st.booleans()),
    min_size=1, max_size=120,
)


@given(
    accesses=access_stream,
    buffer_size=st.integers(min_value=1, max_value=8),
    strategy=st.sampled_from([UpdateStrategy.NOFORCE,
                              UpdateStrategy.FORCE]),
)
@settings(max_examples=60, deadline=None)
def test_mm_buffer_invariants(accesses, buffer_size, strategy):
    env, bm, metrics, _ = build_system(buffer_size=buffer_size,
                                       update_strategy=strategy)
    drive(env, bm, accesses)
    assert bm.check_invariants() == []
    assert len(bm.mm) <= buffer_size
    # Every access was classified to a level.
    assert metrics.page_access.total() == len(accesses)


@given(
    accesses=access_stream,
    buffer_size=st.integers(min_value=1, max_value=6),
    cache_size=st.integers(min_value=1, max_value=6),
    mode=st.sampled_from([NVEMCachingMode.MODIFIED,
                          NVEMCachingMode.UNMODIFIED,
                          NVEMCachingMode.ALL]),
    strategy=st.sampled_from([UpdateStrategy.NOFORCE,
                              UpdateStrategy.FORCE]),
)
@settings(max_examples=60, deadline=None)
def test_nvem_cache_invariants(accesses, buffer_size, cache_size, mode,
                               strategy):
    env, bm, metrics, _ = build_system(
        buffer_size=buffer_size, update_strategy=strategy,
        nvem_caching=mode, nvem_cache_size=cache_size,
    )
    drive(env, bm, accesses)
    assert bm.check_invariants() == []
    assert len(bm.nvem_cache) <= cache_size
    if strategy is UpdateStrategy.NOFORCE:
        overlap = set(bm.mm.keys()) & set(bm.nvem_cache.keys())
        assert not overlap


@given(
    accesses=access_stream,
    wb_size=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_write_buffer_occupancy_never_negative(accesses, wb_size):
    env, bm, metrics, _ = build_system(
        buffer_size=2, nvem_write_buffer=True,
        nvem_write_buffer_size=wb_size,
    )
    drive(env, bm, accesses)
    assert bm.write_buffer_pending() == 0  # all drained at quiescence
    absorbed = metrics.io_counts.get("db_write_buffered")
    drained = metrics.io_counts.get("db_write_async")
    assert absorbed == drained


@given(
    accesses=access_stream,
    buffer_size=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_prewarm_then_run_consistent(accesses, buffer_size):
    """Prewarming must leave a state from which simulation is sound."""
    env, bm, metrics, _ = build_system(buffer_size=buffer_size)
    for page, is_write in accesses:
        bm.prewarm_reference(0, page, is_write)
    assert len(bm.mm) <= buffer_size
    drive(env, bm, accesses)
    assert bm.check_invariants() == []


@given(accesses=access_stream)
@settings(max_examples=30, deadline=None)
def test_force_leaves_no_dirty_pages_after_commits(accesses):
    """Under FORCE, committing every writer leaves a clean buffer."""
    env, bm, _, _ = build_system(buffer_size=16,
                                 update_strategy=UpdateStrategy.FORCE)

    def tx_proc(tx, refs):
        for ref in refs:
            yield from bm.fix_page(tx, ref)
        yield from bm.commit(tx)

    for i, (page, is_write) in enumerate(accesses):
        tx = Transaction(i + 1, "t", [])
        tx.is_update = is_write
        env.process(tx_proc(tx, [ObjectRef(0, page, page, is_write)]))
    env.run()
    dirty = [e.key for e in bm.mm.items_mru_to_lru() if e.dirty]
    assert dirty == []
