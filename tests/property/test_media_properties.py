"""Property-based tests for the media-fault subsystem (hypothesis).

Three contracts the rest of the PR leans on:

* deterministic fault schedules replay bit-identically under the same
  seed — the experiments' cache keys assume it;
* the post-crash redo set is always a superset of the dirty-page table
  once volatile controller caches re-enter their pages;
* the fault gates' success path (no open window, device not lost) is a
  pure delegation: it never touches the RNG streams, so a schedule
  that stays in the future leaves the run identical to a media-free
  one.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import DeviceFault
from repro.experiments.export import results_to_dict
from repro.recovery.tracker import RecoveryTracker

from tests.recovery.conftest import media_synthetic_system

RUN = dict(warmup=1.0, duration=6.0)

page_keys = st.tuples(st.integers(min_value=0, max_value=3),
                      st.integers(min_value=0, max_value=500))

transient_schedules = st.lists(
    st.builds(
        DeviceFault,
        device=st.sampled_from(["db0", "log0"]),
        time=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
        kind=st.just("transient"),
        duration=st.floats(min_value=0.01, max_value=0.4,
                           allow_nan=False),
    ),
    min_size=1, max_size=3,
)


@given(faults=transient_schedules, seed=st.integers(1, 2**16))
@settings(max_examples=8, deadline=None)
def test_fault_schedule_replays_identically(faults, seed):
    """Same seed, same schedule: the whole results export matches."""
    exports = []
    for _ in range(2):
        system = media_synthetic_system(seed=seed, faults=tuple(faults))
        exports.append(results_to_dict(system.run(**RUN)))
    assert exports[0] == exports[1]


@given(faults=transient_schedules, seed=st.integers(1, 2**16))
@settings(max_examples=8, deadline=None)
def test_future_schedule_is_invisible(faults, seed):
    """Gates on the success path draw nothing and add no events: a
    schedule pushed past the end of the run leaves everything but the
    (all-zero) degraded block identical to a media-disabled run."""
    future = tuple(
        DeviceFault(device=fault.device, time=fault.time + 10_000.0,
                    kind="transient", duration=fault.duration)
        for fault in faults)
    gated = media_synthetic_system(seed=seed, faults=future)
    plain = media_synthetic_system(seed=seed, media_enabled=False)
    gated_dict = results_to_dict(gated.run(**RUN))
    plain_dict = results_to_dict(plain.run(**RUN))
    degraded = gated_dict.pop("degraded")
    assert degraded["io_retries"] == 0
    assert degraded["degraded_window"] == 0
    assert "degraded" not in plain_dict
    assert gated_dict == plain_dict


@given(
    dirty=st.lists(page_keys, max_size=30, unique=True),
    cleaned=st.lists(page_keys, max_size=10, unique=True),
    extra=st.lists(page_keys, max_size=30, unique=True),
    log_tail=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=200, deadline=None)
def test_redo_set_covers_dpt_and_cache_loss(dirty, cleaned, extra,
                                            log_tail):
    """on_crash returns DPT ∪ extra_redo: re-entering the volatile
    controller caches' pages can only grow the redo set, never shadow a
    dirty page."""
    clock = [0.0]
    tracker = RecoveryTracker(now=lambda: clock[0])
    for key in dirty:
        clock[0] += 0.001
        tracker.note_dirty(key)
    for key in cleaned:
        tracker.note_clean(key)
    dpt = set(dirty) - set(cleaned)
    snapshot = tracker.on_crash(time=clock[0], log_tail=log_tail,
                                in_flight=0, extra_redo=extra)
    redo = set(snapshot.dirty_pages)
    assert redo >= dpt
    assert redo >= set(extra)
    assert redo == dpt | set(extra)
    # A crash wipes the volatile bookkeeping with the buffer.
    assert tracker.dirty_page_count() == 0
