"""Property-based tests for the CLOCK and 2Q replacement policies.

Three invariants from the issue brief:

* neither policy ever exceeds its capacity;
* victim selection honours the caller's predicate — under the buffer
  manager's "unfixed frames only" rule, pinned entries are never
  evicted;
* the registry-resolved "lru" policy is behaviourally identical to the
  historical :class:`LRUCache` on a recorded reference trace.
"""

from hypothesis import given, settings, strategies as st

from repro.storage.lru import LRUCache
from repro.storage.policies import ClockPolicy, TwoQPolicy
from repro.storage.registry import make_policy

POLICIES = {
    "lru": LRUCache,
    "clock": ClockPolicy,
    "2q": TwoQPolicy,
}

ops_strategy = st.lists(
    st.tuples(st.sampled_from(["access", "write", "pin", "unpin", "remove"]),
              st.integers(min_value=0, max_value=30)),
    max_size=300,
)


def apply_op(policy, op, key, pinned):
    """One buffer-manager-shaped operation against a policy."""
    if op == "remove":
        if key in policy and key not in pinned:
            policy.remove(key)
        return None
    if op == "pin":
        entry = policy.peek(key)
        if entry is not None:
            entry.fix_count += 1
            pinned.add(key)
        return None
    if op == "unpin":
        entry = policy.peek(key)
        if entry is not None and entry.fix_count > 0:
            entry.fix_count -= 1
            if entry.fix_count == 0:
                pinned.discard(key)
        return None
    # access / write: hit updates recency, miss evicts-then-inserts.
    entry = policy.get(key)
    if entry is not None:
        if op == "write":
            entry.dirty = True
        return "hit"
    victim = None
    if policy.is_full:
        victim = policy.victim(lambda e: e.fix_count == 0)
        if victim is None:
            return "stall"  # everything pinned: no replacement possible
        policy.remove(victim.key)
    policy.insert(key, dirty=op == "write")
    return victim.key if victim is not None else "miss"


@given(kind=st.sampled_from(sorted(POLICIES)),
       capacity=st.integers(min_value=1, max_value=12),
       ops=ops_strategy)
@settings(max_examples=150, deadline=None)
def test_policies_never_exceed_capacity(kind, capacity, ops):
    policy = make_policy(kind, capacity)
    pinned = set()
    for op, key in ops:
        apply_op(policy, op, key, pinned)
        assert len(policy) <= capacity
        assert len(policy.keys()) == len(policy)


@given(kind=st.sampled_from(sorted(POLICIES)),
       capacity=st.integers(min_value=1, max_value=8),
       ops=ops_strategy)
@settings(max_examples=150, deadline=None)
def test_policies_never_evict_pinned_entries(kind, capacity, ops):
    policy = make_policy(kind, capacity)
    pinned = set()
    for op, key in ops:
        outcome = apply_op(policy, op, key, pinned)
        if isinstance(outcome, int):  # an eviction happened
            assert outcome not in pinned
        # Pinned entries survive every operation.
        for pinned_key in pinned:
            assert pinned_key in policy


@given(capacity=st.integers(min_value=1, max_value=12),
       keys=st.lists(st.integers(0, 30), max_size=300))
@settings(max_examples=150, deadline=None)
def test_registry_lru_matches_historical_lru_cache(capacity, keys):
    """make_policy("lru") is the reference LRUCache, step for step."""
    via_registry = make_policy("lru", capacity)
    historical = LRUCache(capacity)
    assert isinstance(via_registry, LRUCache)
    for key in keys:
        outcomes = []
        for cache in (via_registry, historical):
            if cache.get(key) is not None:
                outcomes.append(("hit", None))
                continue
            evicted = None
            if cache.is_full:
                evicted = cache.victim().key
                cache.remove(evicted)
            cache.insert(key)
            outcomes.append(("miss", evicted))
        assert outcomes[0] == outcomes[1]
        assert via_registry.keys() == historical.keys()


#: A recorded reference trace with a known LRU outcome (capacity 3):
#: classic a b c a d e b pattern evicting b, c, a in that order.
REFERENCE_TRACE = ["a", "b", "c", "a", "d", "e", "b"]
REFERENCE_EVICTIONS = ["b", "c", "a"]


def test_registry_lru_reference_trace():
    cache = make_policy("lru", 3)
    evictions = []
    for key in REFERENCE_TRACE:
        if cache.get(key) is None:
            if cache.is_full:
                victim = cache.victim()
                evictions.append(victim.key)
                cache.remove(victim.key)
            cache.insert(key)
    assert evictions == REFERENCE_EVICTIONS


def test_clock_second_chance():
    """A re-referenced page survives the sweep; an untouched one does not."""
    clock = ClockPolicy(3)
    for key in ("a", "b", "c"):
        clock.insert(key)
    # All bits set: the first sweep clears them and falls back to FIFO,
    # evicting the oldest page.
    first = clock.victim()
    assert first.key == "a"
    clock.get("b")  # second chance for b
    clock.remove("a")
    clock.insert("d")  # fresh page, referenced
    victim = clock.victim()
    # b (re-referenced) and d (fresh) survive; c is the only page whose
    # bit stayed clear.
    assert victim.key == "c"


def test_clock_victim_none_when_nothing_qualifies():
    clock = ClockPolicy(2)
    for key in ("a", "b"):
        clock.insert(key).fix_count = 1
    assert clock.victim(lambda e: e.fix_count == 0) is None


def test_two_q_promotes_via_ghost_queue():
    """2Q admits to Am only pages re-referenced after eviction."""
    policy = TwoQPolicy(4, kin=1, kout=4)
    policy.insert("x")
    assert "x" in policy._a1in
    policy.remove("x")  # evicted: remembered in the ghost queue
    assert "x" in policy._a1out
    policy.insert("x")  # re-admission promotes to the hot queue
    assert "x" in policy._am and "x" not in policy._a1in


def test_two_q_scan_resistance():
    """A one-pass scan must not displace the re-referenced hot set."""
    policy = TwoQPolicy(8, kin=2, kout=8)

    def access(key):
        if policy.get(key) is None:
            if policy.is_full:
                policy.remove(policy.victim().key)
            policy.insert(key)

    # Build a hot set that has proven itself via the ghost queue.
    for key in ("h1", "h2"):
        access(key)
        policy.remove(key)
        access(key)
    assert "h1" in policy._am and "h2" in policy._am
    for n in range(20):  # long sequential scan
        access(f"scan{n}")
    assert "h1" in policy and "h2" in policy
