"""Property test: span accounting holds across seeds, rates, schemes
and scheduler backends.

For any traced run, a committed transaction's phase spans must be
mutually non-overlapping and sum (within float tolerance) to its
measured arrival-to-commit response time — under both the calendar
and heap event schedulers, whose dispatch internals differ.
"""

import dataclasses
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import TransactionSystem
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    nvem_resident,
)
from repro.trace import check_span_accounting
from repro.workload.debit_credit import DebitCreditWorkload

SCHEMES = {"disk": disk_only, "nvem": nvem_resident}


def _traced_run(scheme: str, rate: float, seed: int):
    config = debit_credit_config(SCHEMES[scheme]())
    config.trace = dataclasses.replace(config.trace, enabled=True)
    system = TransactionSystem(
        config, DebitCreditWorkload(arrival_rate=rate), seed=seed)
    results = system.run(warmup=0.3, duration=0.8)
    return system, results


@pytest.mark.parametrize("backend", ["calendar", "heap"])
@given(
    scheme=st.sampled_from(sorted(SCHEMES)),
    rate=st.sampled_from([60.0, 150.0, 300.0]),
    seed=st.integers(min_value=0, max_value=2**16 - 1),
)
@settings(max_examples=6, deadline=None)
def test_phase_spans_tile_response_time(backend, scheme, rate, seed):
    previous = os.environ.get("REPRO_SCHEDULER")
    os.environ["REPRO_SCHEDULER"] = backend
    try:
        system, results = _traced_run(scheme, rate, seed)
    finally:
        if previous is None:
            os.environ.pop("REPRO_SCHEDULER", None)
        else:
            os.environ["REPRO_SCHEDULER"] = previous
    report = check_span_accounting(system.tracer.spans,
                                   system.tracer.measure_start,
                                   tolerance=1e-9)
    # Spans exist whenever anything committed inside the window.
    if results.committed:
        roots = [s for s in system.tracer.spans if s[0] == "tx"]
        assert len(roots) >= report["transactions"]
    assert report["max_residual"] <= 1e-9
