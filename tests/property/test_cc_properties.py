"""Property-based tests for the lock manager (hypothesis).

Random multi-transaction lock schedules must preserve 2PL safety:

* no two transactions ever hold incompatible locks on one resource;
* every transaction eventually finishes (deadlock freedom via
  detection + restart — the simulation never wedges);
* after quiescence the lock table is empty.
"""

from hypothesis import given, settings, strategies as st

from repro.core.cc import LockManager, LockMode, LockOutcome
from repro.core.metrics import MetricsCollector
from repro.core.transaction import Transaction
from repro.sim import Environment

# A transaction plan: list of (resource, exclusive) pairs.
plan_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.booleans()),
    min_size=1, max_size=5,
)
schedule_strategy = st.lists(plan_strategy, min_size=1, max_size=8)


class SafetyMonitor:
    """Tracks lock grants and checks mutual exclusion continuously."""

    def __init__(self):
        self.holders = {}  # resource -> {tx_id: mode}
        self.violations = []

    def grant(self, tx_id, resource, mode):
        held = self.holders.setdefault(resource, {})
        for other, other_mode in held.items():
            if other == tx_id:
                continue
            if mode is LockMode.X or other_mode is LockMode.X:
                self.violations.append((resource, tx_id, other))
        held[tx_id] = max(mode, held.get(tx_id, LockMode.S))

    def release(self, tx_id, resources):
        for resource in resources:
            held = self.holders.get(resource)
            if held:
                held.pop(tx_id, None)


@given(schedule=schedule_strategy)
@settings(max_examples=120, deadline=None)
def test_2pl_safety_and_progress(schedule):
    env = Environment()
    metrics = MetricsCollector(env)
    locks = LockManager(env, metrics)
    monitor = SafetyMonitor()
    finished = []

    def tx_process(tx, plan):
        attempts = 0
        while True:
            attempts += 1
            assert attempts <= len(schedule) * 8 + 8, "livelock suspected"
            aborted = False
            for resource, exclusive in plan:
                mode = LockMode.X if exclusive else LockMode.S
                outcome = yield from locks.acquire(tx, resource, mode)
                if outcome is LockOutcome.DEADLOCK:
                    aborted = True
                    break
                monitor.grant(tx.tx_id, resource, mode)
                yield env.timeout(0.01)
            resources = list(tx.held_locks.keys())
            locks.release_all(tx)
            monitor.release(tx.tx_id, resources)
            if not aborted:
                finished.append(tx.tx_id)
                return
            tx.reset_for_restart()
            # Staggered restart backoff: identical deterministic delays
            # can re-collide forever (the TM uses a randomized backoff
            # for the same reason).
            yield env.timeout(0.001 * tx.tx_id * tx.restarts)

    for i, plan in enumerate(schedule):
        tx = Transaction(i + 1, "t", [])
        env.process(tx_process(tx, plan))
    env.run()

    assert monitor.violations == []
    assert sorted(finished) == list(range(1, len(schedule) + 1))
    assert locks.held_count() == 0
    assert locks.waiting_count() == 0


@given(schedule=schedule_strategy,
       policy=st.sampled_from(["requester", "youngest"]))
@settings(max_examples=60, deadline=None)
def test_no_wedge_under_either_victim_policy(schedule, policy):
    env = Environment()
    metrics = MetricsCollector(env)
    locks = LockManager(env, metrics, victim_policy=policy)
    finished = []

    def tx_process(tx, plan):
        while True:
            aborted = False
            for resource, exclusive in plan:
                mode = LockMode.X if exclusive else LockMode.S
                outcome = yield from locks.acquire(tx, resource, mode)
                if outcome is LockOutcome.DEADLOCK:
                    aborted = True
                    break
                yield env.timeout(0.01)
            locks.release_all(tx)
            if not aborted:
                finished.append(tx.tx_id)
                return
            tx.reset_for_restart()
            yield env.timeout(0.001 * tx.tx_id * tx.restarts)

    for i, plan in enumerate(schedule):
        tx = Transaction(i + 1, "t", [])
        tx.start_time = float(i)
        env.process(tx_process(tx, plan))
    env.run()
    assert len(finished) == len(schedule)
