"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment, Resource
from repro.storage.cache import NonVolatileCachePolicy, VolatileCachePolicy


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False),
                       min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_time_is_monotonic(delays):
    """Event processing never moves the clock backwards."""
    env = Environment()
    observed = []

    def proc(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(
    capacity=st.integers(min_value=1, max_value=5),
    jobs=st.lists(st.floats(min_value=0.001, max_value=5.0,
                            allow_nan=False),
                  min_size=1, max_size=40),
)
@settings(max_examples=100, deadline=None)
def test_resource_conservation(capacity, jobs):
    """Work conservation: busy servers never exceed capacity and total
    busy time equals total service demand."""
    env = Environment()
    resource = Resource(env, capacity=capacity)
    max_users = [0]

    def job(env, service):
        req = resource.request()
        yield req
        max_users[0] = max(max_users[0], resource.users)
        yield env.timeout(service)
        resource.release(req)

    for service in jobs:
        env.process(job(env, service))
    env.run()
    assert max_users[0] <= capacity
    assert resource.users == 0
    assert resource.monitor.busy.integral() == \
        _approx(sum(jobs))


def _approx(value):
    import pytest
    return pytest.approx(value, rel=1e-9)


@given(
    capacity=st.integers(min_value=1, max_value=5),
    jobs=st.lists(st.floats(min_value=0.001, max_value=5.0,
                            allow_nan=False),
                  min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_fifo_resource_completion_order_single_server(capacity, jobs):
    """With capacity 1 and simultaneous arrival, completion order is
    submission order (FIFO)."""
    if capacity != 1:
        return
    env = Environment()
    resource = Resource(env, capacity=1)
    completions = []

    def job(env, index, service):
        req = resource.request()
        yield req
        yield env.timeout(service)
        resource.release(req)
        completions.append(index)

    for i, service in enumerate(jobs):
        env.process(job(env, i, service))
    env.run()
    assert completions == list(range(len(jobs)))


cache_ops = st.lists(
    st.tuples(st.sampled_from(["read", "write", "complete"]),
              st.integers(min_value=0, max_value=15)),
    max_size=200,
)


@given(capacity=st.integers(min_value=1, max_value=8), ops=cache_ops)
@settings(max_examples=100, deadline=None)
def test_volatile_cache_policy_bounded(capacity, ops):
    cache = VolatileCachePolicy(capacity)
    for op, key in ops:
        if op == "read":
            decision = cache.on_read(key)
            if not decision.hit:
                cache.on_read_fill(key)
        elif op == "write":
            decision = cache.on_write(key)
            # Volatile caches never absorb writes.
            assert decision.needs_disk
        assert len(cache) <= capacity


@given(capacity=st.integers(min_value=1, max_value=8), ops=cache_ops)
@settings(max_examples=100, deadline=None)
def test_nonvolatile_cache_policy_invariants(capacity, ops):
    cache = NonVolatileCachePolicy(capacity)
    pending = []
    for op, key in ops:
        if op == "read":
            decision = cache.on_read(key)
            if not decision.hit:
                cache.on_read_fill(key)
        elif op == "write":
            decision = cache.on_write(key)
            if decision.async_disk_write:
                pending.append(decision.entry)
            # Either absorbed by the cache or sent to disk, never both.
            assert decision.hit != decision.needs_disk
        elif op == "complete" and pending:
            cache.on_disk_write_complete(pending.pop(0))
        assert len(cache) <= capacity
        assert cache.dirty_count() <= len(cache)
    # Completing everything leaves no dirty pages.
    while pending:
        cache.on_disk_write_complete(pending.pop(0))
    assert cache.dirty_count() == 0
