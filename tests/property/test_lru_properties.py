"""Property-based tests for the LRU mechanism (hypothesis)."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.storage.lru import LRUCache

# Operations: (op, key) with op in {"access", "remove"}
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["access", "remove"]),
              st.integers(min_value=0, max_value=30)),
    max_size=300,
)


class ModelLRU:
    """Reference model: OrderedDict-based LRU."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.data = OrderedDict()

    def access(self, key):
        if key in self.data:
            self.data.move_to_end(key)
            return "hit"
        if len(self.data) >= self.capacity:
            self.data.popitem(last=False)
        self.data[key] = True
        return "miss"

    def remove(self, key):
        return self.data.pop(key, None)


@given(capacity=st.integers(min_value=1, max_value=16), ops=ops_strategy)
@settings(max_examples=200, deadline=None)
def test_lru_matches_reference_model(capacity, ops):
    """Our intrusive LRU behaves exactly like an OrderedDict LRU."""
    cache = LRUCache(capacity)
    model = ModelLRU(capacity)
    for op, key in ops:
        if op == "access":
            expected = model.access(key)
            if cache.get(key) is not None:
                actual = "hit"
            else:
                actual = "miss"
                if cache.is_full:
                    victim = cache.victim()
                    cache.remove(victim.key)
                cache.insert(key)
            assert actual == expected
        else:
            in_model = model.remove(key) is not None
            if key in cache:
                cache.remove(key)
                assert in_model
            else:
                assert not in_model
        # State equivalence after every operation.
        assert set(cache.keys()) == set(model.data.keys())
        mru_order = [e.key for e in cache.items_mru_to_lru()]
        assert mru_order == list(reversed(model.data.keys()))


@given(capacity=st.integers(min_value=1, max_value=16), ops=ops_strategy)
@settings(max_examples=100, deadline=None)
def test_lru_never_exceeds_capacity(capacity, ops):
    cache = LRUCache(capacity)
    for _, key in ops:
        if cache.get(key) is None:
            if cache.is_full:
                cache.remove(cache.victim().key)
            cache.insert(key)
        assert len(cache) <= capacity


@given(keys=st.lists(st.integers(0, 50), min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_victim_predicate_consistency(keys):
    """victim(pred) returns the first qualifying entry from the LRU end."""
    cache = LRUCache(64)
    for key in keys:
        if cache.get(key) is None:
            entry = cache.insert(key)
            entry.dirty = key % 2 == 0
    victim = cache.victim(lambda e: not e.dirty)
    lru_clean = [e for e in cache.items_lru_to_mru() if not e.dirty]
    if lru_clean:
        assert victim is lru_clean[0]
    else:
        assert victim is None
