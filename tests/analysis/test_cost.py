"""Unit tests for the cost model (repro.analysis.cost)."""

import pytest

from repro.analysis.cost import (
    STORES_1990,
    StorageCost,
    configuration_cost,
    cost_effectiveness,
    five_minute_rule,
)


class TestStorageCost:
    def test_price_per_page(self):
        store = StorageCost("x", price_per_mb=1024.0, access_time=1e-3)
        # 4 KB page = 1/256 MB.
        assert store.price_per_page() == pytest.approx(4.0)

    def test_cost_of_pages(self):
        store = STORES_1990["nvem"]
        assert store.cost_of_pages(256) == pytest.approx(
            store.price_per_mb, rel=1e-9
        )

    def test_table_2_1_orderings(self):
        """Table 2.1: MM > NVEM > SSD ~ disk cache >> disk (price);
        and the access-time ordering is the reverse."""
        s = STORES_1990
        assert s["main_memory"].price_per_mb > s["nvem"].price_per_mb
        assert s["nvem"].price_per_mb > s["ssd"].price_per_mb
        assert s["ssd"].price_per_mb == s["disk_cache"].price_per_mb
        assert s["ssd"].price_per_mb > s["disk"].price_per_mb
        assert s["nvem"].access_time < s["ssd"].access_time
        assert s["ssd"].access_time < s["disk"].access_time

    def test_nvem_roughly_double_ssd(self):
        """§2: 'Extended memory is about twice as expensive as SSD'."""
        ratio = STORES_1990["nvem"].price_per_mb / \
            STORES_1990["ssd"].price_per_mb
        assert ratio == pytest.approx(2.0, rel=0.1)


class TestConfigurationCost:
    def test_sums_allocations(self):
        cost = configuration_cost([("disk", 1_000_000), ("nvem", 1000)])
        expected = STORES_1990["disk"].cost_of_pages(1_000_000) + \
            STORES_1990["nvem"].cost_of_pages(1000)
        assert cost == pytest.approx(expected)

    def test_unknown_store_rejected(self):
        with pytest.raises(KeyError):
            configuration_cost([("floppy", 10)])

    def test_negative_pages_rejected(self):
        with pytest.raises(ValueError):
            configuration_cost([("disk", -1)])

    def test_nvem_residence_far_more_expensive_than_write_buffer(self):
        """§4.3's cost argument: a small write buffer beats keeping the
        ACCOUNT file resident in semiconductor memory."""
        account_pages = 5_000_000
        resident = configuration_cost([("nvem", account_pages)])
        buffered = configuration_cost([("disk", account_pages),
                                       ("nvem", 500)])
        assert resident > 50 * buffered


class TestCostEffectiveness:
    def test_ranking(self):
        responses = {"disk": 47.0, "wb": 26.0, "nvem": 5.3}
        costs = {"disk": 100.0, "wb": 130.0, "nvem": 30_000.0}
        ranked = cost_effectiveness(responses, costs)
        names = [name for name, _ in ranked]
        # The write buffer gives the most ms saved per dollar.
        assert names[0] == "wb"
        assert names[-1] == "disk"  # baseline: zero gain

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cost_effectiveness({"a": 1.0}, {"b": 2.0})


class TestFiveMinuteRule:
    def test_break_even_in_minutes_range(self):
        """[GP87] era parameters put the break-even at a few minutes."""
        interval = five_minute_rule(
            page_size_kb=1.0,
            disk_price=15_000.0,
            disk_accesses_per_second=15.0,
            memory_price_per_mb=5_000.0,
        )
        assert 60 < interval < 600  # the 'five minute' ballpark

    def test_cheaper_memory_extends_interval(self):
        base = five_minute_rule()
        cheaper = five_minute_rule(memory_price_per_mb=1500.0)
        assert cheaper > base

    def test_faster_disks_shorten_interval(self):
        base = five_minute_rule()
        faster = five_minute_rule(disk_accesses_per_second=30.0)
        assert faster < base

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            five_minute_rule(disk_price=0.0)
