"""Unit tests for the recovery-time model (repro.analysis.recovery)."""

import pytest

from repro.analysis.recovery import (
    RecoveryEstimate,
    RecoveryModel,
    recovery_comparison,
)
from repro.core.config import UpdateStrategy


def model(**overrides):
    params = dict(update_tps=500.0, checkpoint_interval=300.0)
    params.update(overrides)
    return RecoveryModel(**params)


class TestEstimates:
    def test_force_restart_is_tiny(self):
        est = model().estimate(UpdateStrategy.FORCE)
        assert est.total < 0.2  # a handful of page I/Os

    def test_noforce_hand_computed(self):
        """500 update TPS, 300 s interval, defaults:
        exposure 150 s -> 75,000 log pages * 6.4 ms = 480 s scan;
        redo pages = 500*150*3*0.5 = 112,500; read+write 16.4 ms each.
        """
        est = model().estimate(UpdateStrategy.NOFORCE)
        assert est.log_scan_time == pytest.approx(480.0)
        assert est.redo_read_time == pytest.approx(112_500 * 0.0164)
        assert est.redo_write_time == pytest.approx(112_500 * 0.0164)
        assert est.total == pytest.approx(480.0 + 2 * 1845.0)

    def test_noforce_scales_with_checkpoint_interval(self):
        short = model(checkpoint_interval=60.0).estimate(
            UpdateStrategy.NOFORCE)
        long = model(checkpoint_interval=600.0).estimate(
            UpdateStrategy.NOFORCE)
        assert long.total == pytest.approx(10 * short.total, rel=1e-9)

    def test_redo_parallelism_divides_io(self):
        serial = model().estimate(UpdateStrategy.NOFORCE)
        striped = model(redo_parallelism=8.0).estimate(
            UpdateStrategy.NOFORCE)
        assert striped.redo_read_time == pytest.approx(
            serial.redo_read_time / 8.0)
        # Log scan is sequential regardless.
        assert striped.log_scan_time == serial.log_scan_time

    def test_propagated_fraction_reduces_redo(self):
        none = model(already_propagated_fraction=0.0).estimate(
            UpdateStrategy.NOFORCE)
        all_done = model(already_propagated_fraction=1.0).estimate(
            UpdateStrategy.NOFORCE)
        assert all_done.redo_read_time == 0.0
        assert none.redo_read_time > 0.0

    def test_summary_renders(self):
        text = model().estimate(UpdateStrategy.NOFORCE).summary()
        assert "restart" in text and "log scan" in text


class TestValidation:
    def test_bad_interval(self):
        with pytest.raises(ValueError):
            model(checkpoint_interval=0.0).estimate(
                UpdateStrategy.NOFORCE)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            model(already_propagated_fraction=1.5).estimate(
                UpdateStrategy.NOFORCE)

    def test_bad_parallelism(self):
        with pytest.raises(ValueError):
            model(redo_parallelism=0.5).estimate(UpdateStrategy.NOFORCE)

    def test_negative_tps(self):
        with pytest.raises(ValueError):
            model(update_tps=-1.0).estimate(UpdateStrategy.NOFORCE)


class TestBreakEven:
    def test_interval_inversion_roundtrip(self):
        m = model()
        target = 60.0
        interval = m.break_even_checkpoint_interval(target)
        m2 = model(checkpoint_interval=interval)
        assert m2.estimate(UpdateStrategy.NOFORCE).total == \
            pytest.approx(target, rel=1e-9)

    def test_nonpositive_target(self):
        assert model().break_even_checkpoint_interval(0.0) == float("inf")
        assert model().break_even_checkpoint_interval(-5.0) == \
            float("inf")

    def test_zero_rate_never_needs_checkpoints(self):
        assert model(update_tps=0.0).break_even_checkpoint_interval(
            10.0) == float("inf")

    def test_zero_redo_cost_never_needs_checkpoints(self):
        """Free devices + everything already propagated: any interval
        meets any target, so the break-even interval is infinite."""
        m = model(log_page_read_time=0.0,
                  already_propagated_fraction=1.0)
        assert m.break_even_checkpoint_interval(10.0) == float("inf")
        # The NOFORCE estimate itself collapses to zero.
        assert m.estimate(UpdateStrategy.NOFORCE).total == 0.0

    def test_fully_propagated_still_pays_log_scan(self):
        """already_propagated_fraction=1 removes redo I/O but the log
        scan cost keeps the break-even interval finite."""
        m = model(already_propagated_fraction=1.0)
        interval = m.break_even_checkpoint_interval(10.0)
        assert interval != float("inf")
        check = model(already_propagated_fraction=1.0,
                      checkpoint_interval=interval)
        assert check.estimate(UpdateStrategy.NOFORCE).total == \
            pytest.approx(10.0, rel=1e-9)

    def test_force_estimate_independent_of_interval(self):
        """FORCE redoes only the commit window: its restart estimate
        does not depend on the checkpoint interval at all."""
        short = model(checkpoint_interval=10.0).estimate(
            UpdateStrategy.FORCE)
        long = model(checkpoint_interval=10_000.0).estimate(
            UpdateStrategy.FORCE)
        assert short.total == pytest.approx(long.total, rel=1e-12)
        assert short.log_scan_time == long.log_scan_time

    def test_force_estimate_independent_of_rate(self):
        """The commit window is per-transaction work, not rate work."""
        slow = model(update_tps=10.0).estimate(UpdateStrategy.FORCE)
        fast = model(update_tps=1000.0).estimate(UpdateStrategy.FORCE)
        assert slow.total == pytest.approx(fast.total, rel=1e-12)


class TestStorageComparison:
    def test_for_storage_device_times(self):
        m = RecoveryModel.for_storage(100.0, "nvem", "nvem")
        assert m.log_page_read_time == pytest.approx(56e-6)
        assert m.db_page_read_time == pytest.approx(56e-6)

    def test_unknown_devices(self):
        with pytest.raises(ValueError):
            RecoveryModel.for_storage(100.0, "tape", "disk")
        with pytest.raises(ValueError):
            RecoveryModel.for_storage(100.0, "disk", "tape")

    def test_nvem_recovery_orders_of_magnitude_faster(self):
        """The paper's implicit claim: non-volatile semiconductor
        storage also slashes restart times."""
        table = recovery_comparison(update_tps=500.0)
        assert table["disk"]["noforce"] > 100 * table["nvem"]["noforce"]
        assert table["ssd"]["noforce"] < table["disk"]["noforce"]

    def test_force_always_faster_than_noforce(self):
        table = recovery_comparison(update_tps=500.0)
        for allocation in table.values():
            assert allocation["force"] < allocation["noforce"]
