"""End-to-end tracing against the real simulator.

The load-bearing invariant: tracing is a pure side channel.  A run with
``trace.enabled`` (any sampling rate, telemetry on or off) must produce
*bit-identical* Results to an untraced run of the same seed — the span
stream and gauges live outside the simulation state and the sampler
draws from its own RNG substream.
"""

import dataclasses

import pytest

from repro.core.model import TransactionSystem
from repro.experiments.defaults import debit_credit_config, disk_only
from repro.experiments.export import results_to_dict
from repro.trace import attribute, check_span_accounting
from repro.workload.debit_credit import DebitCreditWorkload


def _run(trace_kwargs=None, seed=5, rate=150.0, warmup=0.4, duration=1.2):
    config = debit_credit_config(disk_only())
    if trace_kwargs:
        config.trace = dataclasses.replace(config.trace, **trace_kwargs)
    config.validate()
    system = TransactionSystem(
        config, DebitCreditWorkload(arrival_rate=rate), seed=seed)
    results = system.run(warmup=warmup, duration=duration)
    return system, results


class TestSideChannelNeutrality:
    def test_tracing_does_not_change_results(self):
        _, plain = _run()
        system, traced = _run({"enabled": True})
        assert system.tracer is not None and system.tracer.spans
        assert results_to_dict(traced) == results_to_dict(plain)

    def test_sampling_does_not_change_results(self):
        _, plain = _run()
        system, sampled = _run({"enabled": True, "sample": 7})
        assert results_to_dict(sampled) == results_to_dict(plain)
        # Sampled runs trace a strict subset of transactions.
        full, _ = _run({"enabled": True})
        assert 0 < len(system.tracer.spans) < len(full.tracer.spans)

    def test_telemetry_does_not_change_core_results(self):
        _, plain = _run()
        _, sampled = _run({"enabled": True, "telemetry_interval": 0.25})
        payload = results_to_dict(sampled)
        series = payload.pop("timeseries")
        assert payload == results_to_dict(plain)
        assert series  # the side channel itself did record

    def test_latency_detail_only_adds_a_block(self):
        _, plain = _run()
        _, detailed = _run({"latency_detail": True})
        payload = results_to_dict(detailed)
        latency = payload.pop("latency")
        assert payload == results_to_dict(plain)
        assert latency["slo_ms"] == 1000.0


class TestSpanAccounting:
    def test_phase_spans_tile_response_time(self):
        system, results = _run({"enabled": True})
        report = check_span_accounting(system.tracer.spans,
                                       system.tracer.measure_start,
                                       tolerance=1e-9)
        assert report["transactions"] > 50
        summary = attribute(system.tracer.spans,
                            system.tracer.measure_start)
        assert summary["response_mean"] * 1e3 == \
            pytest.approx(results.response_time_ms, rel=0.15)
        # A disk run pays its commit in disk log forces.
        assert "log.force[log_disk]" in summary["details"]
        assert "io.read" in summary["details"]

    def test_warmup_spans_are_cleared_at_reset(self):
        system, _ = _run({"enabled": True})
        assert system.tracer.measure_start > 0.0
        assert all(s[3] >= 0.0 for s in system.tracer.spans)
        roots = [s for s in system.tracer.spans if s[0] == "tx"]
        assert roots
        # Only post-boundary arrivals are attributed.
        grouped = attribute(system.tracer.spans,
                            system.tracer.measure_start)
        assert grouped["traced_tx"] <= len(roots)


class TestLatencyDetail:
    def test_percentiles_are_ordered_and_exported(self):
        _, results = _run({"latency_detail": True})
        lat = results.latency
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"]
        assert results.response_time_p50 == lat["p50"]
        assert results.response_time_p99 == lat["p99"]
        assert results.slo_attainment == lat["slo_attainment"]
        # A healthy 150 TPS disk system meets a 1 s SLO outright.
        assert lat["slo_attainment"] == 1.0

    def test_slo_threshold_is_configurable(self):
        _, results = _run({"latency_detail": True, "slo_ms": 1.0})
        # A 1 ms SLO is unmeetable on disk commits.
        assert results.latency["slo_ms"] == 1.0
        assert results.latency["slo_attainment"] < 0.5

    def test_coarse_fallbacks_without_latency_block(self):
        _, results = _run()
        assert results.latency is None
        assert results.response_time_p50 == results.response_time_mean
        assert results.response_time_p99 == results.response_time_p95
        assert results.slo_attainment == 1.0


class TestTelemetry:
    def test_gauges_cover_the_measured_window(self):
        system, results = _run({"enabled": True,
                                "telemetry_interval": 0.2})
        series = results.timeseries
        assert len(series) >= 5
        times = [s["t"] for s in series]
        assert times == sorted(times)
        assert all(t >= system.tracer.measure_start for t in times)
        last = series[-1]
        assert last["committed"] == results.committed
        assert 0.0 <= last["mm_hit"] <= 1.0
        assert "db0" in last["util"]
        # Commit deltas over the window reconstruct the total.
        tps_sum = sum(s["tps"] for s in series) * 0.2
        assert tps_sum == pytest.approx(results.committed, rel=0.25)

    def test_sampler_rejects_nonpositive_interval(self):
        from repro.trace import TelemetrySampler

        with pytest.raises(ValueError):
            TelemetrySampler(object(), 0.0)


class TestClusterTracing:
    def _cluster(self, log="nvem", traced=True, seed=3):
        from repro.cluster import cluster_config, node_scheme
        from repro.cluster.workload import ShardedDebitCreditWorkload

        config = cluster_config(scheme=node_scheme(log=log), num_nodes=2)
        if traced:
            config.node.trace = dataclasses.replace(
                config.node.trace, enabled=True)
        workload = ShardedDebitCreditWorkload.for_cluster(
            config, arrival_rate_per_node=40.0, distributed_fraction=0.3)
        system = config.build_system(workload, seed=seed)
        results = system.run(warmup=0.5, duration=1.5)
        return system, results

    def test_cluster_tracing_is_neutral_too(self):
        _, plain = self._cluster(traced=False)
        system, traced = self._cluster(traced=True)
        assert results_to_dict(traced) == results_to_dict(plain)
        assert system.tracer.spans

    def test_nodes_share_one_span_buffer_with_tags(self):
        system, _ = self._cluster()
        assert all(node.tracer.spans is system.tracer.spans
                   for node in system.nodes)
        nodes_seen = {s[2] for s in system.tracer.spans}
        assert nodes_seen == {0, 1}
        check_span_accounting(system.tracer.spans,
                              system.tracer.measure_start,
                              tolerance=1e-9)

    def test_2pc_phases_and_piece_details_recorded(self):
        system, results = self._cluster()
        assert results.cluster["distributed_commits"] > 10
        names = {s[0] for s in system.tracer.spans}
        assert {"2pc.work", "2pc.prepare", "2pc.decision",
                "2pc.notify"} <= names
        assert {"piece.work", "piece.prepare", "piece.indoubt"} <= names
        # Branch transactions are keyed by their negative branch ids.
        piece_ids = {s[1] for s in system.tracer.spans
                     if s[0] == "piece.work"}
        assert piece_ids and all(tx < 0 for tx in piece_ids)
