"""Traced experiment runs: hook plumbing, file output, golden pin."""

import json

import pytest

from repro.experiments import api
from repro.experiments.api import ExperimentRunner
from repro.experiments.export import experiment_to_dict
from repro.trace import (
    check_span_accounting,
    read_trace,
    run_traced,
    trace_points,
    write_perfetto,
)
from tests.experiments.conftest import make_tiny_spec


@pytest.fixture
def tiny_registered():
    spec = make_tiny_spec("_trace_tiny")
    api.register(spec.id, lambda: spec)
    yield spec
    api.unregister(spec.id)


def canonical(result) -> str:
    return json.dumps(experiment_to_dict(result), sort_keys=True,
                      separators=(",", ":"))


class TestRunnerHooks:
    def test_hooks_conflict_with_orchestration_modes(self):
        for kwargs in ({"parallel": True}, {"resume": True},
                       {"journal": True}):
            with pytest.raises(ValueError, match="configure/observe"):
                ExperimentRunner(configure=lambda c: c, **kwargs)

    def test_identity_hooks_reproduce_the_plain_run(self, tiny_registered):
        plain = ExperimentRunner().run_one(tiny_registered,
                                           profile="full")
        seen = []
        hooked = ExperimentRunner(
            configure=lambda config: config,
            observe=lambda task, system, results: seen.append(task[0]),
        ).run_one(tiny_registered, profile="full")
        assert canonical(hooked) == canonical(plain)
        # Every evaluated point was observed (2 curves x 2 xs).
        assert len(seen) == 4


class TestRunTraced:
    def test_trace_file_and_result_match_untraced(self, tiny_registered,
                                                  tmp_path):
        plain = ExperimentRunner().run_one(tiny_registered,
                                           profile="full")
        out = str(tmp_path / "tiny.trace.jsonl")
        result, header, points = run_traced(tiny_registered.id, out,
                                            profile="full")
        assert canonical(result) == canonical(plain)
        assert header["experiment"] == tiny_registered.id
        assert header["sample"] == 1
        assert header["seed"] == tiny_registered.seed
        plotted = sum(len(s.points) for s in result.series)
        assert len(points) == plotted
        read_header, read_points, spans = read_trace(out, validate=True)
        assert read_header["experiment"] == tiny_registered.id
        assert len(read_points) == plotted
        assert all(spans[p["point"]] for p in read_points)

    def test_per_point_attribution_sums(self, tiny_registered, tmp_path):
        out = str(tmp_path / "tiny.trace.jsonl")
        run_traced(tiny_registered.id, out, profile="full")
        for point, summary in trace_points(out, validate=True):
            if not summary["traced_tx"]:
                continue
            assert abs(summary["residual"]) < 1e-9
            assert summary["response_mean"] * 1e3 == pytest.approx(
                point["response_ms"], rel=0.35)

    def test_sampled_run_keeps_results_traces_fewer(self, tiny_registered,
                                                    tmp_path):
        full_out = str(tmp_path / "full.jsonl")
        sampled_out = str(tmp_path / "sampled.jsonl")
        full, _, full_points = run_traced(tiny_registered.id, full_out,
                                          profile="full")
        sampled, _, sampled_points = run_traced(
            tiny_registered.id, sampled_out, profile="full", sample=5)
        assert canonical(sampled) == canonical(full)
        assert sum(len(p["spans"]) for p in sampled_points) < \
            sum(len(p["spans"]) for p in full_points)

    def test_telemetry_rides_along(self, tiny_registered, tmp_path):
        out = str(tmp_path / "tiny.trace.jsonl")
        result, _, _ = run_traced(tiny_registered.id, out,
                                  profile="full", telemetry=0.2)
        sampled = result.series[0].points[0].results
        assert sampled.timeseries

    def test_unknown_experiment_raises(self, tmp_path):
        with pytest.raises(KeyError):
            run_traced("_no_such_experiment",
                       str(tmp_path / "x.jsonl"))


@pytest.mark.slow
class TestGoldenWithTracingOn:
    """Acceptance pin: the traced fig4_1 fast sweep is bit-identical to
    the untraced golden, and every plotted point's spans account for
    its response time."""

    def test_fig4_1_traced_digest_and_accounting(self, tmp_path):
        import hashlib

        from tests.integration.test_golden_fig4_1 import GOLDEN_SHA256

        out = str(tmp_path / "fig4_1.trace.jsonl")
        result, _, points = run_traced("fig4_1", out, profile="fast")
        digest = hashlib.sha256(canonical(result).encode()).hexdigest()
        assert digest == GOLDEN_SHA256, (
            "tracing perturbed the simulation trajectory"
        )
        for point in points:
            check_span_accounting(point["spans"],
                                  point["measure_start"],
                                  tolerance=1e-9)
        pf = str(tmp_path / "fig4_1.perfetto.json")
        events = write_perfetto(out, pf)
        assert events > sum(len(p["spans"]) for p in points)
