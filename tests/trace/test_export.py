"""JSONL trace serialization and Perfetto conversion tests."""

import json

import pytest

from repro.trace import SCHEMA, read_trace, validate_record, write_perfetto
from repro.trace.export import span_record, write_trace

HEADER = {"experiment": "fig_x", "profile": "fast", "sample": 1, "seed": 1}

#: Two points: one committed transaction each, plus a system span.
POINTS = [
    {"point": 0, "series": "alpha", "x": 50.0, "measure_start": 1.0,
     "response_ms": 20.0, "committed": 1, "dropped": 0,
     "spans": [("tx", 7, 0, 1.0, 1.02, None),
               ("fix", 7, 0, 1.0, 1.015, None),
               ("commit", 7, 0, 1.015, 1.02, None),
               ("log.force", 7, 0, 1.016, 1.019, "log_disk")]},
    {"point": 1, "series": "alpha", "x": 100.0, "measure_start": 1.0,
     "response_ms": 30.0, "committed": 1, "dropped": 2,
     "spans": [("restart.scan", None, 0, 2.0, 2.5, None)]},
]


def _write(tmp_path):
    path = str(tmp_path / "t.jsonl")
    count = write_trace(path, dict(HEADER),
                        [dict(p, spans=list(p["spans"])) for p in POINTS])
    return path, count


class TestJsonlRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        path, count = _write(tmp_path)
        assert count == 5
        header, points, spans = read_trace(path, validate=True)
        assert header["schema"] == SCHEMA
        assert header["experiment"] == "fig_x"
        assert [p["x"] for p in points] == [50.0, 100.0]
        assert [s["name"] for s in spans[0]] == ["tx", "fix", "commit",
                                                 "log.force"]
        assert spans[0][3]["attrs"] == "log_disk"
        # System spans serialize tx as null.
        assert spans[1][0]["tx"] is None

    def test_every_line_is_valid_json(self, tmp_path):
        path, _ = _write(tmp_path)
        with open(path) as fh:
            records = [json.loads(line) for line in fh]
        for record in records:
            validate_record(record)
        assert records[0]["type"] == "header"

    def test_headerless_file_rejected(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "point", "point": 0}) + "\n")
        with pytest.raises(ValueError, match="no trace header"):
            read_trace(path)

    def test_attrs_omitted_when_empty(self):
        record = span_record(0, ("fix", 1, 0, 0.0, 1.0, None))
        assert "attrs" not in record
        record = span_record(0, ("io.read", 1, 0, 0.0, 1.0, "disk"))
        assert record["attrs"] == "disk"


class TestValidateRecord:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown trace record"):
            validate_record({"type": "frobnicate"})

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            validate_record({"type": "span", "point": 0, "name": "fix"})

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported trace schema"):
            validate_record({"type": "header", "schema": "repro-trace/99",
                             "experiment": "e", "profile": "fast",
                             "sample": 1, "seed": 1})

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            validate_record({"type": "span", "point": 0, "name": "fix",
                             "tx": 1, "node": 0, "t0": 2.0, "t1": 1.0})


class TestPerfetto:
    def test_conversion_structure(self, tmp_path):
        path, _ = _write(tmp_path)
        out = str(tmp_path / "t.perfetto.json")
        events = write_perfetto(path, out)
        # 5 span events + 2 process-name metadata events.
        assert events == 7
        payload = json.load(open(out))
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["experiment"] == "fig_x"
        metas = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == \
            {"fig_x alpha x=50.0", "fig_x alpha x=100.0"}
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        tx_root = next(e for e in slices if e["name"] == "tx")
        assert tx_root["pid"] == 0 and tx_root["tid"] == 7
        assert tx_root["ts"] == pytest.approx(1.0e6)
        assert tx_root["dur"] == pytest.approx(0.02e6)
        force = next(e for e in slices if e["name"] == "log.force")
        assert force["args"]["attrs"] == "log_disk"
        # System spans land on thread 0 of their point's process.
        scan = next(e for e in slices if e["name"] == "restart.scan")
        assert scan["pid"] == 1 and scan["tid"] == 0
