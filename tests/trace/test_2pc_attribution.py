"""Acceptance: the trace explains the NVEM-vs-disk 2PC commit gap.

``ablation_2pc_cost`` shows the distributed commit phase growing with
the distributed fraction, far faster under a disk log than an NVEM
log.  The span trace must *attribute* that gap: the coordinator's
``2pc.prepare`` and ``2pc.decision`` phases contain the participants'
and coordinator's forced log records, so under a disk log each phase
approaches ``fraction x disk-force latency`` while under NVEM both
stay near the message cost.
"""

import pytest

from repro.trace import run_traced, trace_points


@pytest.mark.slow
def test_traced_2pc_cost_attributes_the_log_placement_gap(tmp_path):
    out = str(tmp_path / "ablation_2pc_cost.trace.jsonl")
    run_traced("ablation_2pc_cost", out, profile="fast")
    summaries = {}
    for point, summary in trace_points(out, validate=True):
        assert abs(summary["residual"]) < 1e-9
        summaries[(point["series"], point["x"])] = summary

    def phase_ms(series, x, name):
        return summaries[(series, x)]["phases"].get(name, 0.0) * 1e3

    def force_mean_ms(series, x, kind):
        detail = summaries[(series, x)]["details"]
        return detail[f"log.force[{kind}]"]["mean"] * 1e3

    # Purely local commits have no 2PC phases at all.
    for series in ("NVEM log", "disk log"):
        assert phase_ms(series, 0.0, "2pc.prepare") == 0.0
        assert phase_ms(series, 0.0, "2pc.decision") == 0.0

    # The prepare/decision phases grow with the distributed fraction...
    for series in ("NVEM log", "disk log"):
        assert phase_ms(series, 0.5, "2pc.prepare") > \
            phase_ms(series, 0.25, "2pc.prepare") > 0.0

    # ...and the disk log pays an order of magnitude more than NVEM.
    assert phase_ms("disk log", 0.5, "2pc.prepare") > \
        10.0 * phase_ms("NVEM log", 0.5, "2pc.prepare")
    assert phase_ms("disk log", 0.5, "2pc.decision") > \
        10.0 * phase_ms("NVEM log", 0.5, "2pc.decision")

    # The per-force detail spans carry the why: a disk force is
    # milliseconds, an NVEM force is microseconds.
    disk_force = force_mean_ms("disk log", 0.5, "log_disk")
    nvem_force = force_mean_ms("NVEM log", 0.5, "log_nvem")
    assert disk_force > 10.0 * nvem_force

    # And they are consistent: half the commits are distributed, each
    # preparing through one forced participant record, so the mean
    # prepare phase is roughly fraction x force latency.
    assert phase_ms("disk log", 0.5, "2pc.prepare") == \
        pytest.approx(0.5 * disk_force, rel=0.35)
