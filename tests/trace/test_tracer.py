"""Unit tests for the span tracer and its configuration."""

import dataclasses

import pytest

from repro.core.config import TraceConfig
from repro.sim import Environment, RandomStreams
from repro.trace import DETAIL_SPANS, PHASE_SPANS, ROOT_SPAN, Tracer


class _Tx:
    traced = False


class TestTracer:
    def test_sample_one_admits_everything_without_rng(self):
        tracer = Tracer(Environment())
        assert tracer._rng is None
        for _ in range(10):
            tx = _Tx()
            assert tracer.admit(tx) is True
            assert tx.traced is True

    def test_sampling_uses_dedicated_substream(self):
        streams = RandomStreams(1)
        tracer = Tracer(Environment(), streams=streams, sample=4)
        assert tracer._rng is streams.stream("trace-sample")
        decisions = [tracer.admit(_Tx()) for _ in range(400)]
        traced = sum(decisions)
        # 1/4 in expectation; generous bounds keep the test seed-proof.
        assert 40 < traced < 180

    def test_sampling_is_seed_deterministic(self):
        def decisions(seed):
            tracer = Tracer(Environment(), streams=RandomStreams(seed),
                            sample=3)
            return [tracer.admit(_Tx()) for _ in range(50)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_buffer_is_bounded_and_counts_drops(self):
        tracer = Tracer(Environment(), max_spans=3)
        for i in range(5):
            tracer.span("fix", i, 0.0, 1.0)
        assert len(tracer.spans) == 3
        assert tracer.dropped == 2

    def test_for_node_views_share_buffer_and_counters(self):
        tracer = Tracer(Environment(), max_spans=2)
        view = tracer.for_node(3)
        assert view.node == 3 and tracer.node == 0
        view.span("lock", 1, 0.0, 0.5)
        tracer.span("lock", 2, 0.0, 0.5)
        assert tracer.spans is view.spans
        assert [s[2] for s in tracer.spans] == [3, 0]
        view.span("lock", 3, 0.0, 0.5)
        assert tracer.dropped == view.dropped == 1

    def test_clear_marks_the_warmup_boundary(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.span("fix", 1, 0.0, 1.0)
        env.run(until=5.0)
        tracer.clear()
        assert tracer.spans == []
        assert tracer.dropped == 0
        assert tracer.measure_start == 5.0
        # Views see the boundary too.
        assert tracer.for_node(1).measure_start == 5.0

    def test_span_names_partition_cleanly(self):
        assert ROOT_SPAN not in PHASE_SPANS
        assert not PHASE_SPANS & DETAIL_SPANS


class TestTraceConfig:
    def test_defaults_are_off_and_valid(self):
        config = TraceConfig()
        assert not config.enabled
        config.validate()

    @pytest.mark.parametrize("kwargs", [
        {"sample": 0},
        {"enabled": True, "sample": 0},
        {"enabled": True, "max_spans": 0},
        {"slo_ms": 0.0},
        {"telemetry_interval": -1.0},
        {"telemetry_max_samples": 0},
        # Sampling without tracing is a configuration mistake.
        {"enabled": False, "sample": 10},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            dataclasses.replace(TraceConfig(), **kwargs).validate()

    def test_enabled_sampled_config_valid(self):
        TraceConfig(enabled=True, sample=10,
                    telemetry_interval=0.5).validate()
