"""Latency-attribution and span-accounting tests on synthetic spans."""

import pytest

from repro.trace import (
    attribute,
    check_span_accounting,
    per_tx_spans,
    render_attribution,
)


def _committed_tx(tx_id, base):
    """A committed transaction whose phases tile [base, base+10]."""
    return [
        ("queue", tx_id, 0, base, base + 2.0, None),
        ("cpu.bot", tx_id, 0, base + 2.0, base + 3.0, None),
        ("fix", tx_id, 0, base + 3.0, base + 9.0, None),
        ("commit", tx_id, 0, base + 9.0, base + 10.0, None),
        ("io.read", tx_id, 0, base + 4.0, base + 8.0, "disk"),
        ("log.force", tx_id, 0, base + 9.2, base + 9.8, "log_disk"),
        ("tx", tx_id, 0, base, base + 10.0, None),
    ]


class TestPerTxSpans:
    def test_groups_by_trusted_root(self):
        spans = _committed_tx(1, 0.0) + _committed_tx(2, 20.0)
        grouped = per_tx_spans(spans)
        assert set(grouped) == {1, 2}
        assert grouped[1]["root"] == (0.0, 10.0)
        assert len(grouped[1]["phases"]) == 4
        assert len(grouped[1]["details"]) == 2

    def test_warmup_boundary_excludes_earlier_roots(self):
        spans = _committed_tx(1, 0.0) + _committed_tx(2, 20.0)
        grouped = per_tx_spans(spans, measure_start=15.0)
        assert set(grouped) == {2}

    def test_accepts_jsonl_dict_spans(self):
        spans = [{"name": "tx", "tx": 5, "node": 1, "t0": 0.0, "t1": 1.0},
                 {"name": "fix", "tx": 5, "node": 1, "t0": 0.0, "t1": 1.0}]
        grouped = per_tx_spans(spans)
        assert grouped[5]["root"] == (0.0, 1.0)


class TestAttribute:
    def test_phases_sum_to_response_mean(self):
        spans = _committed_tx(1, 0.0) + _committed_tx(2, 20.0)
        summary = attribute(spans)
        assert summary["traced_tx"] == 2
        assert summary["response_mean"] == pytest.approx(10.0)
        assert sum(summary["phases"].values()) == \
            pytest.approx(summary["response_mean"])
        assert summary["residual"] == pytest.approx(0.0, abs=1e-12)
        assert summary["phases"]["fix"] == pytest.approx(6.0)

    def test_log_forces_split_by_placement(self):
        spans = _committed_tx(1, 0.0)
        spans += [("log.force", 1, 0, 9.0, 9.1, "log_nvem")]
        summary = attribute(spans)
        assert "log.force[log_disk]" in summary["details"]
        assert "log.force[log_nvem]" in summary["details"]
        assert summary["details"]["io.read"]["count"] == 1

    def test_empty_stream_is_all_zero(self):
        summary = attribute([])
        assert summary["traced_tx"] == 0
        assert summary["response_mean"] == 0.0
        assert summary["phases"] == {}


class TestCheckSpanAccounting:
    def test_tiled_transactions_pass(self):
        spans = _committed_tx(1, 0.0) + _committed_tx(2, 20.0)
        report = check_span_accounting(spans)
        assert report["transactions"] == 2
        assert report["max_residual"] == pytest.approx(0.0, abs=1e-12)

    def test_overlapping_phases_fail(self):
        spans = [("tx", 1, 0, 0.0, 10.0, None),
                 ("fix", 1, 0, 0.0, 6.0, None),
                 ("commit", 1, 0, 5.0, 10.0, None)]
        with pytest.raises(AssertionError, match="overlapping"):
            check_span_accounting(spans)

    def test_uncovered_interval_fails(self):
        spans = [("tx", 1, 0, 0.0, 10.0, None),
                 ("fix", 1, 0, 0.0, 4.0, None)]
        with pytest.raises(AssertionError, match="do not sum"):
            check_span_accounting(spans)

    def test_detail_spans_may_overlap_freely(self):
        spans = _committed_tx(1, 0.0)
        spans += [("io.read", 1, 0, 3.5, 8.5, "disk")]
        check_span_accounting(spans)


class TestRender:
    def test_table_contains_phases_shares_and_details(self):
        spans = _committed_tx(1, 0.0)
        text = render_attribution("alpha x=50", attribute(spans),
                                  measured_ms=10_000.0)
        assert "alpha x=50: 1 traced tx" in text
        assert "measured 10000.000 ms" in text
        assert "fix" in text and "60.0%" in text
        assert "log.force[log_disk]" in text
        assert "residual" in text and "sum" in text
