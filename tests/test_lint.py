"""Source-level lint checks the CI image can run without extra tools.

The experiment modules long carried ``duration: float = None`` — a PEP
484 violation (an implicit-Optional default behind a non-Optional
annotation) that flake8/mypy would flag.  Neither tool is a dependency
of this repo, so this AST-based check enforces the rule in the tier-1
suite: any parameter whose default is ``None`` must have an
``Optional[...]``-style (or omitted) annotation.
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Annotations that legitimately accept None.
_OPTIONAL_MARKERS = ("Optional", "Union", "Any", "None", "object")


def _annotation_allows_none(node: ast.expr) -> bool:
    text = ast.unparse(node)
    return "None" in text or any(marker in text
                                 for marker in _OPTIONAL_MARKERS) \
        or "|" in text


def _implicit_optional_params(tree: ast.AST):
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        positional = args.posonlyargs + args.args
        defaults = args.defaults
        # Defaults align with the tail of the positional parameters.
        for arg, default in zip(positional[len(positional)
                                           - len(defaults):], defaults):
            yield node, arg, default
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                yield node, arg, default


def test_no_implicit_optional_annotations():
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for func, arg, default in _implicit_optional_params(tree):
            if not (isinstance(default, ast.Constant)
                    and default.value is None):
                continue
            if arg.annotation is None:
                continue
            if _annotation_allows_none(arg.annotation):
                continue
            violations.append(
                f"{path.relative_to(SRC.parent.parent)}:{arg.lineno} "
                f"{func.name}({arg.arg}: "
                f"{ast.unparse(arg.annotation)} = None)"
            )
    assert not violations, (
        "PEP 484 implicit-Optional defaults (annotate as "
        "Optional[...]):\n" + "\n".join(violations)
    )
