"""Checkpoint-journal and --resume tests.

An interrupted run must leave a journal that (a) parses even with a
torn final line, (b) resumes only under the same run key, and (c)
yields byte-identical output when the remainder is recomputed.
``repro watch`` renders the same journal, so its pure renderer is
covered here too.
"""

import io
import json

import pytest

from repro.experiments.api import ExperimentRunner
from repro.experiments.export import experiment_to_dict
from repro.experiments.journal import (
    JOURNAL_VERSION,
    RunJournal,
    find_latest_journal,
    read_run,
)
from repro.experiments.store import ResultStore
from repro.experiments.watch import render, watch


def canonical(result) -> str:
    return json.dumps(experiment_to_dict(result), sort_keys=True,
                      separators=(",", ":"))


class TestJournalFile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = RunJournal(path)
        journal.start({"run_key": "k", "total_points": 2,
                       "per_experiment": {"e": 2}})
        journal.record_point({"experiment": "e", "x": 1.0,
                              "fingerprint": "f1", "source": "computed"})
        journal.finish({"hits": 0, "misses": 1})
        view = read_run(path)
        assert view.header["run_key"] == "k"
        assert view.header["version"] == JOURNAL_VERSION
        assert [p["fingerprint"] for p in view.points] == ["f1"]
        assert view.done["misses"] == 1
        assert view.total_points == 2

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(str(path))
        journal.start({"run_key": "k", "total_points": 3})
        journal.record_point({"experiment": "e", "fingerprint": "f1"})
        journal.record_point({"experiment": "e", "fingerprint": "f2"})
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "point", "fingerprint": "f3", "resu')
        view = read_run(str(path))
        assert [p["fingerprint"] for p in view.points] == ["f1", "f2"]
        assert view.done is None

    def test_missing_file_reads_empty(self, tmp_path):
        view = read_run(str(tmp_path / "absent.jsonl"))
        assert view.header is None
        assert view.points == []

    def test_resume_requires_matching_run_key(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = RunJournal(path)
        journal.start({"run_key": "k1", "total_points": 1})
        journal.close()
        assert RunJournal(path).load_for_resume("k1") is not None
        assert RunJournal(path).load_for_resume("k2") is None

    def test_latest_marker(self, tmp_path):
        journal = RunJournal(str(tmp_path / "a.jsonl"))
        journal.start({"run_key": "k"})
        journal.close()
        assert find_latest_journal(str(tmp_path)) == \
            str(tmp_path / "a.jsonl")
        # A stale marker falls back to the newest *.jsonl on disk.
        (tmp_path / "LATEST").write_text("gone.jsonl\n", encoding="utf-8")
        assert find_latest_journal(str(tmp_path)) == \
            str(tmp_path / "a.jsonl")


class TestResume:
    def run_cold(self, spec, tmp_path):
        store = ResultStore(str(tmp_path))
        runner = ExperimentRunner(store=store, journal=True)
        result = runner.run_one(spec, profile="full")
        return store, runner, result

    def test_resume_reloads_completed_points(self, tiny_spec, tmp_path):
        store, cold_runner, cold = self.run_cold(tiny_spec, tmp_path)
        journal_path = cold_runner.last_journal_path
        assert journal_path is not None
        # Wipe the point store: resume must work from the journal alone.
        store.clear()
        runner = ExperimentRunner(store=ResultStore(str(tmp_path)),
                                  resume=True)
        resumed = runner.run_one(tiny_spec, profile="full")
        assert canonical(resumed) == canonical(cold)
        stats = runner.last_stats
        assert stats.resumed == stats.total
        assert stats.misses == stats.hits == 0

    def test_partial_journal_recomputes_remainder(self, tiny_spec,
                                                  tmp_path):
        store, cold_runner, cold = self.run_cold(tiny_spec, tmp_path)
        journal_path = cold_runner.last_journal_path
        # Simulate an interrupt: keep header + the first point line only.
        lines = open(journal_path, encoding="utf-8").read().splitlines()
        point_lines = [ln for ln in lines
                       if '"type":"point"' in ln or
                       '"type": "point"' in ln]
        header_line = lines[0]
        with open(journal_path, "w", encoding="utf-8") as fh:
            fh.write(header_line + "\n" + point_lines[0] + "\n")
        store.clear()
        runner = ExperimentRunner(store=ResultStore(str(tmp_path)),
                                  resume=True)
        resumed = runner.run_one(tiny_spec, profile="full")
        assert canonical(resumed) == canonical(cold)
        stats = runner.last_stats
        assert stats.resumed >= 1
        assert stats.resumed < stats.total
        assert stats.misses >= 1

    def test_mismatched_run_key_starts_fresh(self, tiny_spec, tmp_path):
        store, cold_runner, cold = self.run_cold(tiny_spec, tmp_path)
        # A seed override changes the run key: nothing may be resumed
        # from the default-seed journal (explicit path forces the clash).
        runner = ExperimentRunner(store=ResultStore(str(tmp_path)),
                                  journal=cold_runner.last_journal_path,
                                  resume=True, seed=7)
        result = runner.run_one(tiny_spec, profile="full")
        assert runner.last_stats.resumed == 0
        assert canonical(result) != canonical(cold)


class TestWatchRenderer:
    def journal_view(self, tmp_path, finish=False):
        path = str(tmp_path / "run.jsonl")
        journal = RunJournal(path)
        journal.start({"run_key": "cafebabe" * 8, "profile": "fast",
                       "seed": None, "total_points": 4,
                       "per_experiment": {"fig_a": 2, "fig_b": 2}})
        journal.record_point({"experiment": "fig_a", "x": 50.0,
                              "source": "computed", "response_ms": 41.5,
                              "saturated": False, "fingerprint": "f1"})
        journal.record_point({"experiment": "fig_a", "x": 200.0,
                              "source": "cache", "response_ms": 97.1,
                              "saturated": True, "fingerprint": "f2"})
        if finish:
            journal.finish({"hits": 1, "misses": 1, "elapsed_s": 2.5})
        else:
            journal.close()
        return path

    def test_render_progress_frame(self, tmp_path):
        frame = render(read_run(self.journal_view(tmp_path)))
        assert "profile=fast" in frame
        assert "fig_a" in frame and "fig_b" in frame
        assert "2/2" in frame and "0/2" in frame
        assert "last x=200" in frame
        assert "[cache]" in frame and "*saturated" in frame
        assert "total 2/4 (50%)" in frame
        assert "1 computed, 1 cached, 0 resumed" in frame

    def test_render_headerless_journal(self, tmp_path):
        frame = render(read_run(str(tmp_path / "absent.jsonl")))
        assert "waiting for a run" in frame

    def test_watch_once_exit_codes(self, tmp_path):
        unfinished = self.journal_view(tmp_path)
        out = io.StringIO()
        assert watch(unfinished, once=True, stream=out) == 1
        finished = self.journal_view(tmp_path, finish=True)
        out = io.StringIO()
        assert watch(finished, once=True, stream=out) == 0
        assert "run finished: 1 hit(s)" in out.getvalue()


class TestWatchRatesAndSparklines:
    """Point wall-timestamps feed per-figure rates + ETA; telemetry
    time series (when a point carries one) renders as a sparkline."""

    def timed_view(self, tmp_path, timeseries=None):
        path = str(tmp_path / "run.jsonl")
        journal = RunJournal(path)
        journal.start({"run_key": "cafebabe" * 8, "profile": "fast",
                       "seed": None, "total_points": 8,
                       "per_experiment": {"fig_a": 8}})
        for i in range(4):
            point = {"experiment": "fig_a", "x": 50.0 * (i + 1),
                     "t": 1000.0 + 10.0 * i, "source": "computed",
                     "response_ms": 40.0, "saturated": False}
            if timeseries is not None and i == 3:
                point["results"] = {"timeseries": timeseries}
            journal.record_point(point)
        journal.close()
        return path

    def test_rate_and_eta_rendered(self, tmp_path):
        frame = render(read_run(self.timed_view(tmp_path)))
        # 3 intervals over 30 s = 6 pt/min; 4 of 8 left -> eta 40 s.
        assert "6.0 pt/min" in frame
        assert "eta 0:40" in frame

    def test_untimed_journal_renders_without_rates(self, tmp_path):
        path = str(tmp_path / "old.jsonl")
        journal = RunJournal(path)
        journal.start({"run_key": "0" * 64, "profile": "fast",
                       "seed": None, "total_points": 2,
                       "per_experiment": {"fig_a": 2}})
        journal.record_point({"experiment": "fig_a", "x": 1.0,
                              "source": "computed", "response_ms": 1.0,
                              "saturated": False})
        journal.close()
        frame = render(read_run(path))
        assert "pt/min" not in frame

    def test_timeseries_sparkline_rendered(self, tmp_path):
        series = [{"t": float(i), "tps": 10.0 * i} for i in range(8)]
        frame = render(read_run(self.timed_view(tmp_path,
                                                timeseries=series)))
        assert "tps " in frame
        assert "(last 70)" in frame
        assert "▁" in frame and "█" in frame

    def test_journal_points_are_wall_timestamped(self, tmp_path,
                                                 tiny_spec):
        runner = ExperimentRunner(journal=str(tmp_path / "j.jsonl"))
        runner.run_one(tiny_spec, profile="fast")
        view = read_run(runner.last_journal_path)
        assert view.points
        stamps = [p["t"] for p in view.points]
        assert all(isinstance(t, float) for t in stamps)
        assert stamps == sorted(stamps)
        assert view.header["created"] <= stamps[0]
