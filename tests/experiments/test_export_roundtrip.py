"""Export round-trip tests: JSON/CSV for ExperimentResult, and a
registry-wide check that every registered experiment exports cleanly.

The registry-wide test monkeypatches the runner's point evaluation with
canned :class:`Results`, so every spec's ``build(x)`` factories run
(config construction + validation) without simulation cost.
"""

import csv
import json

import pytest

from repro.experiments import api
from repro.experiments.export import (
    CSV_FIELDS,
    experiment_from_dict,
    experiment_to_dict,
    read_json,
    results_from_dict,
    results_to_dict,
    write_csv,
    write_json,
)
from repro.experiments.runner import ExperimentResult, Series, SeriesPoint
from tests.experiments.test_harness import fake_results


def sample_experiment() -> ExperimentResult:
    result = ExperimentResult("FigX", "sample", "rate", "ms",
                              notes=["a note"])
    s1 = Series("alpha")
    s1.points = [SeriesPoint(100, fake_results(0.010)),
                 SeriesPoint(300, fake_results(0.020))]
    s2 = Series("beta")
    s2.points = [SeriesPoint(100, fake_results(0.050)),
                 SeriesPoint(300, fake_results(0.055, saturated=True))]
    result.series = [s1, s2]
    return result


def typed_results():
    r = fake_results(0.02)
    r.response_by_type = {"debit": 0.02, "query": 0.05}
    return r


class TestResultsRoundTrip:
    def test_results_round_trip_equal(self):
        original = typed_results()
        restored = results_from_dict(
            json.loads(json.dumps(results_to_dict(original)))
        )
        assert restored == original

    def test_response_by_type_preserved(self):
        payload = results_to_dict(typed_results())
        assert payload["response_by_type"] == {"debit": 0.02,
                                               "query": 0.05}

    def test_second_level_hit_by_tag_exported(self):
        payload = results_to_dict(fake_results())
        assert "second_level_hit_by_tag" in payload

    def test_recovery_block_absent_when_disabled(self):
        """Recovery-disabled exports carry no recovery key at all, so
        pinned outputs (the fig4_1 golden sha) are unchanged by the
        subsystem's existence."""
        payload = results_to_dict(fake_results())
        assert "recovery" not in payload

    def test_csv_rows_carry_recovery_columns(self):
        from repro.experiments.export import CSV_FIELDS, experiment_to_rows

        assert "availability" in CSV_FIELDS
        assert "restart_time_s" in CSV_FIELDS
        enabled = fake_results()
        enabled.recovery = {"availability": 0.8,
                            "restart_time_mean": 4.5}
        result = ExperimentResult(experiment_id="t", title="t",
                                  x_label="x", y_label="y")
        result.series = [Series(label="s",
                                points=[SeriesPoint(1, enabled),
                                        SeriesPoint(2, fake_results())])]
        rows = experiment_to_rows(result)
        assert rows[0]["availability"] == 0.8
        assert rows[0]["restart_time_s"] == 4.5
        # Recovery-disabled points report perfect uptime, not blanks.
        assert rows[1]["availability"] == 1.0
        assert rows[1]["restart_time_s"] == 0.0

    def test_cluster_block_absent_when_single_node(self):
        """Non-cluster exports carry no cluster key, so pinned outputs
        (the fig4_1 golden sha) are unchanged by the subsystem."""
        payload = results_to_dict(fake_results())
        assert "cluster" not in payload

    def test_csv_rows_carry_cluster_columns(self):
        from repro.experiments.export import experiment_to_rows

        for column in ("nodes", "dist_fraction", "commit_phase_ms",
                       "in_doubt_time", "dollars_per_tps"):
            assert column in CSV_FIELDS
        clustered = fake_results()  # committed=100, throughput=10
        clustered.cluster = {"nodes": 4.0, "cost_dollars": 2_000_000.0,
                             "local_commits": 80.0,
                             "distributed_commits": 20.0,
                             "commit_phase_total": 0.5,
                             "prepared_pieces": 20.0,
                             "in_doubt_total": 0.1,
                             "failover_resolved": 0.0}
        result = ExperimentResult(experiment_id="t", title="t",
                                  x_label="x", y_label="y")
        result.series = [Series(label="s",
                                points=[SeriesPoint(1, clustered),
                                        SeriesPoint(2, fake_results())])]
        rows = experiment_to_rows(result)
        assert rows[0]["nodes"] == 4
        assert rows[0]["dist_fraction"] == pytest.approx(0.2)
        assert rows[0]["commit_phase_ms"] == pytest.approx(5.0)
        assert rows[0]["in_doubt_time"] == pytest.approx(0.005)
        assert rows[0]["dollars_per_tps"] == pytest.approx(200_000.0)
        # Non-cluster points report single-node identities, not blanks.
        assert rows[1]["nodes"] == 1
        assert rows[1]["dist_fraction"] == 0.0
        assert rows[1]["commit_phase_ms"] == 0.0
        assert rows[1]["in_doubt_time"] == 0.0
        assert rows[1]["dollars_per_tps"] == 0.0

    def test_cluster_block_round_trips(self):
        original = fake_results()
        original.cluster = {"nodes": 2.0, "cost_dollars": 750_000.0,
                            "local_commits": 90.0,
                            "distributed_commits": 10.0,
                            "commit_phase_total": 0.2,
                            "prepared_pieces": 10.0,
                            "in_doubt_total": 0.05,
                            "failover_resolved": 1.0}
        restored = results_from_dict(
            json.loads(json.dumps(results_to_dict(original)))
        )
        assert restored == original
        assert restored.nodes == 2
        assert restored.dist_fraction == pytest.approx(0.1)

    def test_recovery_block_round_trips(self):
        original = fake_results()
        original.recovery = {"crashes": 1.0, "downtime": 12.5,
                             "availability": 0.75,
                             "restart_time_mean": 12.5}
        restored = results_from_dict(
            json.loads(json.dumps(results_to_dict(original)))
        )
        assert restored == original
        assert restored.availability == 0.75
        assert restored.restart_time_mean == 12.5

    def test_latency_and_timeseries_blocks_absent_by_default(self):
        """Tracing-off exports carry neither block, so pinned outputs
        (the fig4_1 golden sha) are unchanged by the observability
        layer's existence."""
        payload = results_to_dict(fake_results())
        assert "latency" not in payload
        assert "timeseries" not in payload

    def test_latency_and_timeseries_round_trip(self):
        original = fake_results(0.04)
        original.latency = {"p50": 0.03, "p95": 0.08, "p99": 0.12,
                            "slo_ms": 1000.0, "slo_attainment": 0.97}
        original.timeseries = [
            {"t": 1.0, "tps": 90.0, "committed": 90},
            {"t": 2.0, "tps": 110.0, "committed": 200},
        ]
        restored = results_from_dict(
            json.loads(json.dumps(results_to_dict(original)))
        )
        assert restored == original
        assert restored.response_time_p50 == 0.03
        assert restored.response_time_p99 == 0.12
        assert restored.slo_attainment == 0.97

    def test_csv_rows_carry_distribution_columns(self):
        from repro.experiments.export import experiment_to_rows

        for column in ("response_p50_ms", "response_p99_ms",
                       "slo_attainment"):
            assert column in CSV_FIELDS
        detailed = fake_results(0.04)
        detailed.latency = {"p50": 0.03, "p95": 0.08, "p99": 0.12,
                            "slo_ms": 1000.0, "slo_attainment": 0.97}
        result = ExperimentResult(experiment_id="t", title="t",
                                  x_label="x", y_label="y")
        result.series = [Series(label="s",
                                points=[SeriesPoint(1, detailed),
                                        SeriesPoint(2, fake_results(0.04))])]
        rows = experiment_to_rows(result)
        assert rows[0]["response_p50_ms"] == pytest.approx(30.0)
        assert rows[0]["response_p99_ms"] == pytest.approx(120.0)
        assert rows[0]["slo_attainment"] == 0.97
        # Without the latency block the columns fall back to the
        # summary statistics instead of blanks.
        assert rows[1]["response_p50_ms"] == pytest.approx(40.0)
        assert rows[1]["response_p99_ms"] == pytest.approx(80.0)
        assert rows[1]["slo_attainment"] == 1.0


def recovery_experiment() -> ExperimentResult:
    """A mixed experiment: one recovery-enabled point, one without."""
    enabled = fake_results(0.02)
    enabled.recovery = {"crashes": 2.0, "downtime": 7.5,
                        "availability": 0.925,
                        "restart_time_mean": 3.75}
    result = ExperimentResult("FigR", "restart", "interval", "s")
    result.series = [Series("disk", points=[SeriesPoint(5, enabled),
                                            SeriesPoint(10, fake_results())])]
    return result


class TestExperimentRoundTrip:
    def test_dict_round_trip_equal(self):
        original = sample_experiment()
        restored = experiment_from_dict(experiment_to_dict(original))
        assert restored == original

    def test_recovery_dict_round_trips_through_experiment_json(self):
        """The optional Results.recovery block survives the full
        experiment_to_dict -> JSON -> experiment_from_dict trip (the
        path every cached/exported fig_restart point takes)."""
        original = recovery_experiment()
        restored = experiment_from_dict(
            json.loads(json.dumps(experiment_to_dict(original)))
        )
        assert restored == original
        first, second = restored.series[0].points
        assert first.results.recovery == {"crashes": 2.0, "downtime": 7.5,
                                          "availability": 0.925,
                                          "restart_time_mean": 3.75}
        assert first.results.availability == 0.925
        assert second.results.recovery is None

    def test_recovery_dict_round_trips_through_files(self, tmp_path):
        original = recovery_experiment()
        json_path = str(tmp_path / "r.json")
        write_json(original, json_path)
        assert read_json(json_path) == original
        csv_path = str(tmp_path / "r.csv")
        write_csv(original, csv_path)
        with open(csv_path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert float(rows[0]["availability"]) == 0.925
        assert float(rows[0]["restart_time_s"]) == 3.75
        # Recovery-disabled row: perfect uptime, zero restart.
        assert float(rows[1]["availability"]) == 1.0
        assert float(rows[1]["restart_time_s"]) == 0.0

    def test_json_file_round_trip(self, tmp_path):
        path = str(tmp_path / "out.json")
        original = sample_experiment()
        write_json(original, path)
        restored = read_json(path)
        assert restored == original
        # Saturation markers survive the trip.
        assert restored.series[1].points[1].saturated is True

    def test_json_saturated_point_markers(self, tmp_path):
        path = str(tmp_path / "out.json")
        write_json(sample_experiment(), path)
        with open(path) as fh:
            payload = json.load(fh)
        beta = payload["series"][1]["points"]
        assert [p["saturated"] for p in beta] == [False, True]

    def test_csv_round_trip_fields(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_csv(sample_experiment(), path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4
        assert list(rows[0]) == CSV_FIELDS
        assert float(rows[0]["response_time_ms"]) == pytest.approx(10.0)
        assert rows[-1]["saturated"] == "True"


class TestRegistryWideExport:
    @pytest.fixture
    def stub_evaluation(self, monkeypatch):
        """Replace simulation with canned results (build() still runs)."""
        monkeypatch.setattr(api, "_evaluate_point",
                            lambda task: fake_results(0.02))

    def test_every_registered_experiment_exports_cleanly(
            self, tmp_path, stub_evaluation):
        runner = api.ExperimentRunner()
        for exp_id in api.experiment_ids():
            spec = api.get_experiment(exp_id)
            result = runner.run_one(spec, "fast")
            assert result.series, exp_id
            json_path = str(tmp_path / f"{exp_id}.json")
            csv_path = str(tmp_path / f"{exp_id}.csv")
            write_json(result, json_path)
            write_csv(result, csv_path)
            assert read_json(json_path) == result
            with open(csv_path, newline="") as fh:
                rows = list(csv.DictReader(fh))
            assert rows and rows[0]["experiment"] == exp_id
            # The spec's own formatting also renders without error.
            assert spec.render(result)
