"""Tests for the experiment API: specs, registry, figure-wide runner."""

import pytest

from repro.experiments import api
from repro.experiments.runner import ExperimentResult, point_seed
from tests.experiments.conftest import make_tiny_spec, tiny_build

BUILTIN_IDS = [
    "fig4_1", "fig4_2", "fig4_3", "fig4_4", "fig4_5", "fig4_6",
    "fig4_7", "fig4_8", "table4_2", "ablation_group_commit",
    "ablation_async_replacement", "ablation_deferred_propagation",
    "ablation_migration_modes",
]


class TestRegistry:
    def test_all_builtin_experiments_registered(self):
        ids = api.experiment_ids()
        for exp_id in BUILTIN_IDS:
            assert exp_id in ids

    def test_get_experiment_resolves_and_caches(self):
        spec = api.get_experiment("fig4_1")
        assert spec.id == "fig4_1"
        assert api.get_experiment("fig4_1") is spec

    def test_unknown_id_raises_with_listing(self):
        with pytest.raises(KeyError, match="fig4_1"):
            api.get_experiment("fig9_9")

    def test_duplicate_registration_rejected(self, tiny_spec):
        with pytest.raises(ValueError, match="already registered"):
            api.register(tiny_spec.id, lambda: tiny_spec)

    def test_mismatched_spec_id_rejected(self):
        api.register("_wrong_id", lambda: make_tiny_spec("_other"))
        try:
            with pytest.raises(ValueError, match="_wrong_id"):
                api.get_experiment("_wrong_id")
        finally:
            api.unregister("_wrong_id")

    def test_decorator_registers(self):
        @api.experiment("_decorated")
        def factory():
            return make_tiny_spec("_decorated")

        try:
            assert api.get_experiment("_decorated").id == "_decorated"
        finally:
            api.unregister("_decorated")


class TestSpec:
    def test_missing_profile_rejected(self):
        with pytest.raises(ValueError, match="fast"):
            api.ExperimentSpec(
                id="x", title="t", x_label="x", y_label="y", curves=[],
                profiles={"full": api.SweepProfile(xs=(1.0,))},
            )

    def test_unknown_profile_name(self, tiny_spec):
        with pytest.raises(KeyError, match="warp"):
            tiny_spec.profile("warp")

    def test_curves_may_depend_on_profile(self):
        def curves(profile):
            n = 1 if profile == "fast" else 3
            return [api.CurveSpec(label=f"c{i}", build=tiny_build)
                    for i in range(n)]

        spec = make_tiny_spec("_dynamic")
        spec.curves = curves
        assert len(spec.curves_for("fast")) == 1
        assert len(spec.curves_for("full")) == 3

    def test_default_render_uses_metric(self):
        spec = make_tiny_spec("_fmt")
        spec.metric = lambda r: r.throughput
        spec.metric_fmt = "{:8.1f}"
        result = ExperimentResult("_fmt", "t", "x", "y")
        assert "(y = y)" in spec.render(result)

    def test_custom_renderer_wins(self):
        spec = make_tiny_spec("_render")
        spec.renderer = lambda result: f"custom:{result.experiment_id}"
        assert spec.render(ExperimentResult("_render", "t", "x", "y")) \
            == "custom:_render"


class TestRunner:
    def test_serial_run_shape(self, tiny_spec):
        result = api.ExperimentRunner().run_one(tiny_spec.id, "full")
        assert result.experiment_id == tiny_spec.id
        assert [s.label for s in result.series] == ["alpha", "beta"]
        assert all(s.xs() == [20.0, 40.0] for s in result.series)

    def test_parallel_matches_serial_byte_identically(self, tiny_spec):
        serial = api.ExperimentRunner().run_one(tiny_spec, "full")
        parallel = api.ExperimentRunner(
            parallel=True, max_workers=2).run_one(tiny_spec, "full")
        assert len(serial.series) == len(parallel.series)
        for ss, ps in zip(serial.series, parallel.series):
            assert ss.xs() == ps.xs()
            for sp, pp in zip(ss.points, ps.points):
                assert sp.results == pp.results

    def test_figure_wide_queue_spans_experiments(self, tiny_spec):
        """run() schedules several experiments through one pool and
        returns them keyed by id, identical to the serial path."""
        other = make_tiny_spec("_tiny2")
        serial = api.ExperimentRunner().run([tiny_spec, other], "fast")
        parallel = api.ExperimentRunner(parallel=True, max_workers=2).run(
            [tiny_spec, other], "fast")
        assert list(serial) == [tiny_spec.id, "_tiny2"]
        assert list(parallel) == [tiny_spec.id, "_tiny2"]
        for exp_id in serial:
            for ss, ps in zip(serial[exp_id].series,
                              parallel[exp_id].series):
                for sp, pp in zip(ss.points, ps.points):
                    assert sp.results == pp.results

    def test_point_seeds_match_legacy_sweep(self, tiny_spec):
        """The runner reuses sweep()'s per-point seeds, so results stay
        byte-identical to the historical serial path."""
        from repro.experiments.runner import sweep

        legacy = sweep("alpha", [20.0, 40.0], tiny_build,
                       warmup=0.5, duration=1.0, seed=tiny_spec.seed)
        result = api.ExperimentRunner().run_one(tiny_spec, "full")
        for lp, rp in zip(legacy.points, result.series[0].points):
            assert lp.results == rp.results

    def test_truncation_post_hoc(self):
        """Parallel evaluation truncates each curve at its first
        saturated point, like the serial early-stop."""
        spec = make_tiny_spec("_sat", xs=(20.0, 100_000.0, 200_000.0))
        serial = api.ExperimentRunner().run_one(spec, "full")
        parallel = api.ExperimentRunner(
            parallel=True, max_workers=2).run_one(spec, "full")
        for series in (serial.series[0], parallel.series[0]):
            assert 200_000.0 not in series.xs()
        assert serial.series[0].xs() == parallel.series[0].xs()

    def test_no_truncation_when_disabled(self):
        spec = make_tiny_spec("_nosat", xs=(20.0, 100_000.0))
        spec.truncate_on_saturation = False
        result = api.ExperimentRunner().run_one(spec, "full")
        assert result.series[0].xs() == [20.0, 100_000.0]

    def test_duration_override(self, tiny_spec):
        result = api.ExperimentRunner().run_one(tiny_spec, "fast",
                                                duration=0.3)
        point = result.series[0].points[0]
        assert point.results.simulated_time == pytest.approx(0.3, abs=0.2)

    def test_seed_spreads_across_points(self):
        assert point_seed(1, 0) != point_seed(1, 1)

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            api.ExperimentRunner(parallel=True, max_workers=0)

    def test_failed_builtin_load_is_retried(self, monkeypatch):
        """A failed discovery pass must not cache a partial registry."""
        import repro.experiments.api as api_mod

        monkeypatch.setattr(api_mod, "_BUILTINS_STATE", "unloaded")

        def boom(name):
            raise ImportError("transient")

        with monkeypatch.context() as m:
            m.setattr(api_mod.importlib, "import_module", boom)
            with pytest.raises(ImportError):
                api_mod.load_builtin_specs()
        assert api_mod._BUILTINS_STATE == "unloaded"
        api_mod.load_builtin_specs()  # real imports succeed now
        assert api_mod._BUILTINS_STATE == "loaded"


class TestNoHardcodedExperimentImports:
    """Guard: the CLI and report_all resolve experiments only through
    the registry — no figure/table module is imported by name."""

    MODULE_NAMES = {"fig4_1", "fig4_2", "fig4_3", "fig4_4", "fig4_5",
                    "fig4_6", "fig4_7", "fig4_8", "table4_2", "ablations"}

    @staticmethod
    def _source(module):
        import importlib.util

        spec = importlib.util.find_spec(module)
        with open(spec.origin, encoding="utf-8") as fh:
            return fh.read()

    @classmethod
    def _imported_names(cls, module):
        import ast

        names = set()
        for node in ast.walk(ast.parse(cls._source(module))):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.update(alias.name.split("."))
            elif isinstance(node, ast.ImportFrom):
                if node.module:
                    names.update(node.module.split("."))
                for alias in node.names:
                    names.add(alias.name)
        return names

    @pytest.mark.parametrize("module", ["repro.cli",
                                        "repro.experiments.report_all"])
    def test_no_experiment_module_imported_by_name(self, module):
        offending = self._imported_names(module) & self.MODULE_NAMES
        assert not offending, \
            f"{module} imports experiment module(s) by name: {offending}"

    def test_cli_does_not_sniff_signatures(self):
        source = self._source("repro.cli")
        assert "importlib" not in source
        assert "inspect.signature" not in source
