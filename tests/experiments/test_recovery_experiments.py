"""The registered recovery experiments and their expected shapes.

These assertions are the acceptance contract of the recovery
subsystem: on the fast profile, an NVEM-resident log beats a
disk-resident log on restart time, NOFORCE restart grows with the
checkpoint interval while FORCE stays flat, and a crash-ridden disk
configuration loses far more availability than the NVEM-resident one.
"""

import pytest

from repro.experiments.api import ExperimentRunner, get_experiment
from repro.experiments.recovery import (
    availability_summary,
    restart_summary,
)


@pytest.fixture(scope="module")
def fig_restart_fast():
    return ExperimentRunner().run_one(get_experiment("fig_restart"),
                                      profile="fast")


@pytest.fixture(scope="module")
def availability_fast():
    return ExperimentRunner().run_one(
        get_experiment("ablation_availability"), profile="fast")


class TestRegistration:
    def test_specs_registered_with_profiles(self):
        for exp_id in ("fig_restart", "ablation_availability"):
            spec = get_experiment(exp_id)
            assert spec.id == exp_id
            assert set(spec.profiles) == {"fast", "full"}
            assert not spec.truncate_on_saturation

    def test_renderers_mention_recovery_metrics(self, fig_restart_fast,
                                                availability_fast):
        restart_text = get_experiment("fig_restart").render(
            fig_restart_fast)
        assert "scan" in restart_text and "redo" in restart_text
        avail_text = get_experiment("ablation_availability").render(
            availability_fast)
        assert "availability" in avail_text and "MTTR" in avail_text


class TestRestartShapes:
    def test_every_point_recorded_its_crash(self, fig_restart_fast):
        for series in fig_restart_fast.series:
            for point in series.points:
                assert point.results.recovery["crashes"] == 1.0, \
                    f"{series.label} x={point.x}: restart did not " \
                    f"complete inside the measured window"

    def test_nvem_log_beats_disk_log(self, fig_restart_fast):
        summary = restart_summary(fig_restart_fast)
        disk = summary["disk log+db, NOFORCE"]
        nvem_log = summary["NVEM log, disk db, NOFORCE"]
        for interval, rec in disk.items():
            assert nvem_log[interval]["restart_time_mean"] < \
                rec["restart_time_mean"]
            # The win is the log scan: NVEM reads vs 6.4 ms disk pages.
            assert nvem_log[interval]["restart_log_scan_time"] < \
                0.1 * rec["restart_log_scan_time"]

    def test_nvem_resident_orders_of_magnitude_faster(self,
                                                      fig_restart_fast):
        summary = restart_summary(fig_restart_fast)
        disk = summary["disk log+db, NOFORCE"]
        nvem = summary["NVEM log+db, NOFORCE"]
        for interval, rec in disk.items():
            assert nvem[interval]["restart_time_mean"] < \
                0.05 * rec["restart_time_mean"]

    def test_noforce_grows_with_interval_force_flat(self,
                                                    fig_restart_fast):
        summary = restart_summary(fig_restart_fast)
        noforce = summary["disk log+db, NOFORCE"]
        force = summary["disk log+db, FORCE"]
        intervals = sorted(noforce)
        lo, hi = intervals[0], intervals[-1]
        # NOFORCE: exposure (log scan + dirty pages) scales with the
        # checkpoint interval.
        assert noforce[hi]["restart_time_mean"] > \
            1.3 * noforce[lo]["restart_time_mean"]
        # FORCE redoes only the commit window: no interval dependence
        # (allow generous noise, it is a ~0.3 s restart either way).
        assert force[hi]["restart_time_mean"] < \
            2.0 * max(force[lo]["restart_time_mean"], 0.1)
        assert force[hi]["restart_time_mean"] < \
            0.2 * noforce[lo]["restart_time_mean"]


class TestAvailabilityShapes:
    def test_disk_loses_far_more_availability_than_nvem(
            self, availability_fast):
        summary = availability_summary(availability_fast)
        disk = summary["disk log+db"]
        nvem = summary["NVEM log+db"]
        for period in disk:
            disk_tps, disk_avail = disk[period]
            nvem_tps, nvem_avail = nvem[period]
            assert nvem_avail > 0.99
            assert nvem_avail > disk_avail
        # At the shortest crash period the disk system spends a large
        # share of its life in redo.
        shortest = min(disk)
        assert disk[shortest][1] < 0.8
