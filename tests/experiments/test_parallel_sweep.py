"""Tests for the parallel sweep engine (repro.experiments.runner)."""

from repro.core.config import (
    CMConfig,
    LogAllocation,
    NVEM,
    NVEMConfig,
    PartitionConfig,
    SystemConfig,
)
from repro.experiments.runner import point_seed, sweep
from repro.workload.debit_credit import DebitCreditWorkload


def tiny_config() -> SystemConfig:
    """An all-NVEM Debit-Credit system small enough for sub-second runs."""
    from repro.workload.debit_credit import build_debit_credit_partitions

    partitions = build_debit_credit_partitions(
        num_branches=20, accounts_per_branch=1000,
        allocation=NVEM, bt_allocation=NVEM,
    )
    config = SystemConfig(
        partitions=partitions,
        disk_units=[],
        nvem=NVEMConfig(num_servers=2),
        cm=CMConfig(mpl=20, buffer_size=64),
        log=LogAllocation(device=NVEM),
    )
    config.validate()
    return config


def build(rate: float):
    return tiny_config(), DebitCreditWorkload(
        arrival_rate=rate, num_branches=20, accounts_per_branch=1000,
    )


class TestPointSeeds:
    def test_deterministic_and_distinct(self):
        seeds = [point_seed(1, i) for i in range(10)]
        assert seeds == [point_seed(1, i) for i in range(10)]
        assert len(set(seeds)) == 10

    def test_varies_with_base_seed(self):
        assert point_seed(1, 0) != point_seed(2, 0)


class TestParallelSweep:
    XS = [20, 40, 60]

    def test_parallel_matches_serial_byte_identically(self):
        serial = sweep("s", self.XS, build, warmup=0.5, duration=1.0)
        parallel = sweep("s", self.XS, build, warmup=0.5, duration=1.0,
                         parallel=True, max_workers=2)
        assert [p.x for p in serial.points] == \
            [p.x for p in parallel.points]
        for sp, pp in zip(serial.points, parallel.points):
            assert sp.results == pp.results

    def test_unpicklable_workload_degrades_to_serial(self):
        def build_unpicklable(rate):
            config, workload = build(rate)
            workload.hook = lambda: None  # closures cannot be pickled
            return config, workload

        series = sweep("s", [20, 30], build_unpicklable,
                       warmup=0.2, duration=0.5, parallel=True,
                       max_workers=2)
        assert [p.x for p in series.points] == [20, 30]

    def test_parallel_truncates_at_saturation_like_serial(self):
        xs = [20, 100_000, 200_000]
        serial = sweep("s", xs, build, warmup=0.2, duration=1.0)
        parallel = sweep("s", xs, build, warmup=0.2, duration=1.0,
                         parallel=True, max_workers=2)
        assert [p.x for p in serial.points] == \
            [p.x for p in parallel.points]
        assert 200_000 not in [p.x for p in parallel.points]

    def test_single_point_skips_worker_pool(self):
        series = sweep("s", [20], build, warmup=0.2, duration=0.5,
                       parallel=True)
        assert len(series.points) == 1
