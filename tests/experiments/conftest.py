"""Shared fixtures for the experiment-layer tests.

``tiny_spec`` builds a registered two-curve experiment over the small
all-NVEM Debit-Credit system (sub-second per point), so API/CLI tests
exercise the real registry + runner machinery without figure-scale
simulation cost.
"""

import pytest

from repro.core.config import (
    CMConfig,
    LogAllocation,
    NVEM,
    NVEMConfig,
    SystemConfig,
)
from repro.experiments import api
from repro.workload.debit_credit import (
    DebitCreditWorkload,
    build_debit_credit_partitions,
)


def tiny_config() -> SystemConfig:
    """An all-NVEM Debit-Credit system small enough for sub-second runs."""
    partitions = build_debit_credit_partitions(
        num_branches=20, accounts_per_branch=1000,
        allocation=NVEM, bt_allocation=NVEM,
    )
    config = SystemConfig(
        partitions=partitions,
        disk_units=[],
        nvem=NVEMConfig(num_servers=2),
        cm=CMConfig(mpl=20, buffer_size=64),
        log=LogAllocation(device=NVEM),
    )
    config.validate()
    return config


def tiny_build(rate: float):
    return tiny_config(), DebitCreditWorkload(
        arrival_rate=rate, num_branches=20, accounts_per_branch=1000,
    )


def make_tiny_spec(exp_id: str = "_tiny",
                   xs=(20.0, 40.0)) -> api.ExperimentSpec:
    return api.ExperimentSpec(
        id=exp_id,
        title="tiny registry test experiment",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms)",
        curves=[
            api.CurveSpec(label="alpha", build=tiny_build),
            api.CurveSpec(label="beta", build=tiny_build),
        ],
        profiles={
            "full": api.SweepProfile(xs=tuple(xs), warmup=0.5,
                                     duration=1.0),
            "fast": api.SweepProfile(xs=tuple(xs[:1]), warmup=0.2,
                                     duration=0.5),
        },
    )


@pytest.fixture
def tiny_spec():
    """A registered tiny experiment; unregistered again on teardown."""
    spec = make_tiny_spec()
    api.register(spec.id, lambda: spec)
    yield spec
    api.unregister(spec.id)
