"""The registered media experiments and their expected shapes.

Acceptance contract of the media subsystem at figure scale: the lost
database device is rebuilt inside the sweep window while throughput
stays positive, mirroring costs a small constant on commit latency,
and both experiments export/cache byte-identically.
"""

import dataclasses
import json

import pytest

from repro.experiments.api import (
    ExperimentRunner,
    SweepProfile,
    experiment_ids,
    get_experiment,
)
from repro.experiments.export import (
    CSV_FIELDS,
    experiment_to_dict,
    experiment_to_rows,
    read_json,
    write_csv,
    write_json,
)
from repro.experiments.media import (
    _media_curves,
    media_recovery_summary,
    mirroring_summary,
)
from repro.experiments.store import ResultStore


def shrunk_media_spec():
    """fig_media_recovery cut to one curve and one x: every figure
    mechanism (loss, rebuild, degraded metrics, export) at a fraction
    of the sweep cost."""
    spec = get_experiment("fig_media_recovery")
    profile = SweepProfile(xs=(4.0,), warmup=2.0, duration=40.0)
    return dataclasses.replace(
        spec,
        id="_media_shrunk",
        curves=lambda _profile: [_media_curves("fast")[1]],
        profiles={"fast": profile, "full": profile},
    )


@pytest.fixture(scope="module")
def media_point():
    return ExperimentRunner().run_one(shrunk_media_spec(),
                                      profile="fast")


@pytest.fixture(scope="module")
def mirroring_fast():
    return ExperimentRunner().run_one(get_experiment("ablation_mirroring"),
                                      profile="fast")


class TestRegistration:
    def test_specs_registered_with_profiles(self):
        ids = experiment_ids()
        for exp_id in ("fig_media_recovery", "ablation_mirroring"):
            assert exp_id in ids
            spec = get_experiment(exp_id)
            assert spec.id == exp_id
            assert set(spec.profiles) == {"fast", "full"}
            assert not spec.truncate_on_saturation

    def test_fig4_1_stays_media_free(self):
        """The pinned golden figure must never grow a fault schedule:
        media stays default-off in its configs."""
        spec = get_experiment("fig4_1")
        curves = spec.curves
        if callable(curves):
            curves = curves("fast")
        for curve in curves:
            config, _workload = curve.build(50.0)
            assert config.media.enabled is False
            assert config.media.faults == ()


class TestMediaRecoveryShapes:
    def test_rebuild_completes_with_positive_degraded_tps(self,
                                                          media_point):
        summary = media_recovery_summary(media_point)
        (label, by_x), = summary.items()
        assert label == "NVEM log"
        (interval, degraded), = by_x.items()
        assert interval == 4.0
        assert degraded["media_recoveries"] == 1
        assert degraded["media_mttr_mean"] > 0
        assert degraded["degraded_window"] > 0
        assert degraded["degraded_tps"] > 0
        assert degraded["media_restore_pages"] > 0
        assert degraded["media_redo_pages"] > 0

    def test_renderer_reports_rebuild_and_degraded(self, media_point):
        text = get_experiment("fig_media_recovery").render(media_point)
        assert "rebuild" in text
        assert "TPS degraded" in text
        assert "restored" in text


class TestMirroringShapes:
    def test_dual_copy_costs_latency_at_every_rate(self, mirroring_fast):
        summary = mirroring_summary(mirroring_fast)
        single = summary["single log copy"]
        dual = summary["dual copy (mirrored)"]
        assert set(single) == set(dual) == {50.0, 150.0}
        for rate in single:
            assert dual[rate] > single[rate]
            # A second synchronous NVEM force: a fraction of a
            # millisecond, not a regime change.
            assert dual[rate] - single[rate] < 1.0

    def test_mirror_force_visible_in_io_accounting(self, mirroring_fast):
        by_label = {s.label: s for s in mirroring_fast.series}
        for point in by_label["dual copy (mirrored)"].points:
            io = point.results.io_per_tx
            # Both copies are forced in the same commit, but the warm-up
            # reset can land between the two records of one transaction:
            # allow a couple of boundary counts, no more.
            assert io["log_nvem_mirror"] > 0.9
            boundary = 3.0 / max(point.results.committed, 1)
            assert abs(io["log_nvem"] - io["log_nvem_mirror"]) <= boundary
        for point in by_label["single log copy"].points:
            assert "log_nvem_mirror" not in point.results.io_per_tx

    def test_renderer_prints_penalty(self, mirroring_fast):
        text = get_experiment("ablation_mirroring").render(mirroring_fast)
        assert "mirroring penalty" in text

    def test_no_faults_means_no_degraded_block(self, mirroring_fast):
        for series in mirroring_fast.series:
            for point in series.points:
                assert point.results.degraded is None


class TestExport:
    def test_csv_rows_carry_degraded_columns(self, media_point,
                                             mirroring_fast, tmp_path):
        for field in ("degraded_tps", "media_mttr_s", "io_retries"):
            assert field in CSV_FIELDS
        row = experiment_to_rows(media_point)[0]
        assert row["media_mttr_s"] > 0
        assert row["degraded_tps"] > 0
        # Media-disabled runs export the columns as 0.0, not NaN/missing.
        row = experiment_to_rows(mirroring_fast)[0]
        assert row["media_mttr_s"] == 0.0
        assert row["io_retries"] == 0.0
        path = tmp_path / "media.csv"
        write_csv(media_point, str(path))
        header = path.read_text().splitlines()[0].split(",")
        assert header == CSV_FIELDS

    def test_degraded_block_round_trips_through_json(self, media_point,
                                                     tmp_path):
        path = tmp_path / "media.json"
        write_json(media_point, str(path))
        reloaded = read_json(str(path))
        assert reloaded == media_point
        payload = json.loads(path.read_text())
        degraded = payload["series"][0]["points"][0]["results"]["degraded"]
        assert degraded["media_recoveries"] == 1


class TestByteIdenticalAcrossModes:
    def canonical(self, result) -> str:
        return json.dumps(experiment_to_dict(result), sort_keys=True,
                          separators=(",", ":"))

    def test_serial_parallel_and_cached_identical(self, media_point,
                                                  tmp_path):
        spec = shrunk_media_spec()
        parallel = ExperimentRunner(parallel=True).run_one(spec, "fast")
        store = ResultStore(str(tmp_path))
        cold_runner = ExperimentRunner(store=store)
        cold = cold_runner.run_one(spec, "fast")
        warm_runner = ExperimentRunner(store=store)
        warm = warm_runner.run_one(spec, "fast")
        serial_bytes = self.canonical(media_point)
        assert self.canonical(parallel) == serial_bytes
        assert self.canonical(cold) == serial_bytes
        assert self.canonical(warm) == serial_bytes
        assert warm_runner.last_stats.hits == warm_runner.last_stats.total
