"""Cached ExperimentRunner tests: the cache must change cost, never
output.

The contract under test: a cache-enabled run — cold, warm, resumed, or
deduplicated — exports byte-for-byte the same JSON as the plain
historical runner, and the run statistics prove where each point came
from (a warm rerun is 100% hits, a seed override is 0% hits, identical
curves deduplicate instead of double-simulating).
"""

import json
import warnings

import pytest

from repro.experiments import api
from repro.experiments.api import ExperimentRunner
from repro.experiments.export import experiment_to_dict
from repro.experiments.store import ResultStore
from repro.workload.debit_credit import DebitCreditWorkload
from tests.experiments.conftest import make_tiny_spec, tiny_config


def canonical(result) -> str:
    return json.dumps(experiment_to_dict(result), sort_keys=True,
                      separators=(",", ":"))


def run_with(store, spec, **kwargs):
    runner = ExperimentRunner(store=store, **kwargs)
    result = runner.run_one(spec, profile="fast")
    return runner, canonical(result)


class TestByteIdenticalOutput:
    def test_cold_warm_and_uncached_identical(self, tiny_spec, tmp_path):
        _, plain = run_with(None, tiny_spec)
        store = ResultStore(str(tmp_path))
        cold_runner, cold = run_with(store, tiny_spec)
        warm_runner, warm = run_with(store, tiny_spec)
        assert plain == cold == warm
        assert cold_runner.last_stats.hits == 0
        assert warm_runner.last_stats.hits == warm_runner.last_stats.total
        assert warm_runner.last_stats.misses == 0

    def test_full_profile_two_point_curves_identical(self, tiny_spec,
                                                     tmp_path):
        """Multi-point curves exercise per-point seeds + truncation."""
        store = ResultStore(str(tmp_path))
        runner = ExperimentRunner(store=store)
        cold = canonical(runner.run_one(tiny_spec, profile="full"))
        warm = canonical(runner.run_one(tiny_spec, profile="full"))
        plain = canonical(ExperimentRunner().run_one(tiny_spec,
                                                     profile="full"))
        assert cold == warm == plain


class TestRunStats:
    def test_warm_rerun_is_all_hits(self, tiny_spec, tmp_path):
        store = ResultStore(str(tmp_path))
        run_with(store, tiny_spec)
        runner, _ = run_with(store, tiny_spec)
        stats = runner.last_stats
        assert stats.total > 0
        assert stats.hits == stats.total
        assert stats.misses == stats.resumed == stats.deduped == 0
        assert stats.hit_rate == 1.0

    def test_identical_curves_deduplicate(self, tiny_spec, tmp_path):
        """tiny_spec's alpha/beta curves share build(x): one simulation,
        two filled points, counted as dedup — not as store hits."""
        store = ResultStore(str(tmp_path))
        runner, _ = run_with(store, tiny_spec)
        stats = runner.last_stats
        assert stats.total == 2
        assert stats.misses == 1
        assert stats.deduped == 1
        assert stats.hits == 0

    def test_stats_serialize(self, tiny_spec, tmp_path):
        runner, _ = run_with(ResultStore(str(tmp_path)), tiny_spec)
        payload = runner.last_stats.to_dict()
        assert payload["total"] == 2
        assert 0.0 <= payload["hit_rate"] <= 1.0
        json.dumps(payload)


class TestSeedOverride:
    def test_seed_override_never_hits_default_seed_cache(self, tiny_spec,
                                                         tmp_path):
        """Regression: --seed N is part of the cache key.  A store
        warmed by a default-seed run must contribute zero hits to a
        seed-overridden run, and the two outputs must differ."""
        store = ResultStore(str(tmp_path))
        _, default_out = run_with(store, tiny_spec)
        runner7, out7 = run_with(store, tiny_spec, seed=7)
        assert runner7.last_stats.hits == 0
        assert runner7.last_stats.misses >= 1
        assert out7 != default_out
        # And the seed-7 cache is itself warm + reproducible now.
        rerun7, out7_again = run_with(store, tiny_spec, seed=7)
        assert rerun7.last_stats.hits == rerun7.last_stats.total
        assert out7_again == out7


class TestUncacheable:
    def test_unfingerprintable_workload_recomputed_with_one_warning(
            self, tmp_path):
        class OpaqueWorkload:
            """No fingerprint_data, and a public callable attribute."""

            def __init__(self, rate):
                self.rate = rate
                self.hook = lambda: None
                self._inner = DebitCreditWorkload(
                    arrival_rate=rate, num_branches=20,
                    accounts_per_branch=1000)

            def start(self, system):
                self._inner.start(system)

        def build(rate):
            return tiny_config(), OpaqueWorkload(rate)

        tiny = make_tiny_spec("_opaque")
        spec = api.ExperimentSpec(
            id=tiny.id, title=tiny.title, x_label=tiny.x_label,
            y_label=tiny.y_label,
            curves=[api.CurveSpec(label="opaque", build=build)],
            profiles=tiny.profiles,
        )
        store = ResultStore(str(tmp_path))
        runner = ExperimentRunner(store=store)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = canonical(runner.run_one(spec, profile="fast"))
        assert runner.last_stats.uncacheable == runner.last_stats.total
        assert runner.last_stats.hits == 0
        relevant = [w for w in caught
                    if "not cacheable" in str(w.message)]
        assert len(relevant) == 1  # one warning, not one per point
        assert store.stats()["entries"] == 0
        # Recomputation is still deterministic (and warns again).
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            second = canonical(runner.run_one(spec, profile="fast"))
        assert second == first
        assert runner.last_stats.uncacheable == runner.last_stats.total


class TestDirectPathUntouched:
    def test_no_cache_flags_use_direct_path(self, tiny_spec, monkeypatch):
        """Without store/journal/resume the runner takes the historical
        code path and never imports fingerprints."""
        runner = ExperimentRunner()
        called = {}

        def spy(plans, profile, duration):
            called["cached"] = True
            return {}

        monkeypatch.setattr(runner, "_run_cached", spy)
        runner.run_one(tiny_spec, profile="fast")
        assert "cached" not in called
        assert runner.last_stats is None
