"""Tests for the experiment harness and experiment configurations."""

import pytest

from repro.core.config import (
    CMConfig,
    DiskUnitType,
    LogAllocation,
    NVEM,
    NVEMConfig,
    PartitionConfig,
    SystemConfig,
    UpdateStrategy,
)
from repro.core.metrics import Results
from repro.experiments import runner
from repro.experiments.defaults import (
    db_disk_unit,
    debit_credit_config,
    default_cm,
    disk_only,
    disk_with_nv_cache_write_buffer,
    memory_resident,
    nvem_resident,
    nvem_write_buffer,
    second_level_cache_scheme,
    ssd_resident,
)
from repro.workload.debit_credit import DebitCreditWorkload


def fake_results(rt=0.05, saturated=False, committed=100):
    return Results(
        simulated_time=10.0, committed=committed, aborted=0,
        page_accesses=400, throughput=committed / 10.0,
        response_time_mean=rt, response_time_p95=rt * 2,
        response_time_max=rt * 3, response_by_type={},
        composition={}, hit_ratios={}, mm_hit_by_tag={},
        second_level_hit_by_tag={}, io_per_tx={}, lock_stats={},
        cpu_utilization=0.5, device_utilization={},
        saturated=saturated,
    )


class TestSeriesAndTables:
    def test_series_accessors(self):
        series = runner.Series("test")
        series.points.append(runner.SeriesPoint(10, fake_results(0.02)))
        series.points.append(runner.SeriesPoint(20, fake_results(0.04)))
        assert series.xs() == [10, 20]
        assert series.response_times_ms() == [pytest.approx(20),
                                              pytest.approx(40)]

    def test_table_rendering(self):
        result = runner.ExperimentResult(
            experiment_id="T", title="test", x_label="x", y_label="ms",
        )
        s1 = runner.Series("alpha")
        s1.points.append(runner.SeriesPoint(10, fake_results(0.02)))
        s2 = runner.Series("beta")
        s2.points.append(runner.SeriesPoint(10, fake_results(0.04,
                                                             saturated=True)))
        result.series = [s1, s2]
        result.notes.append("a note")
        table = result.to_table()
        assert "alpha" in table and "beta" in table
        assert "20.00" in table
        assert "40.00*" in table  # saturation marker
        assert "note: a note" in table

    def test_table_missing_points_dashed(self):
        result = runner.ExperimentResult("T", "t", "x", "y")
        s1 = runner.Series("a")
        s1.points.append(runner.SeriesPoint(10, fake_results()))
        s2 = runner.Series("b")
        s2.points.append(runner.SeriesPoint(20, fake_results()))
        result.series = [s1, s2]
        table = result.to_table()
        assert "-" in table

    def test_series_by_label(self):
        result = runner.ExperimentResult("T", "t", "x", "y")
        result.series.append(runner.Series("found"))
        assert result.series_by_label("found").label == "found"
        with pytest.raises(KeyError):
            result.series_by_label("missing")

    def test_sweep_stops_at_saturation(self):
        """sweep() must truncate a curve at its first saturated point."""
        def build(rate):
            config = SystemConfig(
                partitions=[PartitionConfig("p", num_objects=100,
                                            block_factor=10,
                                            allocation=NVEM)],
                disk_units=[],
                nvem=NVEMConfig(),
                cm=CMConfig(mpl=2, buffer_size=16),
                log=LogAllocation(device=NVEM),
            )
            return config, DebitCreditWorkloadStub(rate)

        class DebitCreditWorkloadStub:
            def __init__(self, rate):
                self.rate = rate

            def start(self, system):
                from repro.core.transaction import ObjectRef, Transaction
                from repro.workload.base import PoissonArrivals

                def factory(n):
                    return Transaction(n, "t",
                                       [ObjectRef(0, n % 100, (n % 100) // 10,
                                                  True)])
                PoissonArrivals(self.rate, factory).start(system)

        series = runner.sweep("s", [50, 100_000, 200_000], build,
                              warmup=0.2, duration=2.0)
        xs = series.xs()
        assert 50 in xs
        assert 200_000 not in xs  # curve truncated at saturation


class TestDefaultSchemes:
    def test_default_cm_matches_table_4_1(self):
        cm = default_cm()
        assert cm.num_cpus == 4
        assert cm.mips == 50.0
        assert cm.instr_bot == 40_000
        assert cm.instr_or == 40_000
        assert cm.instr_eot == 50_000
        assert cm.instr_io == 3_000
        assert cm.instr_nvem == 300
        assert cm.buffer_size == 2000
        # 250k instructions/tx at 200 MIPS -> 800 TPS theoretical max.
        per_tx = cm.instr_bot + 4 * cm.instr_or + cm.instr_eot
        assert per_tx == 250_000

    def test_all_schemes_validate(self):
        for scheme_fn in (disk_only, disk_with_nv_cache_write_buffer,
                          nvem_write_buffer, ssd_resident, nvem_resident,
                          memory_resident):
            config = debit_credit_config(scheme_fn())
            config.validate()

    def test_second_level_schemes_validate(self):
        for kind in ("none", "volatile", "nonvolatile", "write-buffer",
                     "nvem"):
            config = debit_credit_config(
                second_level_cache_scheme(kind, 1000)
            )
            config.validate()

    def test_second_level_unknown_kind(self):
        with pytest.raises(ValueError):
            second_level_cache_scheme("quantum", 1000)

    def test_cache_schemes_share_one_cache(self):
        """§4.5: the second-level cache is shared by all partitions."""
        config = debit_credit_config(
            second_level_cache_scheme("volatile", 1000)
        )
        cached_units = [u for u in config.disk_units
                        if u.unit_type == DiskUnitType.VOLATILE_CACHE]
        assert len(cached_units) == 1
        allocations = {p.allocation for p in config.partitions}
        assert allocations == {cached_units[0].name}

    def test_force_config(self):
        config = debit_credit_config(disk_only(),
                                     update_strategy=UpdateStrategy.FORCE)
        assert config.cm.update_strategy is UpdateStrategy.FORCE

    def test_table_4_1_device_timings(self):
        unit = db_disk_unit("x")
        assert unit.controller_delay == pytest.approx(0.001)
        assert unit.trans_delay == pytest.approx(0.0004)
        assert unit.disk_delay == pytest.approx(0.015)


class TestExperimentModules:
    """Each experiment module must build valid configurations."""

    def test_fig4_1_alternatives(self):
        from repro.experiments import fig4_1
        for label, scheme_fn in fig4_1.ALTERNATIVES:
            config = debit_credit_config(scheme_fn())
            config.validate()

    def test_fig4_8_configs(self):
        from repro.core.config import CCMode
        from repro.experiments.fig4_8 import ALLOCATIONS, build_config
        for _, small, large, log_dev in ALLOCATIONS:
            for cc_mode in (CCMode.PAGE, CCMode.OBJECT):
                build_config(small, large, log_dev, cc_mode, 100.0)

    def test_trace_setup_configs(self):
        from repro.experiments.trace_setup import trace_config, trace_for
        trace = trace_for(fast=True)
        for kind in ("none", "volatile", "nonvolatile", "nvem", "ssd",
                     "nvem-resident"):
            trace_config(trace, kind, 500).validate()

    def test_trace_setup_unknown_kind(self):
        from repro.experiments.trace_setup import trace_config, trace_for
        with pytest.raises(ValueError):
            trace_config(trace_for(fast=True), "tape", 500)

    def test_fig4_1_fast_run_has_expected_shape(self):
        from repro.experiments import fig4_1
        result = fig4_1.run(fast=True, duration=3.0)
        assert len(result.series) == 4
        single_disk = result.series_by_label("log on single disk")
        nvem_log = result.series_by_label("log in NVEM")
        # The single log disk cannot carry 500 TPS; NVEM can.
        assert max(single_disk.xs()) < 500 or \
            single_disk.points[-1].saturated
        assert 500 in nvem_log.xs()
        assert not nvem_log.points[-1].saturated
