"""Tests for ASCII charting and CSV/JSON export."""

import csv
import json

import pytest

from repro.experiments.charting import render_chart, _nice_ticks
from repro.experiments.export import (
    experiment_to_rows,
    results_to_dict,
    write_csv,
    write_json,
)
from repro.experiments.runner import ExperimentResult, Series, SeriesPoint
from tests.experiments.test_harness import fake_results


def sample_experiment():
    result = ExperimentResult("FigX", "sample", "rate", "ms")
    s1 = Series("alpha")
    s1.points = [SeriesPoint(100, fake_results(0.010)),
                 SeriesPoint(300, fake_results(0.020)),
                 SeriesPoint(500, fake_results(0.060))]
    s2 = Series("beta")
    s2.points = [SeriesPoint(100, fake_results(0.050)),
                 SeriesPoint(300, fake_results(0.055, saturated=True))]
    result.series = [s1, s2]
    return result


class TestCharting:
    def test_chart_contains_markers_and_legend(self):
        chart = render_chart(sample_experiment())
        assert "1 = alpha" in chart
        assert "2 = beta" in chart
        assert "1" in chart and "2" in chart
        assert "*" in chart  # saturated marker

    def test_chart_axes_labels(self):
        chart = render_chart(sample_experiment())
        assert "(rate)" in chart
        assert "(ms)" in chart

    def test_empty_experiment(self):
        result = ExperimentResult("E", "t", "x", "y")
        assert "(no data)" in render_chart(result)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            render_chart(sample_experiment(), width=4)
        with pytest.raises(ValueError):
            render_chart(sample_experiment(), height=2)

    def test_custom_metric(self):
        chart = render_chart(sample_experiment(),
                             metric=lambda r: r.throughput)
        assert "FigX" in chart

    def test_log_x_axis(self):
        chart = render_chart(sample_experiment(), log_x=True)
        assert "FigX" in chart

    def test_flat_series_does_not_crash(self):
        result = ExperimentResult("E", "t", "x", "y")
        s = Series("flat")
        s.points = [SeriesPoint(1, fake_results(0.05)),
                    SeriesPoint(2, fake_results(0.05))]
        result.series = [s]
        assert "flat" in render_chart(result)

    def test_nice_ticks_cover_range(self):
        ticks = _nice_ticks(0.0, 100.0, 4)
        assert ticks[0] >= 0.0
        assert ticks[-1] <= 100.0
        assert len(ticks) >= 2

    def test_nice_ticks_degenerate(self):
        assert _nice_ticks(5.0, 5.0) == [5.0]

    def test_chart_on_real_experiment(self):
        """End-to-end: chart a real (tiny) fig4_2 run via the registry."""
        from repro.experiments.api import ExperimentRunner
        result = ExperimentRunner().run_one("fig4_2", "fast",
                                            duration=2.0)
        chart = render_chart(result)
        assert "fig4_2" in chart


class TestExport:
    def test_results_to_dict_roundtrips_json(self):
        payload = results_to_dict(fake_results())
        text = json.dumps(payload)
        assert json.loads(text)["committed"] == 100

    def test_experiment_rows(self):
        rows = experiment_to_rows(sample_experiment())
        assert len(rows) == 5
        assert rows[0]["series"] == "alpha"
        assert rows[0]["x"] == 100
        assert rows[-1]["saturated"] is True

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_csv(sample_experiment(), path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 5
        assert float(rows[0]["response_time_ms"]) == pytest.approx(10.0)

    def test_write_json(self, tmp_path):
        path = str(tmp_path / "out.json")
        write_json(sample_experiment(), path)
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["experiment_id"] == "FigX"
        assert len(payload["series"]) == 2
        assert payload["series"][0]["points"][0]["x"] == 100
