"""ResultStore tests: exact round-trips, corruption tolerance, and
maintenance (stats/gc/clear).

The store may only ever do two things: return *exactly* what was put
under a fingerprint, or miss.  Every failure mode (torn file, foreign
format, renamed entry) must land on the miss side.
"""

import json
import os

from repro.experiments.store import STORE_FORMAT, ResultStore, \
    default_cache_dir
from tests.experiments.test_harness import fake_results

FP_A = "aa" + "0" * 62
FP_B = "bb" + "1" * 62


def rich_results():
    r = fake_results(0.02)
    r.response_by_type = {"debit": 0.02, "query": 0.05}
    r.recovery = {"crashes": 2.0, "downtime": 3.5, "availability": 0.9,
                  "restart_time_mean": 1.75}
    return r


class TestRoundTrip:
    def test_put_get_equal(self, tmp_path):
        store = ResultStore(str(tmp_path))
        original = rich_results()
        store.put(FP_A, original)
        assert store.get(FP_A) == original

    def test_recovery_dict_survives(self, tmp_path):
        """The optional recovery block (fig_restart/ablation points)
        round-trips through the store like every other field."""
        store = ResultStore(str(tmp_path))
        store.put(FP_A, rich_results())
        restored = store.get(FP_A)
        assert restored.recovery == {"crashes": 2.0, "downtime": 3.5,
                                     "availability": 0.9,
                                     "restart_time_mean": 1.75}
        assert restored.availability == 0.9

    def test_float_exactness(self, tmp_path):
        """JSON shortest-repr round-trip: stored floats are bit-equal,
        which is what keeps cached figures byte-identical."""
        store = ResultStore(str(tmp_path))
        original = fake_results(0.1 + 0.2)  # 0.30000000000000004
        store.put(FP_A, original)
        restored = store.get(FP_A)
        assert restored.response_time_mean == original.response_time_mean
        assert restored == original

    def test_contains_and_counters(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert FP_A not in store
        assert store.get(FP_A) is None
        store.put(FP_A, fake_results())
        assert FP_A in store
        assert store.get(FP_A) is not None
        assert (store.hits, store.misses, store.writes) == (1, 1, 1)


class TestMissSemantics:
    def test_torn_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(FP_A, fake_results())
        path = store._path(FP_A)
        path.write_text(path.read_text()[:20], encoding="utf-8")
        assert store.get(FP_A) is None

    def test_foreign_format_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(FP_A, fake_results())
        path = store._path(FP_A)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["format"] = STORE_FORMAT + 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.get(FP_A) is None

    def test_renamed_entry_is_a_miss(self, tmp_path):
        """An entry whose embedded fingerprint mismatches its file name
        (manual copy, collision) is never served."""
        store = ResultStore(str(tmp_path))
        store.put(FP_A, fake_results())
        dst = store._path(FP_B)
        dst.parent.mkdir(parents=True, exist_ok=True)
        os.replace(store._path(FP_A), dst)
        assert store.get(FP_B) is None

    def test_no_tmp_droppings_after_put(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(FP_A, fake_results())
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []


class TestMaintenance:
    def test_stats(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(FP_A, fake_results())
        store.put(FP_B, fake_results())
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert stats["session"]["writes"] == 2

    def test_gc_by_age(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(FP_A, fake_results())
        store.put(FP_B, fake_results())
        old = store._path(FP_A)
        os.utime(old, (0, 0))  # epoch: ancient
        report = store.gc(max_age_days=1)
        assert report["removed"] == 1
        assert store.get(FP_A) is None
        assert store.get(FP_B) is not None

    def test_gc_by_size_evicts_oldest_first(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(FP_A, fake_results())
        store.put(FP_B, fake_results())
        os.utime(store._path(FP_A), (0, 0))
        report = store.gc(max_bytes=store.stats()["bytes"] // 2)
        assert report["removed"] >= 1
        assert store.get(FP_A) is None  # oldest went first

    def test_clear(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(FP_A, fake_results())
        store.put(FP_B, fake_results())
        assert store.clear() == 2
        assert store.stats()["entries"] == 0


class TestDefaultLocation:
    def test_env_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/explicit")
        monkeypatch.setenv("XDG_CACHE_HOME", "/xdg")
        assert default_cache_dir() == "/explicit"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir() == os.path.join("/xdg", "repro")
        monkeypatch.delenv("XDG_CACHE_HOME")
        assert default_cache_dir().endswith(os.path.join(".cache", "repro"))
