"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


def test_run_command(capsys):
    code = main(["run", "--scheme", "nvem", "--rate", "100",
                 "--duration", "2", "--warmup", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "throughput" in out
    assert "scheme=nvem" in out


def test_run_force_flag(capsys):
    code = main(["run", "--scheme", "nvem", "--rate", "50",
                 "--duration", "2", "--warmup", "1", "--force"])
    assert code == 0
    assert "strategy=force" in capsys.readouterr().out


def test_unknown_scheme_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--scheme", "punchcards"])


def test_trace_gen_and_run(tmp_path, capsys):
    path = str(tmp_path / "t.trace")
    code = main(["trace-gen", "--out", path, "--transactions", "200",
                 "--accesses", "4000", "--seed", "9"])
    assert code == 0
    assert "wrote" in capsys.readouterr().out

    code = main(["trace-run", "--trace", path, "--kind", "nvem-resident",
                 "--mm", "200", "--rate", "40", "--duration", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "normalized response" in out


def test_registry_listing(capsys):
    code = main(["registry"])
    out = capsys.readouterr().out
    assert code == 0
    assert "flash_ssd" in out and "battery_dram" in out
    assert "clock" in out and "2q" in out


def test_run_with_mm_policy_and_new_scheme(capsys):
    code = main(["run", "--scheme", "battery-dram", "--rate", "50",
                 "--duration", "1", "--warmup", "0.5",
                 "--mm-policy", "clock"])
    out = capsys.readouterr().out
    assert code == 0
    assert "battery_dram" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
