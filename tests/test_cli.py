"""Tests for the command-line interface (repro.cli)."""

import json
import os

import pytest

from repro.cli import main
from repro.experiments import api
from tests.experiments.conftest import make_tiny_spec


@pytest.fixture
def tiny_registered():
    spec = make_tiny_spec("_cli_tiny")
    api.register(spec.id, lambda: spec)
    yield spec
    api.unregister(spec.id)


def test_run_command(capsys):
    code = main(["run", "--scheme", "nvem", "--rate", "100",
                 "--duration", "2", "--warmup", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "throughput" in out
    assert "scheme=nvem" in out


def test_run_force_flag(capsys):
    code = main(["run", "--scheme", "nvem", "--rate", "50",
                 "--duration", "2", "--warmup", "1", "--force"])
    assert code == 0
    assert "strategy=force" in capsys.readouterr().out


def test_unknown_scheme_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--scheme", "punchcards"])


def test_trace_gen_and_run(tmp_path, capsys):
    path = str(tmp_path / "t.trace")
    code = main(["trace-gen", "--out", path, "--transactions", "200",
                 "--accesses", "4000", "--seed", "9"])
    assert code == 0
    assert "wrote" in capsys.readouterr().out

    code = main(["trace-run", "--trace", path, "--kind", "nvem-resident",
                 "--mm", "200", "--rate", "40", "--duration", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "normalized response" in out


class TestTraceCommand:
    def test_trace_run_export_summary(self, tiny_registered, tmp_path,
                                      capsys):
        trace_path = str(tmp_path / "tiny.trace.jsonl")
        code = main(["trace", "run", tiny_registered.id,
                     "--out", trace_path, "--profile", "full",
                     "--summary"])
        out = capsys.readouterr().out
        assert code == 0
        assert os.path.exists(trace_path)
        assert "span(s)" in out
        assert "traced tx" in out and "residual" in out

        code = main(["trace", "summary", trace_path, "--validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert f"trace of {tiny_registered.id}" in out
        assert "phase" in out and "share" in out

        code = main(["trace", "export", trace_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "perfetto" in out
        perfetto_path = trace_path + ".perfetto.json"
        assert os.path.exists(perfetto_path)
        payload = json.load(open(perfetto_path))
        assert payload["traceEvents"]

    def test_trace_run_rejects_unknown_experiment(self, capsys):
        code = main(["trace", "run", "_no_such_figure"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_run_rejects_bad_sample(self, tiny_registered, capsys):
        code = main(["trace", "run", tiny_registered.id,
                     "--sample", "0"])
        assert code == 2
        assert "--sample" in capsys.readouterr().err

    def test_trace_tools_reject_missing_file(self, tmp_path, capsys):
        for sub in ("summary", "export"):
            code = main(["trace", sub, str(tmp_path / "absent.jsonl")])
            assert code == 2
            assert "no trace at" in capsys.readouterr().err


def test_registry_listing(capsys):
    code = main(["registry"])
    out = capsys.readouterr().out
    assert code == 0
    assert "flash_ssd" in out and "battery_dram" in out
    assert "clock" in out and "2q" in out


def test_run_with_mm_policy_and_new_scheme(capsys):
    code = main(["run", "--scheme", "battery-dram", "--rate", "50",
                 "--duration", "1", "--warmup", "0.5",
                 "--mm-policy", "clock"])
    out = capsys.readouterr().out
    assert code == 0
    assert "battery_dram" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


class TestExperimentList:
    def test_lists_registered_ids_and_titles(self, capsys):
        code = main(["experiment", "list"])
        out = capsys.readouterr().out
        assert code == 0
        for exp_id in ("fig4_1", "fig4_8", "table4_2",
                       "ablation_group_commit"):
            assert exp_id in out
        assert "log file allocation" in out

    def test_includes_user_registered_specs(self, tiny_registered,
                                            capsys):
        main(["experiment", "list"])
        assert "_cli_tiny" in capsys.readouterr().out


class TestExperimentRun:
    def test_run_one(self, tiny_registered, capsys):
        code = main(["experiment", "run", "_cli_tiny",
                     "--profile", "fast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tiny registry test experiment" in out

    def test_parallel_honored_with_fast_profile(self, tiny_registered,
                                                capsys):
        """--parallel + --profile fast runs (no silent ignore)."""
        code = main(["experiment", "run", "_cli_tiny",
                     "--profile", "fast", "--parallel", "--workers", "2"])
        assert code == 0
        assert "tiny registry test experiment" in capsys.readouterr().out

    def test_exports_json_and_csv(self, tiny_registered, tmp_path,
                                  capsys):
        out_dir = str(tmp_path / "artifacts")
        code = main(["experiment", "run", "_cli_tiny",
                     "--profile", "fast", "--json", "--csv",
                     "--out", out_dir])
        out = capsys.readouterr().out
        assert code == 0
        json_path = os.path.join(out_dir, "_cli_tiny.json")
        csv_path = os.path.join(out_dir, "_cli_tiny.csv")
        assert os.path.exists(json_path) and os.path.exists(csv_path)
        assert f"wrote {json_path}" in out
        with open(json_path) as fh:
            assert json.load(fh)["experiment_id"] == "_cli_tiny"

    def test_export_without_out_dir_rejected(self, tiny_registered,
                                             capsys):
        code = main(["experiment", "run", "_cli_tiny", "--json"])
        assert code == 2
        assert "--out" in capsys.readouterr().err

    def test_unknown_id_rejected_with_listing(self, capsys):
        code = main(["experiment", "run", "fig9_9"])
        err = capsys.readouterr().err
        assert code == 2
        assert "fig9_9" in err and "fig4_1" in err

    def test_ids_and_all_conflict(self, capsys):
        code = main(["experiment", "run", "fig4_1", "--all"])
        assert code == 2

    def test_no_ids_rejected(self, capsys):
        code = main(["experiment", "run"])
        assert code == 2

    def test_legacy_syntax_upgraded(self, tiny_registered, capsys):
        """'experiment <id> --fast' still works, with a stderr note."""
        code = main(["experiment", "_cli_tiny", "--fast"])
        captured = capsys.readouterr()
        assert code == 0
        assert "tiny registry test experiment" in captured.out
        assert "deprecated" in captured.err

    def test_legacy_syntax_flag_first(self, tiny_registered, capsys):
        """The old parser accepted '--fast <id>' order too."""
        code = main(["experiment", "--fast", "_cli_tiny"])
        captured = capsys.readouterr()
        assert code == 0
        assert "tiny registry test experiment" in captured.out
        assert "deprecated" in captured.err

    def test_invalid_workers_rejected(self, tiny_registered, capsys):
        code = main(["experiment", "run", "_cli_tiny",
                     "--profile", "fast", "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_duplicate_ids_run_once(self, tiny_registered, capsys):
        code = main(["experiment", "run", "_cli_tiny", "_cli_tiny",
                     "--profile", "fast"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("tiny registry test experiment") == 1


class TestExperimentSeedOverride:
    def _run(self, capsys, *extra):
        code = main(["experiment", "run", "_cli_tiny",
                     "--profile", "fast", *extra])
        assert code == 0
        return capsys.readouterr().out

    def test_same_seed_reproduces_output(self, tiny_registered, capsys):
        first = self._run(capsys, "--seed", "7")
        second = self._run(capsys, "--seed", "7")
        assert first == second

    def test_seed_changes_trajectory(self, tiny_registered, capsys):
        default = self._run(capsys)
        reseeded = self._run(capsys, "--seed", "7")
        assert default != reseeded

    def test_default_matches_spec_seed(self, tiny_registered, capsys):
        """No --seed keeps the spec's own base seed (the historical
        behaviour every pinned output relies on)."""
        spec_seed = tiny_registered.seed
        explicit = self._run(capsys, "--seed", str(spec_seed))
        default = self._run(capsys)
        assert explicit == default


class TestExperimentCacheFlags:
    def _run(self, capsys, *extra):
        code = main(["experiment", "run", "_cli_tiny",
                     "--profile", "fast", *extra])
        assert code == 0
        return capsys.readouterr()

    def test_cache_cold_then_warm(self, tiny_registered, tmp_path,
                                  capsys):
        cache = str(tmp_path / "cache")
        cold = self._run(capsys, "--cache", "--cache-dir", cache)
        assert "miss(es)" in cold.err
        assert "0 hit(s)" in cold.err
        warm = self._run(capsys, "--cache", "--cache-dir", cache)
        assert "100.0% hit rate" in warm.err
        assert warm.out == cold.out

    def test_cache_dir_implies_cache(self, tiny_registered, tmp_path,
                                     capsys):
        cache = str(tmp_path / "cache")
        first = self._run(capsys, "--cache-dir", cache)
        assert "cache:" in first.err
        assert os.path.isdir(os.path.join(cache, "points"))

    def test_no_cache_conflicts_with_cache(self, tiny_registered,
                                           capsys):
        code = main(["experiment", "run", "_cli_tiny",
                     "--profile", "fast", "--cache", "--no-cache"])
        assert code == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_no_cache_overrides_env_default(self, tiny_registered,
                                            tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = self._run(capsys, "--no-cache")
        assert "cache:" not in out.err
        assert not os.path.exists(str(tmp_path / "cache"))

    def test_cache_stats_file(self, tiny_registered, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        stats_path = str(tmp_path / "stats.json")
        self._run(capsys, "--cache", "--cache-dir", cache,
                  "--cache-stats", stats_path)
        with open(stats_path) as fh:
            stats = json.load(fh)
        assert stats["total"] > 0
        assert stats["hits"] == 0
        assert stats["misses"] >= 1

    def test_resume_reports_resumed_points(self, tiny_registered,
                                           tmp_path, capsys):
        cache = str(tmp_path / "cache")
        first = self._run(capsys, "--cache", "--cache-dir", cache)
        # The resume overlay is consulted before the point store, so
        # the rerun reports resumed points rather than cache hits.
        resumed = self._run(capsys, "--resume", "--cache-dir", cache)
        assert "2 resumed" in resumed.err
        assert resumed.out == first.out

    def test_explicit_journal_path(self, tiny_registered, tmp_path,
                                   capsys):
        cache = str(tmp_path / "cache")
        journal = str(tmp_path / "my-run.jsonl")
        run = self._run(capsys, "--cache", "--cache-dir", cache,
                        "--journal", journal)
        assert os.path.exists(journal)
        assert f"journal: {journal}" in run.err


class TestCacheCommand:
    def warmed_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["experiment", "run", "_cli_tiny", "--profile",
                     "fast", "--cache", "--cache-dir", cache]) == 0
        capsys.readouterr()
        return cache

    def test_stats(self, tiny_registered, tmp_path, capsys):
        cache = self.warmed_cache(tmp_path, capsys)
        code = main(["cache", "--cache-dir", cache, "stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "entries    : 1" in out

    def test_stats_json(self, tiny_registered, tmp_path, capsys):
        cache = self.warmed_cache(tmp_path, capsys)
        code = main(["cache", "--cache-dir", cache, "stats", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["entries"] == 1

    def test_gc_and_clear(self, tiny_registered, tmp_path, capsys):
        cache = self.warmed_cache(tmp_path, capsys)
        code = main(["cache", "--cache-dir", cache, "gc",
                     "--max-age-days", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "kept 1" in out
        code = main(["cache", "--cache-dir", cache, "clear"])
        out = capsys.readouterr().out
        assert code == 0
        assert "removed 1" in out

    def test_stats_on_empty_cache(self, tmp_path, capsys):
        code = main(["cache", "--cache-dir",
                     str(tmp_path / "nothing"), "stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "entries    : 0" in out


class TestWatchCommand:
    def test_watch_once_after_run(self, tiny_registered, tmp_path,
                                  capsys):
        cache = str(tmp_path / "cache")
        assert main(["experiment", "run", "_cli_tiny", "--profile",
                     "fast", "--cache", "--cache-dir", cache]) == 0
        capsys.readouterr()
        code = main(["watch", "--once", "--cache-dir", cache])
        out = capsys.readouterr().out
        assert code == 0  # run finished -> exit 0
        assert "_cli_tiny" in out
        assert "run finished" in out

    def test_watch_no_journal(self, tmp_path, capsys):
        code = main(["watch", "--once", "--cache-dir",
                     str(tmp_path / "empty")])
        captured = capsys.readouterr()
        assert code == 2
        assert "no run journals" in captured.err


class TestRecoveryCommand:
    def test_runs_and_compares_with_analytic_model(self, capsys):
        code = main(["recovery", "--rate", "20", "--interval", "4",
                     "--duration", "14", "--warmup", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "availability" in out
        assert "simulated restart" in out
        assert "analytic  restart" in out
        assert "simulated/analytic ratio" in out

    def test_force_strategy(self, capsys):
        code = main(["recovery", "--rate", "20", "--interval", "4",
                     "--duration", "14", "--warmup", "1", "--force"])
        out = capsys.readouterr().out
        assert code == 0
        assert "strategy=force" in out

    def test_crash_inside_warmup_rejected(self, capsys):
        code = main(["recovery", "--crash-at", "1", "--warmup", "2"])
        err = capsys.readouterr().err
        assert code == 2
        assert "warmup" in err

    def test_nonpositive_crash_at_rejected_cleanly(self, capsys):
        code = main(["recovery", "--crash-at", "0"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--crash-at" in err

    def test_nonpositive_interval_rejected_cleanly(self, capsys):
        code = main(["recovery", "--interval", "-1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--interval" in err
