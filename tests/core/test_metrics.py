"""Unit tests for metrics collection (repro.core.metrics)."""

import pytest

from repro.core.metrics import MetricsCollector, Results
from repro.core.transaction import Transaction
from repro.sim import Environment


def make_tx(tx_id=1, tx_type="t"):
    return Transaction(tx_id, tx_type, [])


class TestCollector:
    def test_commit_accumulates_response(self):
        env = Environment()
        m = MetricsCollector(env)
        m.record_commit(make_tx(), 0.05)
        m.record_commit(make_tx(2), 0.15)
        assert m.committed == 2
        assert m.response.mean() == pytest.approx(0.10)

    def test_by_type_responses(self):
        env = Environment()
        m = MetricsCollector(env)
        m.record_commit(make_tx(1, "a"), 0.1)
        m.record_commit(make_tx(2, "b"), 0.3)
        assert m.response_by_type["a"].mean() == pytest.approx(0.1)
        assert m.response_by_type["b"].mean() == pytest.approx(0.3)

    def test_composition_sums_transaction_timers(self):
        env = Environment()
        m = MetricsCollector(env)
        tx = make_tx()
        tx.wait_cpu = 0.01
        tx.service_cpu = 0.02
        tx.wait_lock = 0.03
        m.record_commit(tx, 0.06)
        assert m.composition_totals["cpu_wait"] == pytest.approx(0.01)
        assert m.composition_totals["cpu_service"] == pytest.approx(0.02)
        assert m.composition_totals["lock_wait"] == pytest.approx(0.03)

    def test_inactive_collector_ignores_events(self):
        env = Environment()
        m = MetricsCollector(env)
        m.active = False
        m.record_commit(make_tx(), 0.05)
        m.record_page_access("p", "main_memory")
        m.record_io("db_read")
        assert m.committed == 0
        assert m.page_access.total() == 0

    def test_reset_clears_everything(self):
        env = Environment()
        m = MetricsCollector(env)
        m.record_commit(make_tx(), 0.05)
        m.record_page_access("p", "disk")
        m.record_io("db_read")
        m.record_deadlock()
        m.reset()
        assert m.committed == 0
        assert m.page_access.total() == 0
        assert m.io_counts.total() == 0
        assert m.lock_counts.total() == 0

    def test_page_access_by_tag(self):
        env = Environment()
        m = MetricsCollector(env)
        m.record_page_access("ACCOUNT", "disk")
        m.record_page_access("ACCOUNT", "main_memory")
        m.record_page_access("BRANCH", "main_memory")
        assert m.page_access_by_tag["ACCOUNT"].total() == 2
        assert m.page_access_by_tag["BRANCH"].get("main_memory") == 1


class TestFinalize:
    def run_scenario(self):
        env = Environment()
        m = MetricsCollector(env)

        def proc(env):
            yield env.timeout(10.0)

        env.process(proc(env))
        tx = make_tx()
        tx.wait_sync_io = 0.01
        m.record_commit(tx, 0.1)
        m.record_commit(make_tx(2), 0.2)
        for _ in range(6):
            m.record_page_access("p", "main_memory")
        for _ in range(2):
            m.record_page_access("p", "disk")
        m.record_io("db_read")
        m.record_io("db_read")
        m.record_lock_request(True)
        m.record_lock_request(False)
        m.record_lock_wait(0.5)
        env.run()
        return m.finalize(cpu_utilization=0.5, device_utilization={})

    def test_throughput(self):
        results = self.run_scenario()
        assert results.throughput == pytest.approx(0.2)

    def test_hit_ratios(self):
        results = self.run_scenario()
        assert results.hit_ratio("main_memory") == pytest.approx(0.75)
        assert results.hit_ratio("disk") == pytest.approx(0.25)
        assert results.hit_ratio("nvem_cache") == 0.0

    def test_io_per_tx(self):
        results = self.run_scenario()
        assert results.io_per_tx["db_read"] == pytest.approx(1.0)

    def test_lock_stats(self):
        results = self.run_scenario()
        assert results.lock_stats["requests_per_tx"] == pytest.approx(1.0)
        assert results.lock_stats["conflict_ratio"] == pytest.approx(0.5)
        assert results.lock_stats["mean_lock_wait"] == pytest.approx(0.5)

    def test_response_time_ms(self):
        results = self.run_scenario()
        assert results.response_time_ms == pytest.approx(150.0)

    def test_normalized_response_time(self):
        results = self.run_scenario()
        # 0.3 s total response over 8 accesses, scaled to 4 accesses.
        assert results.normalized_response_time(4) == pytest.approx(0.15)

    def test_normalized_response_no_accesses(self):
        env = Environment()
        m = MetricsCollector(env)
        results = m.finalize(0.0, {})
        assert results.normalized_response_time(10) == 0.0

    def test_summary_renders(self):
        results = self.run_scenario()
        text = results.summary()
        assert "throughput" in text
        assert "hit ratios" in text

    def test_summary_marks_saturation(self):
        results = self.run_scenario()
        results.saturated = True
        assert "saturated" in results.summary()


class _FakeRestartStats:
    def __init__(self, log_pages=10, redo_pages=20,
                 log_scan=1.0, redo=2.0):
        self.log_pages = log_pages
        self.redo_pages = redo_pages
        self.log_scan_time = log_scan
        self.redo_time = redo


class TestRecoveryCounters:
    def test_no_block_unless_enabled(self):
        env = Environment()
        m = MetricsCollector(env)
        assert m.finalize(0.0, {}).recovery is None

    def test_enabled_but_crash_free_reports_full_availability(self):
        env = Environment()
        m = MetricsCollector(env)
        m.recovery_enabled = True
        env.run(until=10.0)
        rec = m.finalize(0.0, {}).recovery
        assert rec["crashes"] == 0.0
        assert rec["availability"] == 1.0
        assert rec["restart_time_mean"] == 0.0

    def test_crash_accumulates_downtime_and_breakdown(self):
        env = Environment()
        m = MetricsCollector(env)
        m.recovery_enabled = True
        m.record_checkpoint()
        env.run(until=4.0)
        m.note_outage_start()
        env.run(until=7.0)
        m.record_crash(3.0, _FakeRestartStats())
        env.run(until=10.0)
        rec = m.finalize(0.0, {}).recovery
        assert rec["crashes"] == 1.0
        assert rec["checkpoints"] == 1.0
        assert rec["downtime"] == pytest.approx(3.0)
        assert rec["availability"] == pytest.approx(0.7)
        assert rec["restart_time_mean"] == pytest.approx(3.0)
        assert rec["restart_log_pages"] == 10.0
        assert rec["restart_redo_pages"] == 20.0
        assert rec["restart_log_scan_time"] == pytest.approx(1.0)
        assert rec["restart_redo_time"] == pytest.approx(2.0)

    def test_open_outage_charged_and_clipped_to_window(self):
        env = Environment()
        m = MetricsCollector(env)
        m.recovery_enabled = True
        env.run(until=4.0)
        m.reset()  # warm-up boundary at t=4
        env.run(until=6.0)
        m.note_outage_start()
        env.run(until=10.0)
        rec = m.finalize(0.0, {}).recovery
        assert rec["crashes"] == 0.0
        assert rec["downtime"] == pytest.approx(4.0)
        assert rec["availability"] == pytest.approx(1.0 - 4.0 / 6.0)

    def test_restart_spanning_warmup_clips_availability_not_mttr(self):
        """A restart that began before the warm-up boundary charges
        only its in-window part to availability, while MTTR reports
        the true restart duration."""
        env = Environment()
        m = MetricsCollector(env)
        m.recovery_enabled = True
        env.run(until=8.0)
        m.note_outage_start()
        env.run(until=10.0)
        m.reset()  # warm-up boundary at t=10, restart still running
        env.run(until=13.0)
        m.record_crash(5.0, _FakeRestartStats())
        env.run(until=20.0)
        rec = m.finalize(0.0, {}).recovery
        # Only t=10..13 of the 5 s restart fell inside the window.
        assert rec["downtime"] == pytest.approx(3.0)
        assert rec["availability"] == pytest.approx(0.7)
        assert rec["restart_time_mean"] == pytest.approx(5.0)

    def test_reset_clears_recovery_counters(self):
        env = Environment()
        m = MetricsCollector(env)
        m.recovery_enabled = True
        m.record_checkpoint()
        m.note_outage_start()
        m.record_crash(3.0, _FakeRestartStats())
        m.reset()
        env.run(until=10.0)
        rec = m.finalize(0.0, {}).recovery
        assert rec["crashes"] == 0.0
        assert rec["downtime"] == 0.0
        assert rec["availability"] == 1.0

    def test_summary_includes_availability_line(self):
        env = Environment()
        m = MetricsCollector(env)
        m.recovery_enabled = True
        m.note_outage_start()
        m.record_crash(2.0, _FakeRestartStats())
        env.run(until=10.0)
        text = m.finalize(0.0, {}).summary()
        assert "availability" in text
        assert "MTTR" in text
