"""Canonical fingerprint tests: stability, sensitivity, and the
uncacheable contract.

The cache's whole safety argument rests on two properties of
:mod:`repro.core.fingerprint`: equal simulation inputs hash equal
(stability — otherwise the cache is useless) and different simulation
inputs hash different (sensitivity — otherwise the cache is *wrong*).
These tests pin both, plus the escape hatch: anything without a stable
representation raises :class:`FingerprintError` instead of guessing.
"""

import dataclasses
import enum

import pytest

from repro.core import fingerprint as fp
from repro.core.fingerprint import (
    FingerprintError,
    canonical_data,
    canonical_json,
    code_version_salt,
    point_fingerprint,
)
from repro.workload.debit_credit import DebitCreditWorkload
from tests.experiments.conftest import tiny_config


class Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclasses.dataclass
class Leaf:
    name: str
    value: float


class TestStability:
    def test_equal_inputs_equal_fingerprints(self):
        a = {"config": Leaf("x", 1.5), "seed": 3, "mode": Color.RED}
        b = {"config": Leaf("x", 1.5), "seed": 3, "mode": Color.RED}
        assert fp.fingerprint(a) == fp.fingerprint(b)

    def test_mapping_insertion_order_irrelevant(self):
        assert fp.fingerprint({"a": 1, "b": 2}) == \
            fp.fingerprint({"b": 2, "a": 1})

    def test_set_iteration_order_irrelevant(self):
        assert fp.fingerprint({"s": {3, 1, 2}}) == \
            fp.fingerprint({"s": {2, 3, 1}})

    def test_list_order_significant(self):
        assert fp.fingerprint([1, 2]) != fp.fingerprint([2, 1])

    def test_system_config_fingerprint_stable(self):
        assert tiny_config().fingerprint() == tiny_config().fingerprint()

    def test_workload_counters_excluded(self):
        """A half-used workload fingerprints like a fresh one: only
        constructor parameters are simulation inputs."""
        fresh = DebitCreditWorkload(arrival_rate=50)
        used = DebitCreditWorkload(arrival_rate=50)
        used._tx_counter = 999
        used._history_cursor = 17
        assert fp.fingerprint(fresh) == fp.fingerprint(used)

    def test_no_repr_or_id_leakage(self):
        """Two structurally equal objects at different addresses hash
        equal — the canonical form never uses id()/repr()."""
        assert canonical_json(Leaf("n", 2.0)) == canonical_json(Leaf("n", 2.0))


class TestSensitivity:
    def test_dataclass_field_change(self):
        assert fp.fingerprint(Leaf("x", 1.0)) != fp.fingerprint(Leaf("x", 2.0))

    def test_enum_member_change(self):
        assert fp.fingerprint(Color.RED) != fp.fingerprint(Color.BLUE)

    def test_config_change_changes_system_fingerprint(self):
        a = tiny_config()
        b = tiny_config()
        b.cm.mpl += 1
        assert a.fingerprint() != b.fingerprint()

    def test_workload_parameter_change(self):
        assert fp.fingerprint(DebitCreditWorkload(arrival_rate=50)) != \
            fp.fingerprint(DebitCreditWorkload(arrival_rate=60))

    def test_point_seed_in_key(self):
        """--seed N must never be served a default-seed cache entry."""
        config = tiny_config()
        workload = DebitCreditWorkload(arrival_rate=50)
        assert point_fingerprint(config, workload, 0.5, 1.0, seed=1) != \
            point_fingerprint(config, workload, 0.5, 1.0, seed=7)

    def test_run_window_in_key(self):
        config = tiny_config()
        workload = DebitCreditWorkload(arrival_rate=50)
        base = point_fingerprint(config, workload, 0.5, 1.0, seed=1)
        assert point_fingerprint(config, workload, 0.5, 2.0, seed=1) != base
        assert point_fingerprint(config, workload, 0.2, 1.0, seed=1) != base

    def test_salt_in_key(self, monkeypatch):
        config = tiny_config()
        workload = DebitCreditWorkload(arrival_rate=50)
        base = point_fingerprint(config, workload, 0.5, 1.0, seed=1)
        monkeypatch.setenv("REPRO_CACHE_SALT", "other-code-version")
        assert point_fingerprint(config, workload, 0.5, 1.0, seed=1) != base

    def test_bool_and_int_keys_distinct(self):
        """JSON-normalized mapping keys must not merge 1 and True."""
        assert fp.fingerprint({1: "a"}) != fp.fingerprint({True: "a"})


class TestSalt:
    def test_salt_cached_and_hexlike(self):
        salt = code_version_salt()
        assert salt == code_version_salt()
        assert len(salt) == 64
        int(salt, 16)

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SALT", "pinned")
        assert code_version_salt() == "pinned"


class TestUncacheable:
    def test_callable_attribute_rejected(self):
        class Holder:
            def __init__(self):
                self.fn = lambda: 1

        with pytest.raises(FingerprintError):
            canonical_data(Holder())

    def test_unrepresentable_object_rejected(self):
        with pytest.raises(FingerprintError):
            canonical_data(object())

    def test_non_scalar_mapping_key_rejected(self):
        with pytest.raises(FingerprintError):
            canonical_data({(1, 2): "tuple key"})

    def test_key_collision_after_normalization_rejected(self):
        with pytest.raises(FingerprintError):
            canonical_data({"1": "str", 1: "int"})

    def test_fingerprint_data_hook_wins_over_attrs(self):
        class Hooked:
            def __init__(self):
                self.fn = lambda: 1  # would be rejected by the fallback

            def fingerprint_data(self):
                return {"stable": 42}

        data = canonical_data(Hooked())
        assert data["data"] == {"stable": 42}


class TestMediaFingerprint:
    """Media-fault knobs are part of the cache key: a cached fault-free
    point must never be served for a faulted rerun (regression for the
    content-addressed result cache)."""

    @staticmethod
    def _key(**kwargs):
        from repro.workload.synthetic import SyntheticWorkload
        from tests.recovery.conftest import media_synthetic_config

        config = media_synthetic_config(**kwargs)
        workload = SyntheticWorkload(config)
        return point_fingerprint(config, workload, 1.0, 5.0, seed=3)

    def test_fault_schedule_misses_cache(self):
        from repro.core.config import DeviceFault

        base = self._key()
        loss = self._key(
            faults=(DeviceFault(device="db0", time=5.0, kind="loss"),))
        transient = self._key(
            faults=(DeviceFault(device="db0", time=5.0, kind="transient",
                                duration=0.5),))
        assert len({base, loss, transient}) == 3

    def test_fault_instant_misses_cache(self):
        from repro.core.config import DeviceFault

        early = self._key(
            faults=(DeviceFault(device="db0", time=4.0, kind="loss"),))
        late = self._key(
            faults=(DeviceFault(device="db0", time=5.0, kind="loss"),))
        assert early != late

    def test_log_mirror_misses_cache(self):
        from repro.core.config import NVEM

        single = self._key(log_device=NVEM)
        dual = self._key(log_device=NVEM, log_mirror=True)
        assert single != dual

    def test_archive_knobs_miss_cache(self):
        from repro.core.config import DeviceFault

        fault = (DeviceFault(device="db0", time=5.0, kind="loss"),)
        base = self._key(faults=fault)
        assert self._key(faults=fault, archive_interval=9.0) != base
        assert self._key(faults=fault, archive_batch=4096) != base

    def test_media_toggle_misses_cache(self):
        assert self._key(media_enabled=True) != \
            self._key(media_enabled=False)
