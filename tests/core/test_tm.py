"""Unit tests for the transaction manager (repro.core.tm)."""

import pytest

from repro.core.bm import BufferManager
from repro.core.cc import LockManager
from repro.core.config import (
    CCMode,
    CMConfig,
    DiskUnitConfig,
    LogAllocation,
    NVEM,
    NVEMConfig,
    PartitionConfig,
    SystemConfig,
)
from repro.core.cpu import CPUPool
from repro.core.metrics import MetricsCollector
from repro.core.tm import TransactionManager
from repro.core.transaction import ObjectRef, Transaction
from repro.sim import Environment, RandomStreams
from repro.storage.hierarchy import StorageSubsystem


def build_tm(mpl=4, cc_mode=CCMode.PAGE, allocation=NVEM,
             log_device=NVEM, buffer_size=64):
    partitions = [
        PartitionConfig("p0", num_objects=1000, block_factor=10,
                        cc_mode=cc_mode, allocation=allocation),
    ]
    units = []
    if allocation == "db0" or log_device == "log0":
        units.append(DiskUnitConfig(name="db0", num_disks=4))
    config = SystemConfig(
        partitions=partitions,
        disk_units=units,
        nvem=NVEMConfig(),
        cm=CMConfig(mpl=mpl, buffer_size=buffer_size),
        log=LogAllocation(device=log_device if log_device != "log0"
                          else "db0"),
    )
    config.validate()
    env = Environment()
    streams = RandomStreams(5)
    metrics = MetricsCollector(env)
    storage = StorageSubsystem(env, streams, config)
    cpu = CPUPool(env, streams, config.cm)
    locks = LockManager(env, metrics)
    bm = BufferManager(env, streams, config, cpu, storage, metrics)
    tm = TransactionManager(env, config, cpu, locks, bm, metrics)
    return env, tm, metrics, locks


def make_tx(tx_id, pages, write=True):
    refs = [ObjectRef(0, page * 10, page, write) for page in pages]
    return Transaction(tx_id, "test", refs)


class TestLifecycle:
    def test_commit_records_response_time(self):
        env, tm, metrics, _ = build_tm()
        tm.submit(make_tx(1, [1, 2, 3]))
        env.run()
        assert metrics.committed == 1
        assert metrics.response.count == 1
        # BOT + 3 OR + EOT CPU plus storage; well under 100 ms.
        assert 0 < metrics.response.mean() < 0.1

    def test_response_includes_input_queue_wait(self):
        env, tm, metrics, _ = build_tm(mpl=1)
        for tx_id in (1, 2, 3):
            tm.submit(make_tx(tx_id, [tx_id]))
        env.run()
        assert metrics.committed == 3
        totals = metrics.composition_totals
        assert totals["input_queue"] > 0

    def test_mpl_limits_concurrency(self):
        env, tm, metrics, _ = build_tm(mpl=2)
        peak = [0]

        original = tm._execute

        def tracking(tx):
            peak[0] = max(peak[0], tm.active)
            yield from original(tx)

        tm._execute = tracking
        for tx_id in range(6):
            tm.submit(make_tx(tx_id, [tx_id % 3]))
        env.run()
        assert metrics.committed == 6
        assert peak[0] <= 2

    def test_locks_released_after_commit(self):
        env, tm, metrics, locks = build_tm()
        tm.submit(make_tx(1, [1, 2]))
        env.run()
        assert locks.held_count() == 0
        assert locks.waiting_count() == 0

    def test_no_cc_partition_takes_no_locks(self):
        env, tm, metrics, locks = build_tm(cc_mode=CCMode.NONE)
        tm.submit(make_tx(1, [1, 2]))
        env.run()
        assert metrics.lock_counts.get("requests") == 0

    def test_object_level_lock_ids(self):
        env, tm, metrics, _ = build_tm(cc_mode=CCMode.OBJECT)
        # Two transactions writing different objects of the same page
        # must not conflict under object locking.
        tx1 = Transaction(1, "t", [ObjectRef(0, 10, 1, True)])
        tx2 = Transaction(2, "t", [ObjectRef(0, 11, 1, True)])
        tm.submit(tx1)
        tm.submit(tx2)
        env.run()
        assert metrics.lock_counts.get("conflicts") == 0

    def test_page_level_conflict_on_same_page(self):
        env, tm, metrics, _ = build_tm(cc_mode=CCMode.PAGE)
        tx1 = Transaction(1, "t", [ObjectRef(0, 10, 1, True)])
        tx2 = Transaction(2, "t", [ObjectRef(0, 11, 1, True)])
        tm.submit(tx1)
        tm.submit(tx2)
        env.run()
        assert metrics.lock_counts.get("conflicts") == 1
        assert metrics.committed == 2


class TestDeadlockRestart:
    def test_deadlock_victim_restarts_and_commits(self):
        env, tm, metrics, _ = build_tm()
        # Opposite lock orders -> guaranteed deadlock under page locks.
        tx1 = Transaction(1, "t", [ObjectRef(0, 10, 1, True),
                                   ObjectRef(0, 20, 2, True)])
        tx2 = Transaction(2, "t", [ObjectRef(0, 20, 2, True),
                                   ObjectRef(0, 10, 1, True)])
        tm.submit(tx1)
        tm.submit(tx2)
        env.run()
        assert metrics.committed == 2
        assert metrics.aborted >= 1
        assert metrics.lock_counts.get("deadlocks") >= 1

    def test_restart_reuses_reference_string(self):
        """Access invariance: the restarted tx touches the same pages."""
        env, tm, metrics, _ = build_tm()
        tx1 = Transaction(1, "t", [ObjectRef(0, 10, 1, True),
                                   ObjectRef(0, 20, 2, True)])
        tx2 = Transaction(2, "t", [ObjectRef(0, 20, 2, True),
                                   ObjectRef(0, 10, 1, True)])
        pages_before = [r.page_no for r in tx2.refs]
        tm.submit(tx1)
        tm.submit(tx2)
        env.run()
        assert [r.page_no for r in tx2.refs] == pages_before
        assert tx1.restarts + tx2.restarts >= 1


class TestInterrupt:
    """External aborts (kernel interrupts) must back out cleanly."""

    def test_interrupt_mid_execution_releases_everything(self):
        env, tm, metrics, locks = build_tm()
        tx = make_tx(1, [1, 2, 3])
        proc = tm.submit(tx)
        env.run(until=0.0005)  # mid-flight: BOT done, references underway
        assert proc.is_alive
        proc.interrupt(cause="external-abort")
        env.run()
        assert not proc.is_alive
        assert locks.held_count() == 0
        assert locks.waiting_count() == 0
        assert tm.active == 0
        # An external abort is not a completion: the distributed layer
        # reports `completed` as the node's committed count.
        assert tm.completed == 0
        assert metrics.committed == 0
        assert metrics.aborted == 1
        # Torn down, not re-run: no phantom restart is counted.
        assert metrics.restarts == 0
        # No CPU / device / NVEM unit leaked mid-service.
        assert tm.cpu.cpus.users == 0
        # The MPL slot came back: a fresh transaction commits normally.
        tm.submit(make_tx(2, [4]))
        env.run()
        assert metrics.committed == 1
        assert tm.completed == 1

    def test_repeated_interrupts_do_not_exhaust_cpus(self):
        """Regression: a mid-service interrupt used to leak the granted
        CPU unit (no try/finally around the burst), so `capacity` aborts
        would silently saturate the pool forever."""
        env, tm, metrics, _ = build_tm()
        capacity = tm.cpu.cpus.capacity
        for i in range(capacity + 1):
            proc = tm.submit(make_tx(100 + i, [1, 2, 3]))
            env.run(until=env.now + 0.0005)
            if proc.is_alive:
                proc.interrupt(cause="shed-load")
            env.run()
            assert tm.cpu.cpus.users == 0, f"CPU unit leaked on abort {i}"
        tm.submit(make_tx(999, [5]))
        env.run()
        assert metrics.committed >= 1

    def test_interrupt_while_waiting_for_mpl_slot(self):
        env, tm, metrics, _ = build_tm(mpl=1)
        first = make_tx(1, [1])
        tm.submit(first)
        blocked = make_tx(2, [2])
        proc = tm.submit(blocked)
        env.run(until=0.0)
        # tx 2 is queued for admission; kill it while it waits.
        assert tm.input_queue_length == 1
        proc.interrupt(cause="shed-load")
        env.run()
        assert tm.input_queue_length == 0
        assert metrics.committed == 1  # tx 1 unaffected
        # The shed transaction counts as an abort (not a restart), so
        # submitted == completed + aborted still holds.
        assert metrics.aborted == 1
        assert metrics.restarts == 0
        assert tm.active == 0
        # The slot was never leaked: a third transaction commits.
        tm.submit(make_tx(3, [3]))
        env.run()
        assert metrics.committed == 2

    def test_interrupt_while_waiting_for_lock(self):
        env, tm, metrics, locks = build_tm()
        # tx1 takes page 10's lock and holds it through its run; tx2
        # blocks on the same lock, then gets externally aborted.
        tx1 = make_tx(1, [1, 2, 3, 4, 5])
        tx2 = Transaction(2, "t", [ObjectRef(0, 10, 1, True)])
        tm.submit(tx1)
        proc2 = tm.submit(tx2)
        env.run(until=0.0005)
        if tx2.waiting_for is not None and proc2.is_alive:
            proc2.interrupt(cause="external-abort")
        env.run()
        assert locks.held_count() == 0
        assert locks.waiting_count() == 0
        assert metrics.committed >= 1
        assert tm.active == 0
class TestCounters:
    def test_submitted_and_completed(self):
        env, tm, _, _ = build_tm()
        for tx_id in range(5):
            tm.submit(make_tx(tx_id, [tx_id]))
        env.run()
        assert tm.submitted == 5
        assert tm.completed == 5
        assert tm.active == 0

    def test_input_queue_length(self):
        env, tm, _, _ = build_tm(mpl=1)
        for tx_id in range(4):
            tm.submit(make_tx(tx_id, [1]))
        # Let the lifecycle processes claim their MPL slots (time 0):
        # one runs, three wait in the input queue.
        env.run(until=0.0)
        assert tm.input_queue_length == 3
        env.run()
        assert tm.input_queue_length == 0
