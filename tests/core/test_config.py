"""Unit tests for the configuration model (repro.core.config)."""

import pytest

from repro.core.config import (
    AccessMode,
    CCMode,
    CMConfig,
    DiskUnitConfig,
    DiskUnitType,
    LogAllocation,
    MEMORY,
    NVEM,
    NVEMCachingMode,
    NVEMConfig,
    PartitionConfig,
    RecoveryConfig,
    SubPartition,
    SystemConfig,
    TransactionTypeConfig,
)


def minimal_config(**overrides):
    config = SystemConfig(
        partitions=[PartitionConfig("p0", num_objects=1000,
                                    allocation="unit0")],
        disk_units=[DiskUnitConfig(name="unit0")],
        log=LogAllocation(device="unit0"),
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class TestSubPartition:
    def test_valid(self):
        sp = SubPartition(size=1.0, access_prob=0.5)
        assert sp.size == 1.0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            SubPartition(size=0.0, access_prob=0.5)

    def test_rejects_negative_probability(self):
        with pytest.raises(ValueError):
            SubPartition(size=1.0, access_prob=-0.1)


class TestPartitionConfig:
    def test_num_pages_rounds_up(self):
        part = PartitionConfig("p", num_objects=95, block_factor=10)
        assert part.num_pages == 10

    def test_page_of_object(self):
        part = PartitionConfig("p", num_objects=100, block_factor=10)
        assert part.page_of_object(0) == 0
        assert part.page_of_object(9) == 0
        assert part.page_of_object(10) == 1

    def test_validate_rejects_bad_objects(self):
        with pytest.raises(ValueError):
            PartitionConfig("p", num_objects=0).validate()

    def test_validate_rejects_bad_block_factor(self):
        with pytest.raises(ValueError):
            PartitionConfig("p", num_objects=10, block_factor=0).validate()

    def test_validate_rejects_empty_subpartitions(self):
        part = PartitionConfig("p", num_objects=10, subpartitions=[])
        with pytest.raises(ValueError):
            part.validate()

    def test_validate_rejects_zero_probability_mass(self):
        part = PartitionConfig(
            "p", num_objects=10,
            subpartitions=[SubPartition(1.0, 0.0)],
        )
        with pytest.raises(ValueError):
            part.validate()

    def test_nvem_cache_and_write_buffer_exclusive(self):
        part = PartitionConfig(
            "p", num_objects=10,
            nvem_caching=NVEMCachingMode.ALL,
            nvem_write_buffer=True,
        )
        with pytest.raises(ValueError, match="mutually exclusive"):
            part.validate()

    def test_memory_resident_rejects_nvem_features(self):
        part = PartitionConfig(
            "p", num_objects=10, allocation=MEMORY,
            nvem_caching=NVEMCachingMode.ALL,
        )
        with pytest.raises(ValueError):
            part.validate()

    def test_nvem_resident_rejects_write_buffer(self):
        part = PartitionConfig(
            "p", num_objects=10, allocation=NVEM,
            nvem_write_buffer=True,
        )
        with pytest.raises(ValueError):
            part.validate()


class TestTransactionTypeConfig:
    def test_valid(self):
        tt = TransactionTypeConfig(
            "t", arrival_rate=10, tx_size=5, write_prob=0.5,
            reference_matrix={"p0": 1.0},
        )
        tt.validate(["p0"])

    def test_matrix_must_sum_to_one(self):
        tt = TransactionTypeConfig(
            "t", arrival_rate=10, tx_size=5, write_prob=0.5,
            reference_matrix={"p0": 0.5},
        )
        with pytest.raises(ValueError, match="sums to"):
            tt.validate(["p0"])

    def test_unknown_partition_rejected(self):
        tt = TransactionTypeConfig(
            "t", arrival_rate=10, tx_size=5, write_prob=0.5,
            reference_matrix={"ghost": 1.0},
        )
        with pytest.raises(ValueError, match="unknown partitions"):
            tt.validate(["p0"])

    def test_bad_write_prob(self):
        tt = TransactionTypeConfig(
            "t", arrival_rate=10, tx_size=5, write_prob=1.5,
            reference_matrix={"p0": 1.0},
        )
        with pytest.raises(ValueError):
            tt.validate(["p0"])


class TestDiskUnitConfig:
    def test_cached_unit_needs_cache_size(self):
        unit = DiskUnitConfig(name="u",
                              unit_type=DiskUnitType.VOLATILE_CACHE)
        with pytest.raises(ValueError, match="cache_size"):
            unit.validate()

    def test_write_buffer_only_requires_nonvolatile(self):
        unit = DiskUnitConfig(name="u", unit_type=DiskUnitType.REGULAR,
                              write_buffer_only=True)
        with pytest.raises(ValueError):
            unit.validate()

    def test_ssd_needs_no_disks(self):
        unit = DiskUnitConfig(name="u", unit_type=DiskUnitType.SSD,
                              num_disks=0)
        unit.validate()  # must not raise


class TestCMConfig:
    def test_cpu_seconds(self):
        cm = CMConfig(mips=50.0)
        assert cm.cpu_seconds(50_000_000) == pytest.approx(1.0)

    def test_rejects_bad_mpl(self):
        with pytest.raises(ValueError):
            CMConfig(mpl=0).validate()

    def test_rejects_zero_mips(self):
        with pytest.raises(ValueError):
            CMConfig(mips=0).validate()

    def test_rejects_negative_instructions(self):
        with pytest.raises(ValueError):
            CMConfig(instr_bot=-1).validate()

    def test_rejects_negative_group_commit_timeout(self):
        with pytest.raises(ValueError, match="group_commit_timeout"):
            CMConfig(group_commit_timeout=-0.001).validate()

    def test_rejects_group_commit_batch_without_timeout(self):
        """A batch that never fills would stall commits forever."""
        with pytest.raises(ValueError, match="positive.*timeout"):
            CMConfig(group_commit_size=8,
                     group_commit_timeout=0.0).validate()

    def test_group_commit_batch_with_timeout_ok(self):
        CMConfig(group_commit_size=8,
                 group_commit_timeout=0.002).validate()

    def test_single_log_writes_need_no_timeout(self):
        """The paper's default (no group commit) keeps timeout 0."""
        CMConfig(group_commit_size=1, group_commit_timeout=0.0).validate()


class TestRecoveryConfig:
    def test_default_disabled_and_valid(self):
        config = RecoveryConfig()
        assert not config.enabled
        config.validate()

    def test_disabled_skips_field_checks(self):
        RecoveryConfig(checkpoint_interval=-1.0).validate()

    def test_enabled_requires_positive_interval(self):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            RecoveryConfig(enabled=True,
                           checkpoint_interval=0.0).validate()

    def test_crash_times_must_increase(self):
        with pytest.raises(ValueError, match="crash_times"):
            RecoveryConfig(enabled=True,
                           crash_times=(5.0, 5.0)).validate()
        with pytest.raises(ValueError, match="crash_times"):
            RecoveryConfig(enabled=True,
                           crash_times=(0.0,)).validate()

    def test_negative_redo_instr_rejected(self):
        with pytest.raises(ValueError, match="redo_instr"):
            RecoveryConfig(enabled=True, redo_instr=-1.0).validate()

    def test_valid_enabled_config(self):
        RecoveryConfig(enabled=True, checkpoint_interval=8.0,
                       crash_times=(12.0, 30.0)).validate()

    def test_system_config_validates_recovery(self):
        config = minimal_config()
        config.recovery = RecoveryConfig(enabled=True,
                                         checkpoint_interval=-5.0)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            config.validate()


class TestLogAllocation:
    def test_memory_log_rejected(self):
        with pytest.raises(ValueError):
            LogAllocation(device=MEMORY).validate()

    def test_nvem_log_with_buffer_rejected(self):
        with pytest.raises(ValueError):
            LogAllocation(device=NVEM, nvem_write_buffer=True).validate()


class TestSystemConfig:
    def test_minimal_validates(self):
        minimal_config().validate()

    def test_duplicate_partition_names(self):
        config = minimal_config()
        config.partitions.append(
            PartitionConfig("p0", num_objects=5, allocation="unit0")
        )
        with pytest.raises(ValueError, match="duplicate"):
            config.validate()

    def test_unknown_allocation_target(self):
        config = minimal_config()
        config.partitions[0].allocation = "ghost"
        with pytest.raises(ValueError, match="unknown allocation"):
            config.validate()

    def test_nvem_cache_requires_size(self):
        config = minimal_config()
        config.partitions[0].nvem_caching = NVEMCachingMode.ALL
        with pytest.raises(ValueError, match="nvem_cache_size"):
            config.validate()

    def test_nvem_write_buffer_requires_size(self):
        config = minimal_config()
        config.partitions[0].nvem_write_buffer = True
        with pytest.raises(ValueError, match="nvem_write_buffer_size"):
            config.validate()

    def test_footnote4_nvem_cache_plus_caching_unit(self):
        """NVEM caching over a caching disk unit is not meaningful."""
        config = minimal_config()
        config.disk_units[0].unit_type = DiskUnitType.VOLATILE_CACHE
        config.disk_units[0].cache_size = 100
        config.partitions[0].nvem_caching = NVEMCachingMode.ALL
        config.cm.nvem_cache_size = 100
        with pytest.raises(ValueError, match="not meaningful"):
            config.validate()

    def test_footnote4_double_write_buffer(self):
        """A write buffer in both NVEM and the disk cache is rejected."""
        config = minimal_config()
        config.disk_units[0].unit_type = DiskUnitType.NONVOLATILE_CACHE
        config.disk_units[0].cache_size = 100
        config.partitions[0].nvem_write_buffer = True
        config.cm.nvem_write_buffer_size = 100
        with pytest.raises(ValueError, match="both NVEM"):
            config.validate()

    def test_log_target_must_exist(self):
        config = minimal_config()
        config.log = LogAllocation(device="ghost")
        with pytest.raises(ValueError, match="log allocation"):
            config.validate()

    def test_partition_lookup(self):
        config = minimal_config()
        assert config.partition("p0").name == "p0"
        with pytest.raises(KeyError):
            config.partition("ghost")

    def test_disk_unit_lookup(self):
        config = minimal_config()
        assert config.disk_unit("unit0").name == "unit0"
        with pytest.raises(KeyError):
            config.disk_unit("ghost")

    def test_theoretical_mips(self):
        config = minimal_config()
        config.cm.num_cpus = 4
        config.cm.mips = 50
        assert config.theoretical_mips == 200
