"""Guard: per-reference hot-path objects must not carry ``__dict__``.

Every object on this list is allocated per page reference, per I/O or
per event — millions of times per figure.  A ``__dict__`` on any of
them (e.g. from dropping ``__slots__`` in a subclass, or adding a
mixin without slots) costs memory and attribute-lookup time on the
exact paths PR 2/PR 4 optimized; this test makes such a regression
loud.
"""

import pytest

from repro.core.config import CMConfig, DiskUnitConfig
from repro.core.transaction import ObjectRef, Transaction
from repro.sim import Environment, RandomStreams, Resource, Store
from repro.sim.core import Event, Process, Timeout
from repro.sim.resources import Request
from repro.sim.stats import Accumulator, CategoryCounter, TimeWeighted
from repro.storage.cache import CacheDecision
from repro.storage.device import IOResult
from repro.storage.lru import LRUCache, LRUEntry
from repro.storage.policies import CacheEntry, ClockPolicy, TwoQPolicy


def assert_slotted(obj):
    assert not hasattr(obj, "__dict__"), (
        f"{type(obj).__qualname__} instances carry a __dict__; "
        "hot-path classes must declare __slots__ in every class of "
        "their MRO"
    )


def test_kernel_event_objects_have_no_dict():
    env = Environment()
    assert_slotted(env)
    assert_slotted(Event(env))
    assert_slotted(env.timeout(1.0))        # inlined fast constructor
    assert_slotted(Timeout(env, 1.0))       # compatibility constructor

    def gen(env):
        yield env.timeout(1.0)

    assert_slotted(env.process(gen(env)))
    assert isinstance(env.process(gen(env)), Process)


def test_resource_requests_have_no_dict():
    env = Environment()
    res = Resource(env, capacity=1)
    fast = res.request()                    # synchronous fast grant
    assert fast.processed
    assert_slotted(fast)
    queued = res.request()                  # FIFO-queued request
    assert not queued.triggered
    assert_slotted(queued)
    assert isinstance(fast, Request) and isinstance(queued, Request)
    assert_slotted(res)
    assert_slotted(res.monitor)
    store = Store(env)
    assert_slotted(store.get())             # _StoreGet


def test_transaction_records_have_no_dict():
    ref = ObjectRef(0, 1, 2, True, tag="ACCOUNT")
    assert_slotted(ref)
    assert_slotted(Transaction(1, "t", [ref]))


def test_policy_entries_have_no_dict():
    lru = LRUCache(4)
    assert_slotted(lru.insert((0, 1)))
    assert isinstance(lru.insert((0, 2)), LRUEntry)
    assert_slotted(ClockPolicy(4).insert((0, 1)))
    assert_slotted(TwoQPolicy(4).insert((0, 1)))
    assert_slotted(CacheEntry((0, 1)))


def test_io_records_have_no_dict():
    assert_slotted(IOResult("disk", 0.016))
    assert_slotted(CacheDecision(hit=True, needs_disk=False))


def test_statistics_objects_have_no_dict():
    env = Environment()
    assert_slotted(Accumulator(reservoir=8))
    assert_slotted(TimeWeighted(env))
    assert_slotted(CategoryCounter())


def test_lock_waiter_has_no_dict():
    from repro.core.cc import _Lock, _Waiter

    env = Environment()
    tx = Transaction(1, "t", [])
    assert_slotted(_Waiter(tx, 0, Event(env), False))
    assert_slotted(_Lock())


def test_configs_are_allowed_a_dict():
    """Sanity check of the guard itself: per-system configuration
    objects are *not* hot-path and legitimately carry a __dict__."""
    assert hasattr(CMConfig(), "__dict__") or True  # dataclass may slot
    with pytest.raises(AssertionError):
        class Unslotted:
            pass

        assert_slotted(Unslotted())


def test_disk_unit_config_smoke():
    # Exercise one registry config to keep the import graph honest.
    cfg = DiskUnitConfig(name="u0")
    assert cfg.name == "u0"
