"""Unit tests for system wiring and the run harness (repro.core.model)."""

import pytest

from repro.core.config import (
    CMConfig,
    LogAllocation,
    NVEM,
    NVEMConfig,
    PartitionConfig,
    SystemConfig,
)
from repro.core.model import TransactionSystem
from repro.workload.debit_credit import DebitCreditWorkload
from repro.workload.base import PoissonArrivals
from repro.core.transaction import ObjectRef, Transaction


def nvem_config(mpl=50, buffer_size=64):
    config = SystemConfig(
        partitions=[PartitionConfig("p0", num_objects=1000,
                                    block_factor=10, allocation=NVEM)],
        disk_units=[],
        nvem=NVEMConfig(),
        cm=CMConfig(mpl=mpl, buffer_size=buffer_size),
        log=LogAllocation(device=NVEM),
    )
    config.validate()
    return config


class SimpleWorkload:
    """Minimal workload: fixed-size update transactions at `rate` TPS."""

    def __init__(self, rate=100.0):
        self.rate = rate
        self.prewarmed = False
        self._counter = 0

    def _factory(self, _n):
        self._counter += 1
        page = self._counter % 100
        return Transaction(self._counter, "simple",
                           [ObjectRef(0, page * 10, page, True)])

    def prewarm(self, system):
        self.prewarmed = True

    def start(self, system):
        PoissonArrivals(self.rate, self._factory).start(system)


class TestRunHarness:
    def test_run_produces_results(self):
        system = TransactionSystem(nvem_config(), SimpleWorkload())
        results = system.run(warmup=1.0, duration=3.0)
        assert results.committed > 100
        assert results.throughput == pytest.approx(100, rel=0.2)
        assert results.simulated_time == pytest.approx(3.0)

    def test_prewarm_hook_called(self):
        workload = SimpleWorkload()
        system = TransactionSystem(nvem_config(), workload)
        system.run(warmup=0.5, duration=1.0)
        assert workload.prewarmed

    def test_warmup_discards_measurements(self):
        system = TransactionSystem(nvem_config(), SimpleWorkload())
        results = system.run(warmup=2.0, duration=2.0)
        # Throughput computed over the measurement window only.
        assert results.committed == pytest.approx(200, rel=0.25)

    def test_zero_warmup_allowed(self):
        system = TransactionSystem(nvem_config(), SimpleWorkload())
        results = system.run(warmup=0.0, duration=2.0)
        assert results.committed > 0

    def test_invalid_durations_rejected(self):
        system = TransactionSystem(nvem_config(), SimpleWorkload())
        with pytest.raises(ValueError):
            system.run(warmup=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            system.run(warmup=1.0, duration=0.0)

    def test_saturation_guard_flags_overload(self):
        # MPL 2 with 1000 TPS of work: the input queue diverges.
        system = TransactionSystem(nvem_config(mpl=2),
                                   SimpleWorkload(rate=5000.0))
        results = system.run(warmup=0.5, duration=5.0,
                             saturation_queue_limit=50)
        assert results.saturated

    def test_run_for_commits(self):
        system = TransactionSystem(nvem_config(), SimpleWorkload())
        results = system.run_for_commits(commits=50, warmup_commits=10)
        assert results.committed >= 50

    def test_snapshot_without_run(self):
        system = TransactionSystem(nvem_config(), SimpleWorkload())
        results = system.snapshot()
        assert results.committed == 0

    def test_config_validated_at_construction(self):
        config = nvem_config()
        config.partitions = []
        with pytest.raises(ValueError):
            TransactionSystem(config, SimpleWorkload())

    def test_seed_override(self):
        a = TransactionSystem(nvem_config(), SimpleWorkload(), seed=5)
        b = TransactionSystem(nvem_config(), SimpleWorkload(), seed=5)
        ra = a.run(warmup=0.5, duration=1.5)
        rb = b.run(warmup=0.5, duration=1.5)
        assert ra.committed == rb.committed

    def test_debit_credit_smoke(self):
        from repro.experiments.defaults import debit_credit_config, disk_only
        config = debit_credit_config(disk_only())
        system = TransactionSystem(config,
                                   DebitCreditWorkload(arrival_rate=50))
        results = system.run(warmup=1.0, duration=3.0)
        assert results.committed > 50
        assert not results.saturated
