"""Unit tests for the buffer manager (repro.core.bm)."""

import pytest

from repro.core.bm import BufferManager
from repro.core.config import (
    CMConfig,
    DiskUnitConfig,
    DiskUnitType,
    LogAllocation,
    MEMORY,
    NVEM,
    NVEMCachingMode,
    NVEMConfig,
    PartitionConfig,
    SystemConfig,
    UpdateStrategy,
)
from repro.core.cpu import CPUPool
from repro.core.metrics import MetricsCollector
from repro.core.transaction import ObjectRef, Transaction
from repro.sim import Environment, RandomStreams
from repro.storage.hierarchy import StorageSubsystem

CTRL = 0.001
TRANS = 0.0004
DISK = 0.015


def build_system(buffer_size=4,
                 update_strategy=UpdateStrategy.NOFORCE,
                 nvem_caching=NVEMCachingMode.NONE,
                 nvem_cache_size=0,
                 nvem_write_buffer=False,
                 nvem_write_buffer_size=0,
                 allocation="db0",
                 log_device="log0",
                 log_nvem_wb=False,
                 unit_type=DiskUnitType.REGULAR,
                 cache_size=0,
                 **cm_overrides):
    partitions = [
        PartitionConfig("main", num_objects=10_000, block_factor=1,
                        allocation=allocation, nvem_caching=nvem_caching,
                        nvem_write_buffer=nvem_write_buffer),
        PartitionConfig("other", num_objects=10_000, block_factor=1,
                        allocation=allocation, nvem_caching=nvem_caching,
                        nvem_write_buffer=nvem_write_buffer),
    ]
    units = []
    if allocation == "db0" or log_device == "log0":
        units.append(DiskUnitConfig(
            name="db0", unit_type=unit_type, num_controllers=4,
            controller_delay=CTRL, trans_delay=TRANS,
            num_disks=8, disk_delay=DISK, cache_size=cache_size,
        ))
    if log_device == "log0" and not units:
        pass
    if log_device == "log0":
        log_target = "db0"
    else:
        log_target = log_device
    cm = CMConfig(buffer_size=buffer_size, update_strategy=update_strategy,
                  nvem_cache_size=nvem_cache_size,
                  nvem_write_buffer_size=nvem_write_buffer_size,
                  num_cpus=4, mips=50.0)
    for key, value in cm_overrides.items():
        setattr(cm, key, value)
    config = SystemConfig(
        partitions=partitions,
        disk_units=units,
        nvem=NVEMConfig(),
        cm=cm,
        log=LogAllocation(device=log_target, nvem_write_buffer=log_nvem_wb),
    )
    config.validate()
    env = Environment()
    streams = RandomStreams(3)
    metrics = MetricsCollector(env)
    storage = StorageSubsystem(env, streams, config)
    cpu = CPUPool(env, streams, config.cm)
    bm = BufferManager(env, streams, config, cpu, storage, metrics)
    return env, bm, metrics, storage


def ref(page, write=False, partition=0):
    return ObjectRef(partition, page, page, write)


def fix(env, bm, tx, reference):
    """Run one fix_page to completion and return the level."""
    return env.run(until=env.process(bm.fix_page(tx, reference)))


def make_tx(tx_id=1, update=True):
    """A bare transaction; ``is_update`` normally derives from the refs
    (empty here), so it is set explicitly for commit/logging tests."""
    tx = Transaction(tx_id, "t", [])
    tx.is_update = update
    return tx


class TestFixPage:
    def test_miss_then_hit(self):
        env, bm, metrics, _ = build_system()
        tx = make_tx()
        assert fix(env, bm, tx, ref(1)) == "disk"
        assert fix(env, bm, tx, ref(1)) == "main_memory"
        assert metrics.page_access.get("main_memory") == 1
        assert metrics.page_access.get("disk") == 1

    def test_miss_pays_io_latency(self):
        env, bm, _, _ = build_system()
        tx = make_tx()
        start = env.now
        fix(env, bm, tx, ref(1))
        # instr_io CPU (0.06 ms) + ctrl + disk + trans = ~16.46 ms
        assert env.now - start == pytest.approx(0.01646, abs=1e-4)

    def test_write_marks_dirty_and_tracks_modified(self):
        env, bm, _, _ = build_system()
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        assert (0, 1) in tx.modified_pages
        assert bm.mm.peek((0, 1)).dirty

    def test_read_does_not_mark_dirty(self):
        env, bm, _, _ = build_system()
        tx = make_tx()
        fix(env, bm, tx, ref(1))
        assert not bm.mm.peek((0, 1)).dirty
        assert not tx.modified_pages

    def test_memory_resident_access_is_free(self):
        env, bm, metrics, _ = build_system(allocation=MEMORY,
                                           log_device=NVEM)
        tx = make_tx()
        start = env.now
        level = fix(env, bm, tx, ref(1, write=True))
        assert level == "memory_resident"
        assert env.now == start  # no time passes
        assert not tx.modified_pages  # NOFORCE assumed for resident data
        assert len(bm.mm) == 0

    def test_nvem_resident_miss(self):
        env, bm, metrics, _ = build_system(allocation=NVEM,
                                           log_device=NVEM)
        tx = make_tx()
        level = fix(env, bm, tx, ref(1))
        assert level == "nvem"
        # instr_nvem (6 us) + 50 us NVEM access
        assert env.now == pytest.approx(56e-6, abs=5e-6)
        # Page is now buffered in main memory.
        assert fix(env, bm, tx, ref(1)) == "main_memory"

    def test_eviction_writes_back_dirty_page(self):
        env, bm, metrics, _ = build_system(buffer_size=2)
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        fix(env, bm, tx, ref(2, write=True))
        fix(env, bm, tx, ref(3, write=True))  # evicts page 1 (dirty)
        assert (0, 1) not in bm.mm
        assert (0, 3) in bm.mm
        assert metrics.io_counts.get("db_write_sync") == 1

    def test_eviction_of_clean_page_is_silent(self):
        env, bm, metrics, _ = build_system(buffer_size=2)
        tx = make_tx()
        fix(env, bm, tx, ref(1))
        fix(env, bm, tx, ref(2))
        fix(env, bm, tx, ref(3))
        assert metrics.io_counts.get("db_write_sync") == 0
        assert metrics.io_counts.get("db_read") == 3

    def test_lru_eviction_order(self):
        env, bm, _, _ = build_system(buffer_size=2)
        tx = make_tx()
        fix(env, bm, tx, ref(1))
        fix(env, bm, tx, ref(2))
        fix(env, bm, tx, ref(1))  # promote page 1
        fix(env, bm, tx, ref(3))  # evicts page 2
        assert (0, 1) in bm.mm
        assert (0, 2) not in bm.mm

    def test_concurrent_miss_same_page_single_read(self):
        """TPSIM bookkeeping: one miss per page, concurrent access hits."""
        env, bm, metrics, _ = build_system()
        levels = []

        def proc(env, tx):
            level = yield from bm.fix_page(tx, ref(7))
            levels.append(level)

        env.process(proc(env, make_tx(1)))
        env.process(proc(env, make_tx(2)))
        env.run()
        assert sorted(levels) == ["disk", "main_memory"]
        assert metrics.io_counts.get("db_read") == 1


class TestCommitNoforce:
    def test_commit_writes_one_log_page(self):
        env, bm, metrics, _ = build_system()
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        env.run(until=env.process(bm.commit(tx)))
        assert metrics.io_counts.get("log_disk") == 1
        # NOFORCE: the modified page stays dirty in the buffer.
        assert bm.mm.peek((0, 1)).dirty

    def test_read_only_tx_writes_no_log(self):
        env, bm, metrics, _ = build_system()
        tx = make_tx(update=False)
        fix(env, bm, tx, ref(1))
        env.run(until=env.process(bm.commit(tx)))
        assert metrics.io_counts.get("log_disk") == 0

    def test_logging_disabled(self):
        env, bm, metrics, _ = build_system(logging=False)
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        env.run(until=env.process(bm.commit(tx)))
        assert metrics.io_counts.total() == 1  # just the read


class TestCommitForce:
    def test_force_writes_modified_pages_and_keeps_them_clean(self):
        env, bm, metrics, _ = build_system(
            update_strategy=UpdateStrategy.FORCE
        )
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        fix(env, bm, tx, ref(2, write=True))
        env.run(until=env.process(bm.commit(tx)))
        assert metrics.io_counts.get("db_write_sync") == 2
        assert metrics.io_counts.get("log_disk") == 1
        # Forced pages remain buffered, now clean.
        assert (0, 1) in bm.mm and not bm.mm.peek((0, 1)).dirty
        assert (0, 2) in bm.mm and not bm.mm.peek((0, 2)).dirty

    def test_force_skips_already_evicted_pages(self):
        env, bm, metrics, _ = build_system(
            buffer_size=2, update_strategy=UpdateStrategy.FORCE
        )
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        fix(env, bm, tx, ref(2, write=True))
        fix(env, bm, tx, ref(3, write=True))  # page 1 evicted + written
        env.run(until=env.process(bm.commit(tx)))
        # Page 1 was written at eviction; commit forces only 2 and 3.
        assert metrics.io_counts.get("db_write_sync") == 3


class TestNVEMCache:
    def build(self, mode=NVEMCachingMode.ALL, strategy=UpdateStrategy.NOFORCE,
              buffer_size=2, cache_size=4):
        return build_system(buffer_size=buffer_size,
                            update_strategy=strategy,
                            nvem_caching=mode,
                            nvem_cache_size=cache_size)

    def test_dirty_eviction_migrates_to_nvem(self):
        env, bm, metrics, _ = self.build()
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        fix(env, bm, tx, ref(2, write=True))
        fix(env, bm, tx, ref(3, write=True))
        # Page 1 migrated into NVEM; its asynchronous disk write was
        # started immediately (it completes within the 16.5 ms that the
        # page-3 read takes, so the entry is already clean here).
        assert (0, 1) in bm.nvem_cache
        env.run()
        assert not bm.nvem_cache.peek((0, 1)).dirty
        assert metrics.io_counts.get("db_write_async") == 1
        # No synchronous disk write was charged to the transaction.
        assert metrics.io_counts.get("db_write_sync") == 0

    def test_clean_eviction_migrates_under_all_mode(self):
        env, bm, _, _ = self.build(mode=NVEMCachingMode.ALL)
        tx = make_tx()
        fix(env, bm, tx, ref(1))
        fix(env, bm, tx, ref(2))
        fix(env, bm, tx, ref(3))
        assert (0, 1) in bm.nvem_cache
        assert not bm.nvem_cache.peek((0, 1)).dirty

    def test_clean_eviction_dropped_under_modified_mode(self):
        env, bm, _, _ = self.build(mode=NVEMCachingMode.MODIFIED)
        tx = make_tx()
        fix(env, bm, tx, ref(1))
        fix(env, bm, tx, ref(2))
        fix(env, bm, tx, ref(3))
        assert (0, 1) not in bm.nvem_cache

    def test_dirty_eviction_to_disk_under_unmodified_mode(self):
        env, bm, metrics, _ = self.build(mode=NVEMCachingMode.UNMODIFIED)
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        fix(env, bm, tx, ref(2))
        fix(env, bm, tx, ref(3))
        assert (0, 1) not in bm.nvem_cache
        assert metrics.io_counts.get("db_write_sync") == 1

    def test_noforce_single_copy_invariant_on_nvem_hit(self):
        env, bm, metrics, _ = self.build()
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        fix(env, bm, tx, ref(2))
        fix(env, bm, tx, ref(3))  # page 1 -> NVEM
        assert (0, 1) in bm.nvem_cache
        level = fix(env, bm, tx, ref(1))  # NVEM hit -> back to MM
        assert level == "nvem_cache"
        assert (0, 1) in bm.mm
        assert (0, 1) not in bm.nvem_cache
        assert not bm.check_invariants()

    def test_force_keeps_nvem_copy_on_hit(self):
        env, bm, _, _ = self.build(strategy=UpdateStrategy.FORCE)
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        env.run(until=env.process(bm.commit(tx)))  # forces page 1 to NVEM
        assert (0, 1) in bm.nvem_cache
        # Evict page 1 from MM (clean now, migrates under ALL).
        fix(env, bm, tx, ref(2))
        fix(env, bm, tx, ref(3))
        # Re-read: NVEM hit, and FORCE keeps the NVEM copy (replication).
        level = fix(env, bm, tx, ref(1))
        assert level == "nvem_cache"
        assert (0, 1) in bm.nvem_cache

    def test_force_commit_writes_into_nvem(self):
        env, bm, metrics, _ = self.build(strategy=UpdateStrategy.FORCE)
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        env.run(until=env.process(bm.commit(tx)))
        # Page forced to NVEM, still in MM: the double-caching effect.
        assert (0, 1) in bm.nvem_cache
        assert (0, 1) in bm.mm
        assert metrics.io_counts.get("nvem_cache_write") == 1

    def test_nvem_cache_eviction_prefers_clean(self):
        env, bm, _, _ = self.build(cache_size=2)
        tx = make_tx()
        # Fill NVEM cache with clean pages 1, 2 (read then evicted).
        for page in (1, 2, 3, 4):
            fix(env, bm, tx, ref(page))
        env.run()  # drain any async writes
        assert len(bm.nvem_cache) == 2  # pages 1 and 2
        # Evicting one more migrates page 3, displacing LRU clean page 1.
        fix(env, bm, tx, ref(5))
        assert (0, 1) not in bm.nvem_cache
        assert (0, 2) in bm.nvem_cache

    def test_combined_hit_ratio_equals_aggregate_buffer(self):
        """NOFORCE: MM+NVEM behave like one buffer of aggregate size."""
        env, bm, _, _ = self.build(buffer_size=2, cache_size=2)
        tx = make_tx()
        for page in (1, 2, 3, 4):
            fix(env, bm, tx, ref(page))
        # Aggregate LRU of size 4 holds pages 1..4: all should hit
        # (2 in MM, 2 in NVEM).
        levels = [fix(env, bm, tx, ref(p)) for p in (1, 2)]
        assert set(levels) <= {"main_memory", "nvem_cache"}


class TestNVEMWriteBuffer:
    def build(self, wb_size=2):
        return build_system(buffer_size=2, nvem_write_buffer=True,
                            nvem_write_buffer_size=wb_size)

    def test_write_back_absorbed(self):
        env, bm, metrics, _ = self.build()
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        fix(env, bm, tx, ref(2, write=True))
        start = env.now
        fix(env, bm, tx, ref(3, write=True))  # evict 1 -> NVEM WB
        assert metrics.io_counts.get("db_write_buffered") == 1
        # Eviction cost ~ NVEM speed, not disk speed: total under 18 ms
        # (the read itself is 16.5 ms).
        assert env.now - start < 0.018
        env.run()
        assert bm.write_buffer_pending() == 0
        assert metrics.io_counts.get("db_write_async") == 1

    def test_saturated_buffer_falls_through_to_disk(self):
        """With one slot, two simultaneous evictions cannot both be
        absorbed: the second write goes synchronously to disk."""
        env, bm, metrics, _ = self.build(wb_size=1)
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        fix(env, bm, tx, ref(2, write=True))

        def misser(env, page):
            yield from bm.fix_page(make_tx(page), ref(page, write=True))

        env.process(misser(env, 3))  # evicts page 1 -> absorbed
        env.process(misser(env, 4))  # evicts page 2 -> slot busy
        env.run()
        assert metrics.io_counts.get("db_write_buffered") == 1
        assert metrics.io_counts.get("db_write_sync") == 1


class TestLogging:
    def test_log_to_nvem(self):
        env, bm, metrics, _ = build_system(log_device=NVEM)
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        t0 = env.now
        env.run(until=env.process(bm.commit(tx)))
        assert metrics.io_counts.get("log_nvem") == 1
        assert env.now - t0 < 1e-3  # NVEM speed

    def test_log_nvem_write_buffer(self):
        env, bm, metrics, _ = build_system(log_nvem_wb=True,
                                           nvem_write_buffer_size=4)
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        env.run(until=env.process(bm.commit(tx)))
        assert metrics.io_counts.get("log_buffered") == 1
        env.run()
        assert metrics.io_counts.get("log_async") == 1

    def test_log_pages_are_sequential(self):
        env, bm, _, storage = build_system()
        first = storage.next_log_page()
        second = storage.next_log_page()
        assert second == first + 1


class TestGroupCommit:
    def test_group_commit_batches_log_writes(self):
        env, bm, metrics, _ = build_system(group_commit_size=3,
                                           group_commit_timeout=0.1)
        done = []

        def committer(env, tx_id):
            tx = make_tx(tx_id)
            yield from bm.fix_page(tx, ref(tx_id, write=True))
            yield from bm.commit(tx)
            done.append(env.now)

        for tx_id in (1, 2, 3):
            env.process(committer(env, tx_id))
        env.run()
        assert len(done) == 3
        assert metrics.io_counts.get("group_commits") == 1
        assert metrics.io_counts.get("log_disk") == 1

    def test_group_commit_timeout_flushes_partial_group(self):
        env, bm, metrics, _ = build_system(group_commit_size=10,
                                           group_commit_timeout=0.01)
        def committer(env):
            tx = make_tx(1)
            yield from bm.fix_page(tx, ref(1, write=True))
            yield from bm.commit(tx)
            return env.now

        finished = env.run(until=env.process(committer(env)))
        assert metrics.io_counts.get("group_commits") == 1
        assert finished >= 0.01  # waited for the timeout


class TestAsyncReplacement:
    def test_async_replacement_frees_tx_from_write(self):
        env, bm, metrics, _ = build_system(buffer_size=2,
                                           async_replacement=True)
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        fix(env, bm, tx, ref(2, write=True))
        t0 = env.now
        fix(env, bm, tx, ref(3, write=True))
        # Only the read is synchronous: ~16.5 ms, not ~33 ms.
        assert env.now - t0 < 0.020
        env.run()
        assert metrics.io_counts.get("db_write_async") >= 1


class TestDeferredPropagation:
    def test_dirty_page_in_nvem_has_no_pending_write(self):
        env, bm, metrics, _ = build_system(
            buffer_size=2, nvem_caching=NVEMCachingMode.ALL,
            nvem_cache_size=4, deferred_nvem_propagation=True,
        )
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        fix(env, bm, tx, ref(2))
        fix(env, bm, tx, ref(3))  # page 1 -> NVEM, dirty, deferred
        entry = bm.nvem_cache.peek((0, 1))
        assert entry.dirty
        assert entry.pending_write is None
        env.run()
        assert metrics.io_counts.get("db_write_async") == 0

    def test_deferred_dirty_page_carried_back_to_mm(self):
        env, bm, _, _ = build_system(
            buffer_size=2, nvem_caching=NVEMCachingMode.ALL,
            nvem_cache_size=4, deferred_nvem_propagation=True,
        )
        tx = make_tx()
        fix(env, bm, tx, ref(1, write=True))
        fix(env, bm, tx, ref(2))
        fix(env, bm, tx, ref(3))  # page 1 -> NVEM, dirty
        fix(env, bm, tx, ref(1))  # NVEM hit moves it back to MM
        # The modification must not be lost.
        assert bm.mm.peek((0, 1)).dirty


class TestPrewarm:
    def test_prewarm_fills_buffer_without_time(self):
        env, bm, _, _ = build_system(buffer_size=3)
        for page in (1, 2, 3, 4):
            bm.prewarm_reference(0, page, False)
        assert env.now == 0.0
        assert len(bm.mm) == 3
        assert (0, 1) not in bm.mm  # LRU displaced silently

    def test_prewarm_respects_force_cleanliness(self):
        env, bm, _, _ = build_system(update_strategy=UpdateStrategy.FORCE)
        bm.prewarm_reference(0, 1, True)
        assert not bm.mm.peek((0, 1)).dirty

    def test_prewarm_marks_dirty_under_noforce(self):
        env, bm, _, _ = build_system()
        bm.prewarm_reference(0, 1, True)
        assert bm.mm.peek((0, 1)).dirty

    def test_prewarm_populates_nvem_cache(self):
        env, bm, _, _ = build_system(buffer_size=2,
                                     nvem_caching=NVEMCachingMode.ALL,
                                     nvem_cache_size=4)
        for page in (1, 2, 3, 4):
            bm.prewarm_reference(0, page, False)
        assert len(bm.nvem_cache) == 2  # displaced pages 1 and 2
        assert not bm.check_invariants()

    def test_prewarm_populates_disk_cache(self):
        env, bm, _, storage = build_system(
            unit_type=DiskUnitType.VOLATILE_CACHE, cache_size=8,
            buffer_size=2,
        )
        for page in (1, 2, 3):
            bm.prewarm_reference(0, page, False)
        unit = storage.units["db0"]
        assert len(unit.cache.lru) == 3


class TestInvariants:
    def test_clean_system_has_no_violations(self):
        env, bm, _, _ = build_system()
        assert bm.check_invariants() == []

    def test_invariants_after_mixed_workload(self):
        env, bm, _, _ = build_system(buffer_size=3,
                                     nvem_caching=NVEMCachingMode.ALL,
                                     nvem_cache_size=3)
        tx = make_tx()
        for page in (1, 2, 3, 4, 5, 1, 2, 6, 3, 7):
            fix(env, bm, tx, ref(page, write=page % 2 == 0))
        env.run()
        assert bm.check_invariants() == []
