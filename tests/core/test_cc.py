"""Unit tests for the lock manager (repro.core.cc)."""

import pytest

from repro.core.cc import LockManager, LockMode, LockOutcome
from repro.core.metrics import MetricsCollector
from repro.core.transaction import Transaction
from repro.sim import Environment


def make_tx(tx_id: int) -> Transaction:
    return Transaction(tx_id, "test", [])


def setup():
    env = Environment()
    metrics = MetricsCollector(env)
    locks = LockManager(env, metrics)
    return env, metrics, locks


def acquire_now(env, locks, tx, rid, mode):
    """Drive an acquire that is expected to complete immediately."""
    return env.run(until=env.process(locks.acquire(tx, rid, mode)))


class TestBasicLocking:
    def test_grant_free_lock(self):
        env, _, locks = setup()
        tx = make_tx(1)
        assert acquire_now(env, locks, tx, "r1", LockMode.X) is \
            LockOutcome.GRANTED
        assert tx.held_locks["r1"] is LockMode.X

    def test_shared_locks_compatible(self):
        env, _, locks = setup()
        tx1, tx2 = make_tx(1), make_tx(2)
        assert acquire_now(env, locks, tx1, "r", LockMode.S) is \
            LockOutcome.GRANTED
        assert acquire_now(env, locks, tx2, "r", LockMode.S) is \
            LockOutcome.GRANTED

    def test_exclusive_blocks_shared(self):
        env, _, locks = setup()
        tx1, tx2 = make_tx(1), make_tx(2)
        log = []

        def holder(env):
            yield from locks.acquire(tx1, "r", LockMode.X)
            yield env.timeout(5.0)
            locks.release_all(tx1)

        def waiter(env):
            yield env.timeout(1.0)
            outcome = yield from locks.acquire(tx2, "r", LockMode.S)
            log.append((env.now, outcome))

        env.process(holder(env))
        env.process(waiter(env))
        env.run()
        assert log == [(5.0, LockOutcome.GRANTED)]
        assert tx2.wait_lock == pytest.approx(4.0)

    def test_reacquire_same_lock_is_noop(self):
        env, _, locks = setup()
        tx = make_tx(1)
        acquire_now(env, locks, tx, "r", LockMode.X)
        assert acquire_now(env, locks, tx, "r", LockMode.S) is \
            LockOutcome.GRANTED
        assert tx.held_locks["r"] is LockMode.X

    def test_fifo_wait_queue(self):
        env, _, locks = setup()
        order = []
        holder = make_tx(0)

        def hold(env):
            yield from locks.acquire(holder, "r", LockMode.X)
            yield env.timeout(5.0)
            locks.release_all(holder)

        def waiter(env, tx, delay):
            yield env.timeout(delay)
            yield from locks.acquire(tx, "r", LockMode.X)
            order.append(tx.tx_id)
            locks.release_all(tx)

        env.process(hold(env))
        for i, delay in ((1, 1.0), (2, 2.0), (3, 3.0)):
            env.process(waiter(env, make_tx(i), delay))
        env.run()
        assert order == [1, 2, 3]

    def test_shared_batch_granted_together(self):
        env, _, locks = setup()
        granted_at = []
        holder = make_tx(0)

        def hold(env):
            yield from locks.acquire(holder, "r", LockMode.X)
            yield env.timeout(5.0)
            locks.release_all(holder)

        def reader(env, tx):
            yield env.timeout(1.0)
            yield from locks.acquire(tx, "r", LockMode.S)
            granted_at.append(env.now)

        env.process(hold(env))
        env.process(reader(env, make_tx(1)))
        env.process(reader(env, make_tx(2)))
        env.run()
        assert granted_at == [5.0, 5.0]


class TestConversions:
    def test_upgrade_sole_holder(self):
        env, _, locks = setup()
        tx = make_tx(1)
        acquire_now(env, locks, tx, "r", LockMode.S)
        assert acquire_now(env, locks, tx, "r", LockMode.X) is \
            LockOutcome.GRANTED
        assert tx.held_locks["r"] is LockMode.X

    def test_upgrade_waits_for_other_readers(self):
        env, _, locks = setup()
        tx1, tx2 = make_tx(1), make_tx(2)
        log = []

        def reader(env):
            yield from locks.acquire(tx2, "r", LockMode.S)
            yield env.timeout(3.0)
            locks.release_all(tx2)

        def upgrader(env):
            yield from locks.acquire(tx1, "r", LockMode.S)
            yield env.timeout(1.0)
            outcome = yield from locks.acquire(tx1, "r", LockMode.X)
            log.append((env.now, outcome))

        env.process(reader(env))
        env.process(upgrader(env))
        env.run()
        assert log == [(3.0, LockOutcome.GRANTED)]

    def test_conversion_deadlock_detected(self):
        """Two S holders both upgrading -> classic conversion deadlock."""
        env, metrics, locks = setup()
        tx1, tx2 = make_tx(1), make_tx(2)
        outcomes = {}

        def upgrader(env, tx, delay):
            yield from locks.acquire(tx, "r", LockMode.S)
            yield env.timeout(delay)
            outcome = yield from locks.acquire(tx, "r", LockMode.X)
            outcomes[tx.tx_id] = (env.now, outcome)
            if outcome is LockOutcome.DEADLOCK:
                locks.release_all(tx)
            else:
                yield env.timeout(1.0)
                locks.release_all(tx)

        env.process(upgrader(env, tx1, 1.0))
        env.process(upgrader(env, tx2, 2.0))
        env.run()
        # tx2's upgrade request at t=2 closes the cycle and is denied.
        assert outcomes[2][1] is LockOutcome.DEADLOCK
        assert outcomes[1][1] is LockOutcome.GRANTED
        assert metrics.lock_counts.get("deadlocks") == 1


class TestDeadlockDetection:
    def test_two_transaction_cycle(self):
        env, metrics, locks = setup()
        tx1, tx2 = make_tx(1), make_tx(2)
        outcomes = {}

        def proc(env, tx, first, second, delay):
            yield from locks.acquire(tx, first, LockMode.X)
            yield env.timeout(delay)
            outcome = yield from locks.acquire(tx, second, LockMode.X)
            outcomes[tx.tx_id] = outcome
            locks.release_all(tx)

        env.process(proc(env, tx1, "a", "b", 1.0))
        env.process(proc(env, tx2, "b", "a", 2.0))
        env.run()
        # tx2 requests "a" at t=2 while tx1 waits for "b": cycle.
        assert outcomes[2] is LockOutcome.DEADLOCK
        assert outcomes[1] is LockOutcome.GRANTED

    def test_three_transaction_cycle(self):
        env, metrics, locks = setup()
        outcomes = {}

        def proc(env, tx, first, second, delay):
            yield from locks.acquire(tx, first, LockMode.X)
            yield env.timeout(delay)
            outcome = yield from locks.acquire(tx, second, LockMode.X)
            outcomes[tx.tx_id] = outcome
            if outcome is LockOutcome.GRANTED:
                yield env.timeout(0.5)
            locks.release_all(tx)

        env.process(proc(env, make_tx(1), "a", "b", 1.0))
        env.process(proc(env, make_tx(2), "b", "c", 1.5))
        env.process(proc(env, make_tx(3), "c", "a", 2.0))
        env.run()
        assert outcomes[3] is LockOutcome.DEADLOCK
        assert outcomes[1] is LockOutcome.GRANTED
        assert outcomes[2] is LockOutcome.GRANTED

    def test_no_false_deadlock_on_chain(self):
        """A waits-for chain without a cycle must not abort anyone."""
        env, _, locks = setup()
        outcomes = []

        def proc(env, tx, rid, hold, delay):
            yield env.timeout(delay)
            outcome = yield from locks.acquire(tx, rid, LockMode.X)
            outcomes.append(outcome)
            yield env.timeout(hold)
            locks.release_all(tx)

        env.process(proc(env, make_tx(1), "r", 2.0, 0.0))
        env.process(proc(env, make_tx(2), "r", 2.0, 0.5))
        env.process(proc(env, make_tx(3), "r", 2.0, 1.0))
        env.run()
        assert outcomes == [LockOutcome.GRANTED] * 3

    def test_youngest_victim_policy(self):
        env = Environment()
        metrics = MetricsCollector(env)
        locks = LockManager(env, metrics, victim_policy="youngest")
        outcomes = {}
        tx1, tx2 = make_tx(1), make_tx(2)
        tx1.start_time = 0.0
        tx2.start_time = 1.0  # younger

        def proc(env, tx, first, second, delay):
            yield from locks.acquire(tx, first, LockMode.X)
            yield env.timeout(delay)
            outcome = yield from locks.acquire(tx, second, LockMode.X)
            outcomes[tx.tx_id] = outcome
            if outcome is LockOutcome.GRANTED:
                yield env.timeout(0.5)
            locks.release_all(tx)

        # tx2 (young) waits first; tx1 (old) then closes the cycle.
        env.process(proc(env, tx2, "b", "a", 1.0))
        env.process(proc(env, tx1, "a", "b", 2.0))
        env.run()
        # The youngest (tx2) is the victim even though tx1 requested.
        assert outcomes[2] is LockOutcome.DEADLOCK
        assert outcomes[1] is LockOutcome.GRANTED

    def test_invalid_victim_policy(self):
        env = Environment()
        with pytest.raises(ValueError):
            LockManager(env, MetricsCollector(env), victim_policy="coin")


class TestReleaseAll:
    def test_release_clears_state(self):
        env, _, locks = setup()
        tx = make_tx(1)
        acquire_now(env, locks, tx, "a", LockMode.S)
        acquire_now(env, locks, tx, "b", LockMode.X)
        locks.release_all(tx)
        assert not tx.held_locks
        assert locks.held_count() == 0

    def test_release_grants_waiters(self):
        env, _, locks = setup()
        tx1, tx2 = make_tx(1), make_tx(2)
        log = []

        def holder(env):
            yield from locks.acquire(tx1, "r", LockMode.X)
            yield env.timeout(2.0)
            locks.release_all(tx1)

        def waiter(env):
            yield env.timeout(0.5)
            yield from locks.acquire(tx2, "r", LockMode.X)
            log.append(env.now)

        env.process(holder(env))
        env.process(waiter(env))
        env.run()
        assert log == [2.0]

    def test_lock_table_garbage_collected(self):
        env, _, locks = setup()
        tx = make_tx(1)
        acquire_now(env, locks, tx, "r", LockMode.X)
        locks.release_all(tx)
        assert len(locks._locks) == 0


class TestMetricsIntegration:
    def test_conflict_counting(self):
        env, metrics, locks = setup()
        tx1, tx2 = make_tx(1), make_tx(2)

        def holder(env):
            yield from locks.acquire(tx1, "r", LockMode.X)
            yield env.timeout(2.0)
            locks.release_all(tx1)

        def waiter(env):
            yield env.timeout(1.0)
            yield from locks.acquire(tx2, "r", LockMode.X)
            locks.release_all(tx2)

        env.process(holder(env))
        env.process(waiter(env))
        env.run()
        assert metrics.lock_counts.get("requests") == 2
        assert metrics.lock_counts.get("conflicts") == 1
        assert metrics.lock_wait.count == 1
