"""Union accounting for outage and degraded windows.

Overlapping down-intervals (two nodes down at once, a media rebuild
spanning a crash) must charge the wall-clock once — availability can
never go negative because two outages overlapped.
"""

import pytest

from repro.core.metrics import MetricsCollector
from repro.recovery.crash import RestartStats
from repro.sim import Environment


def run_script(steps):
    """Drive a collector through ``(at, method)`` calls; returns it."""
    env = Environment()
    metrics = MetricsCollector(env)

    def driver():
        for at, call in steps:
            delay = at - env.now
            if delay > 0:
                yield env.timeout(delay)
            call(metrics)

    env.process(driver())
    env.run()
    return metrics


class TestOutageUnion:
    def test_overlapping_outages_charge_once(self):
        metrics = run_script([
            (1.0, MetricsCollector.note_outage_start),
            (2.0, MetricsCollector.note_outage_start),
            (3.0, MetricsCollector.note_outage_end),
            (4.0, MetricsCollector.note_outage_end),
        ])
        assert metrics.window_downtime == pytest.approx(3.0)

    def test_nested_outage_charges_outer_interval(self):
        metrics = run_script([
            (1.0, MetricsCollector.note_outage_start),
            (2.0, MetricsCollector.note_outage_start),
            (3.0, MetricsCollector.note_outage_end),
            (5.0, MetricsCollector.note_outage_end),
        ])
        assert metrics.window_downtime == pytest.approx(4.0)

    def test_disjoint_outages_sum(self):
        metrics = run_script([
            (1.0, MetricsCollector.note_outage_start),
            (2.0, MetricsCollector.note_outage_end),
            (3.0, MetricsCollector.note_outage_start),
            (4.0, MetricsCollector.note_outage_end),
        ])
        assert metrics.window_downtime == pytest.approx(2.0)

    def test_outage_spanning_measure_start_is_clipped(self):
        """The warm-up reset lands mid-outage: only the part inside the
        measured window is charged."""
        metrics = run_script([
            (1.0, MetricsCollector.note_outage_start),
            (2.0, MetricsCollector.reset),
            (5.0, MetricsCollector.note_outage_end),
        ])
        assert metrics.measure_start == pytest.approx(2.0)
        assert metrics.window_downtime == pytest.approx(3.0)

    def test_unmatched_end_is_harmless(self):
        metrics = run_script([
            (1.0, MetricsCollector.note_outage_end),
            (2.0, MetricsCollector.note_outage_start),
            (3.0, MetricsCollector.note_outage_end),
        ])
        assert metrics.window_downtime == pytest.approx(1.0)


class TestRecordCrash:
    def test_record_crash_closes_the_open_outage(self):
        stats = RestartStats(log_pages=7, redo_pages=5,
                             log_scan_time=0.5, redo_time=1.5)
        metrics = run_script([
            (1.0, MetricsCollector.note_outage_start),
            (4.0, lambda m: m.record_crash(3.0, stats)),
        ])
        assert metrics.window_downtime == pytest.approx(3.0)
        assert metrics.downtime_total == pytest.approx(3.0)
        assert metrics.crash_count == 1
        assert metrics.restart_redo_pages == 5

    def test_outage_open_false_leaves_union_clock_alone(self):
        """Online redo closes its outage at admission, long before the
        crash is recorded: record_crash must not close it again."""
        stats = RestartStats()
        metrics = run_script([
            (1.0, MetricsCollector.note_outage_start),
            (2.0, MetricsCollector.note_outage_end),
            (6.0, lambda m: m.record_crash(1.0, stats,
                                           outage_open=False)),
        ])
        # Union charged at t=2; the later record does not extend it.
        assert metrics.window_downtime == pytest.approx(1.0)
        assert metrics.downtime_total == pytest.approx(1.0)


class TestDegradedUnion:
    def test_overlapping_degraded_windows_charge_once(self):
        """A media rebuild overlapping an online-redo pass degrades the
        system once, not twice."""
        metrics = run_script([
            (1.0, MetricsCollector.note_degraded_start),
            (2.0, MetricsCollector.note_degraded_start),
            (4.0, MetricsCollector.note_degraded_end),
            (6.0, MetricsCollector.note_degraded_end),
        ])
        assert metrics.degraded_window == pytest.approx(5.0)

    def test_degraded_clipped_to_measured_window(self):
        metrics = run_script([
            (1.0, MetricsCollector.note_degraded_start),
            (3.0, MetricsCollector.reset),
            (7.0, MetricsCollector.note_degraded_end),
        ])
        assert metrics.degraded_window == pytest.approx(4.0)
