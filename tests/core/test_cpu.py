"""Unit tests for the CPU server pool (repro.core.cpu)."""

import pytest

from repro.core.config import CMConfig
from repro.core.cpu import CPUPool
from repro.core.transaction import Transaction
from repro.sim import Environment, RandomStreams, Resource


def make_pool(num_cpus=1, mips=50.0):
    env = Environment()
    cm = CMConfig(num_cpus=num_cpus, mips=mips)
    pool = CPUPool(env, RandomStreams(1), cm)
    return env, pool


def make_tx():
    return Transaction(1, "t", [])


class TestExecute:
    def test_constant_service_time(self):
        env, pool = make_pool()
        tx = make_tx()

        def proc(env):
            yield from pool.execute(tx, 50_000, exponential=False)
            return env.now

        finished = env.run(until=env.process(proc(env)))
        # 50_000 instructions at 50 MIPS = 1 ms.
        assert finished == pytest.approx(0.001)
        assert tx.service_cpu == pytest.approx(0.001)
        assert tx.wait_cpu == 0.0

    def test_zero_instructions_is_free(self):
        env, pool = make_pool()

        def proc(env):
            yield from pool.execute(None, 0)
            return env.now

        assert env.run(until=env.process(proc(env))) == 0.0

    def test_exponential_service_mean(self):
        env, pool = make_pool(num_cpus=64)
        total = []

        def proc(env):
            tx = make_tx()
            yield from pool.execute(tx, 50_000, exponential=True)
            total.append(tx.service_cpu)

        for _ in range(2000):
            env.process(proc(env))
        env.run()
        mean = sum(total) / len(total)
        assert mean == pytest.approx(0.001, rel=0.1)

    def test_queueing_on_busy_cpu(self):
        env, pool = make_pool(num_cpus=1)
        tx1, tx2 = make_tx(), make_tx()
        done = []

        def proc(env, tx):
            yield from pool.execute(tx, 50_000, exponential=False)
            done.append(env.now)

        env.process(proc(env, tx1))
        env.process(proc(env, tx2))
        env.run()
        assert done == [pytest.approx(0.001), pytest.approx(0.002)]
        assert tx2.wait_cpu == pytest.approx(0.001)

    def test_multi_cpu_parallelism(self):
        env, pool = make_pool(num_cpus=2)
        done = []

        def proc(env):
            yield from pool.execute(make_tx(), 50_000, exponential=False)
            done.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert done == [pytest.approx(0.001), pytest.approx(0.001)]


class TestFusedFastPath:
    """The immediate-grant burst fusion and its exact accounting."""

    def test_wait_cpu_exactly_zero_on_immediate_grant(self):
        """Regression for the queued_at edge: a fast-granted request
        must report wait_cpu == 0.0 *exactly* (not approximately)."""
        env, pool = make_pool()
        tx = make_tx()

        def proc(env):
            yield from pool.execute(tx, 50_000, exponential=False)

        env.run(until=env.process(proc(env)))
        assert tx.wait_cpu == 0.0          # bitwise-exact zero
        assert tx.service_cpu == pytest.approx(0.001)

    def test_zero_service_burst_schedules_no_events(self):
        """Fast grant + zero instructions: the whole burst is free —
        the generator yields nothing at all."""
        env, pool = make_pool()
        tx = make_tx()
        assert list(pool.execute(tx, 0)) == []
        assert pool.cpus.users == 0  # released on the synchronous path
        assert tx.wait_cpu == 0.0
        assert tx.service_cpu == 0.0

    def test_fused_burst_is_single_event(self):
        """An uncontended burst costs exactly one scheduled event (the
        fused service timeout) — no separate grant event."""
        from repro.sim.core import Timeout

        env, pool = make_pool()
        gen = pool.execute(make_tx(), 50_000, exponential=False)
        first = next(gen)
        assert isinstance(first, Timeout)
        assert env.peek() == pytest.approx(0.001)
        # The CPU is released by the event's own completion callback.
        env.run(until=first)
        assert pool.cpus.users == 0
        with pytest.raises(StopIteration):
            gen.send(None)

    def test_interrupt_during_fused_burst_releases_cpu(self):
        from repro.sim import Interrupt

        env, pool = make_pool(num_cpus=1)
        log = []

        def victim(env):
            # Burst at a quiet instant so the grant is the fast path.
            yield env.timeout(0.0005)
            assert env.peek() > env.now
            try:
                yield from pool.execute(make_tx(), 500_000,
                                        exponential=False)
            except Interrupt:
                log.append("interrupted")

        def contender(env):
            yield env.timeout(0.002)
            tx = make_tx()
            yield from pool.execute(tx, 50_000, exponential=False)
            log.append(("done", env.now, tx.wait_cpu))

        v = env.process(victim(env))
        env.process(contender(env))

        def attacker(env):
            yield env.timeout(0.001)
            v.interrupt()

        env.process(attacker(env))
        env.run()
        # Victim held the CPU via a fast grant; the interrupt returned
        # it, so the contender is served immediately at t=2ms.
        assert log == ["interrupted", ("done", pytest.approx(0.003), 0.0)]
        assert pool.cpus.users == 0

    def test_interrupt_during_fused_sync_access_releases_cpu(self):
        from repro.sim import Interrupt

        env, pool = make_pool(num_cpus=1)
        device = Resource(env, capacity=1)
        log = []

        def access():
            yield from device.serve(lambda: 0.5)

        def victim(env):
            try:
                yield from pool.execute_with_sync_access(
                    make_tx(), 50_000, access()
                )
            except Interrupt:
                log.append("interrupted")

        v = env.process(victim(env))

        def attacker(env):
            yield env.timeout(0.1)  # victim is inside the device access
            v.interrupt()

        env.process(attacker(env))
        env.run()
        assert log == ["interrupted"]
        assert pool.cpus.users == 0
        assert device.users == 0


class TestSyncAccess:
    def test_cpu_held_during_device_access(self):
        """The §3.2 'special CPU interface': device time occupies the CPU."""
        env, pool = make_pool(num_cpus=1)
        device = Resource(env, capacity=1)
        order = []

        def device_access():
            req = device.request()
            yield req
            yield env.timeout(0.005)
            device.release(req)
            return "done"

        def sync_user(env):
            tx = make_tx()
            result = yield from pool.execute_with_sync_access(
                tx, 50_000, device_access()
            )
            order.append(("sync", env.now, result))
            assert tx.wait_nvem == pytest.approx(0.005)

        def cpu_user(env):
            yield env.timeout(0.0001)  # arrive while sync_user holds CPU
            tx = make_tx()
            yield from pool.execute(tx, 50_000, exponential=False)
            order.append(("plain", env.now))
            # Must wait for CPU through the whole device access.
            assert tx.wait_cpu == pytest.approx(0.006 - 0.0001)

        env.process(sync_user(env))
        env.process(cpu_user(env))
        env.run()
        assert order[0][0] == "sync"
        assert order[0][1] == pytest.approx(0.006)  # 1 ms CPU + 5 ms device
        assert order[1][1] == pytest.approx(0.007)

    def test_sync_access_returns_device_result(self):
        env, pool = make_pool()

        def device_access():
            yield env.timeout(0.001)
            return {"level": "nvem"}

        def proc(env):
            result = yield from pool.execute_with_sync_access(
                None, 0, device_access()
            )
            return result

        assert env.run(until=env.process(proc(env))) == {"level": "nvem"}


class TestUtilization:
    def test_utilization_measurement(self):
        env, pool = make_pool(num_cpus=1)

        def proc(env):
            yield from pool.execute(None, 100_000, exponential=False)

        env.process(proc(env))
        env.run(until=0.004)
        # busy 2 ms of 4 ms observed.
        assert pool.utilization == pytest.approx(0.5)

    def test_reset_stats(self):
        env, pool = make_pool(num_cpus=1)

        def proc(env):
            yield from pool.execute(None, 100_000, exponential=False)

        env.process(proc(env))
        env.run(until=0.002)
        pool.reset_stats()
        env.run(until=0.004)
        assert pool.utilization == pytest.approx(0.0)
