"""Shared builders for the crash-recovery tests."""

from repro.core.config import (
    NVEM,
    CCMode,
    LogAllocation,
    PartitionConfig,
    SystemConfig,
    TransactionTypeConfig,
    UpdateStrategy,
)
from repro.core.model import TransactionSystem
from repro.experiments.defaults import (
    db_disk_unit,
    debit_credit_config,
    default_cm,
    default_nvem,
    disk_only,
    log_disk_unit,
)
from repro.workload.debit_credit import DebitCreditWorkload
from repro.workload.synthetic import SyntheticWorkload


class NoPrewarm:
    """Wrap a workload, skipping its prewarm: every dirty page then has
    a log record, so the DPT mirrors the buffer's dirty bits exactly."""

    def __init__(self, inner):
        self._inner = inner

    def start(self, system):
        self._inner.start(system)


def debit_credit_system(rate=50.0, strategy=UpdateStrategy.NOFORCE,
                        interval=5.0, crash_times=(), seed=1,
                        scheme=None, prewarm=True):
    config = debit_credit_config(scheme or disk_only(),
                                 update_strategy=strategy)
    config.recovery.enabled = True
    config.recovery.checkpoint_interval = interval
    config.recovery.crash_times = tuple(crash_times)
    config.validate()
    workload = DebitCreditWorkload(arrival_rate=rate)
    if not prewarm:
        workload = NoPrewarm(workload)
    return TransactionSystem(config, workload, seed=seed)


def matched_synthetic_config(rate=50.0, interval=10.0, crash_at=15.0,
                             strategy=UpdateStrategy.NOFORCE,
                             buffer_size=6000):
    """Uniform random writes over a huge partition: ~3 distinct pages
    per transaction, no replacement churn (big buffer, no prewarm), so
    the analytic model's assumptions hold with propagated fraction 0."""
    partitions = [PartitionConfig("DATA", num_objects=2_000_000,
                                  block_factor=10, cc_mode=CCMode.PAGE,
                                  allocation="db0")]
    tx = TransactionTypeConfig("update", arrival_rate=rate, tx_size=3,
                               write_prob=1.0,
                               reference_matrix={"DATA": 1.0})
    config = SystemConfig(
        partitions=partitions,
        disk_units=[db_disk_unit("db0"),
                    log_disk_unit("log0", num_disks=8)],
        nvem=default_nvem(),
        cm=default_cm(update_strategy=strategy, buffer_size=buffer_size),
        log=LogAllocation(device="log0"),
        tx_types=[tx],
    )
    config.recovery.enabled = True
    config.recovery.checkpoint_interval = interval
    config.recovery.crash_times = (crash_at,)
    config.validate()
    return config


def matched_synthetic_system(seed=3, **kwargs):
    config = matched_synthetic_config(**kwargs)
    workload = NoPrewarm(SyntheticWorkload(config))
    return TransactionSystem(config, workload, seed=seed)


def media_synthetic_config(rate=40.0, data_pages=20_000,
                           allocation="db0", log_device="log0",
                           faults=(), archive_interval=5.0,
                           log_mirror=False, archive_batch=512,
                           media_enabled=True, buffer_size=600):
    """Small uniform-update config for media-failure tests: the DATA
    partition is ~20k pages, so a full device rebuild fits in a few
    simulated seconds instead of the Debit-Credit bank's minutes.  The
    buffer is small on purpose: replacement starts evicting dirty pages
    within the first simulated seconds, so a loss finds pages written
    since the last archive copy (a non-empty log-redo phase)."""
    partitions = [PartitionConfig("DATA", num_objects=data_pages * 10,
                                  block_factor=10, cc_mode=CCMode.PAGE,
                                  allocation=allocation)]
    tx = TransactionTypeConfig("update", arrival_rate=rate, tx_size=3,
                               write_prob=1.0,
                               reference_matrix={"DATA": 1.0})
    config = SystemConfig(
        partitions=partitions,
        disk_units=[db_disk_unit("db0", num_disks=16,
                                 num_controllers=4),
                    log_disk_unit("log0", num_disks=8)],
        nvem=default_nvem(),
        cm=default_cm(buffer_size=buffer_size),
        log=LogAllocation(device=log_device),
        tx_types=[tx],
    )
    config.media.enabled = media_enabled
    config.media.faults = tuple(faults)
    config.media.archive_interval = archive_interval
    config.media.archive_batch_pages = archive_batch
    config.recovery.log_mirror = log_mirror
    config.validate()
    return config


def media_synthetic_system(seed=3, **kwargs):
    config = media_synthetic_config(**kwargs)
    workload = NoPrewarm(SyntheticWorkload(config))
    return TransactionSystem(config, workload, seed=seed)
