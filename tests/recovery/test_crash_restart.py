"""Crash/restart tests: fault semantics, availability accounting, and
the simulated-vs-analytic cross-validation on a matched configuration."""

import pytest

from repro.core.config import UpdateStrategy
from repro.recovery import matched_recovery_model

from tests.recovery.conftest import (
    debit_credit_system,
    matched_synthetic_system,
)

#: Documented tolerance of the simulation ↔ analytic cross-validation.
#: The analytic model works from the *expected* exposure (half a
#: checkpoint interval at the nominal update rate); the simulation sees
#: the realized Poisson arrivals, in-flight transactions at the crash
#: boundary, and the replayer's per-page CPU charges.  On the matched
#: configuration (uniform distinct pages, zero propagated fraction,
#: crash exactly half an interval after a checkpoint) the deterministic
#: run lands within ~10%; 25% gives headroom for parameter tweaks
#: without hiding order-of-magnitude modeling errors.
CROSS_VALIDATION_REL_TOL = 0.25


class TestCrashSemantics:
    def test_crash_aborts_in_flight_and_clears_buffer(self):
        system = debit_credit_system(rate=40.0, interval=4.0,
                                     crash_times=(6.0,), prewarm=False)
        system.start_workload()
        system.env.run(until=5.99)
        assert len(system.bm.mm) > 0
        system.env.run(until=6.01)
        # The volatile buffer died with the CM; the restart replay is
        # in progress, nothing is executing, and the admission gate
        # holds any post-crash arrivals.
        assert system.tm.active == 0
        assert len(system.bm.mm) == 0
        assert system.tm._offline_gate is not None
        assert system.metrics.crash_count == 0  # restart still running

    def test_restart_reopens_admission_and_records_crash(self):
        system = debit_credit_system(rate=40.0, interval=4.0,
                                     crash_times=(6.0,), prewarm=False)
        results = system.run(warmup=0.0, duration=40.0)
        rec = results.recovery
        assert rec["crashes"] == 1.0
        assert rec["restart_time_mean"] > 0
        assert rec["availability"] < 1.0
        assert rec["restart_log_pages"] > 0
        assert rec["restart_redo_pages"] > 0
        # The system kept committing after the restart: delivered
        # throughput is positive and the gate reopened.
        assert results.committed > 0
        assert system.tm._offline_gate is None
        stats = system.recovery.crash_controller.restarts[0]
        assert stats.total == pytest.approx(rec["restart_time_mean"])
        assert stats.log_scan_time + stats.redo_time == \
            pytest.approx(stats.total)

    def test_crash_during_outage_is_skipped(self):
        """A crash instant inside a previous restart does not double-
        fail the module (the controller coalesces it)."""
        system = debit_credit_system(rate=40.0, interval=4.0,
                                     crash_times=(6.0, 6.5),
                                     prewarm=False)
        results = system.run(warmup=0.0, duration=40.0)
        assert results.recovery["crashes"] == 1.0

    def test_open_outage_charged_to_availability(self):
        """A window that ends mid-restart still reports the downtime."""
        system = debit_credit_system(rate=40.0, interval=4.0,
                                     crash_times=(6.0,), prewarm=False)
        results = system.run(warmup=0.0, duration=7.0)
        rec = results.recovery
        assert rec["crashes"] == 0.0  # the restart never finished
        assert rec["downtime"] == pytest.approx(1.0, rel=0.01)
        assert rec["availability"] == pytest.approx(6.0 / 7.0, rel=0.01)

    def test_disabled_recovery_reports_no_block(self):
        """With recovery off (the default) Results carries no recovery
        block and the availability accessors report perfect uptime."""
        from repro.core.model import TransactionSystem
        from repro.experiments.defaults import (
            debit_credit_config,
            disk_only,
        )
        from repro.workload.debit_credit import DebitCreditWorkload

        config = debit_credit_config(disk_only())
        assert not config.recovery.enabled
        system = TransactionSystem(
            config, DebitCreditWorkload(arrival_rate=40.0), seed=1)
        assert system.recovery is None
        results = system.run(warmup=0.0, duration=2.0)
        assert results.recovery is None
        assert results.availability == 1.0
        assert results.restart_time_mean == 0.0


class TestCrashKillsBackgroundWork:
    def test_pending_group_commit_flush_dies_with_the_cm(self):
        """A group-commit batch open at the crash must not write its
        log page during the outage: its members all aborted, and the
        restart replay is supposed to own the devices."""
        system = debit_credit_system(rate=20.0, interval=5.0,
                                     crash_times=(2.0,), prewarm=False)
        system.config.cm.group_commit_size = 50   # never fills at 20 TPS
        system.config.cm.group_commit_timeout = 3.0
        system.start_workload()
        system.env.run(until=1.9)
        batch = system.bm._group
        assert batch is not None  # a batch is open
        # The crash at t=2 interrupts the batch's flush process; its
        # timeout instant (batch creation + 3 s) falls inside the
        # restart (which ends ~4.6 s), so while the CM is down no
        # group-commit log write may occur.
        system.env.run(until=4.5)
        assert not system.tm.is_online  # restart still in progress
        assert batch.flush_proc.triggered  # the ghost was reaped...
        assert system.metrics.io_counts.get("group_commits") == 0
        # ...and after the restart, the released backlog group-commits
        # normally again (fresh batch, not the dead one).
        system.env.run(until=8.0)
        assert system.metrics.io_counts.get("group_commits") > 0
        assert system.bm._group is not batch

    def test_checkpoint_flush_workers_stop_at_the_crash(self):
        """Flush workers — including ones left over from an earlier
        checkpoint round — record no destage I/O during the outage."""
        system = debit_credit_system(rate=100.0, interval=1.0,
                                     crash_times=(3.5,), prewarm=False)
        system.start_workload()
        system.env.run(until=3.6)
        assert not system.tm.is_online  # restart in progress
        flushed_at_crash = system.metrics.io_counts.get(
            "checkpoint_flush")
        system.env.run(until=5.0)
        if not system.tm.is_online:
            assert system.metrics.io_counts.get("checkpoint_flush") == \
                flushed_at_crash


class TestStrategyAndPlacement:
    def test_force_restart_much_smaller_than_noforce(self):
        noforce = debit_credit_system(rate=40.0, interval=6.0,
                                      crash_times=(9.0,), prewarm=False)
        nf = noforce.run(warmup=0.0, duration=40.0)
        force = debit_credit_system(rate=40.0, interval=6.0,
                                    strategy=UpdateStrategy.FORCE,
                                    crash_times=(9.0,), prewarm=False)
        fo = force.run(warmup=0.0, duration=40.0)
        assert fo.recovery["restart_time_mean"] < \
            0.2 * nf.recovery["restart_time_mean"]
        # FORCE scans only the commit-window tail, not the whole
        # checkpoint exposure.
        assert fo.recovery["restart_log_pages"] < \
            0.5 * nf.recovery["restart_log_pages"]


class TestCrossValidation:
    def test_simulated_restart_matches_analytic_model(self):
        """Simulated restart ≈ RecoveryModel on a matched config.

        Crash at 15 s with checkpoints every 10 s: exposure is exactly
        half an interval — the analytic model's expectation.  The
        uniform 3-page update transactions give ~3 distinct modified
        pages per transaction, and the oversized buffer avoids
        replacement, so already_propagated_fraction is 0.
        """
        rate = 50.0
        system = matched_synthetic_system(rate=rate, interval=10.0,
                                          crash_at=15.0)
        system.run(warmup=0.0, duration=45.0)
        stats = system.recovery.crash_controller.restarts[0]

        model = matched_recovery_model(
            system.config, update_tps=rate,
            pages_modified_per_tx=3.0,
            already_propagated_fraction=0.0,
        )
        estimate = model.estimate(UpdateStrategy.NOFORCE)
        assert stats.total == pytest.approx(
            estimate.total, rel=CROSS_VALIDATION_REL_TOL)
        assert stats.log_scan_time == pytest.approx(
            estimate.log_scan_time, rel=CROSS_VALIDATION_REL_TOL)
        assert stats.redo_time == pytest.approx(
            estimate.redo_read_time + estimate.redo_write_time,
            rel=CROSS_VALIDATION_REL_TOL)

    def test_matched_model_force_estimate_is_flat_and_tiny(self):
        system = matched_synthetic_system()
        model = matched_recovery_model(system.config, update_tps=50.0)
        short = model.estimate(UpdateStrategy.FORCE)
        model.checkpoint_interval = 1000.0
        long = model.estimate(UpdateStrategy.FORCE)
        assert short.total == pytest.approx(long.total)
        assert short.total < 1.0
