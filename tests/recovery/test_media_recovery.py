"""End-to-end media failure: device loss, archive rebuild, dual-copy
log survival, and the unrecoverable configurations."""

import pytest

from repro.core.config import (
    LOG_COPY_MIRROR,
    LOG_COPY_PRIMARY,
    NVEM,
    DeviceFault,
)
from repro.experiments.export import results_to_dict
from repro.storage.faults import MediaUnrecoverableError

from tests.recovery.conftest import media_synthetic_system

DATA_PAGES = 20_000


def loss(device, at):
    return DeviceFault(device=device, time=at, kind="loss")


class TestDeviceLoss:
    def test_disk_loss_rebuilds_and_keeps_committing(self):
        system = media_synthetic_system(
            faults=(loss("db0", 6.0),), archive_interval=4.0)
        results = system.run(warmup=2.0, duration=30.0)
        assert len(system.media.recoveries) == 1
        stats = system.media.recoveries[0]
        assert stats.device == "db0"
        assert stats.restore_pages == DATA_PAGES
        assert stats.redo_pages > 0
        assert stats.duration > 0
        assert results.media_mttr_mean == pytest.approx(stats.duration)
        # Fully healed: nothing lost, nothing mid-restore, and the
        # system committed work both during and after the rebuild.
        state = system.storage.media_state
        assert not state.lost and not state.restoring
        assert results.degraded["degraded_window"] > 0
        assert results.degraded_tps > 0
        assert results.committed > 0
        assert results.degraded["media_restore_pages"] == DATA_PAGES

    def test_loss_run_matches_fault_free_shape(self):
        """The faulted run heals: it ends with every device current and
        keeps delivering (its commit count is within the fault-free
        run's, never higher, and positive through the degraded window)."""
        faulted = media_synthetic_system(
            faults=(loss("db0", 6.0),), archive_interval=4.0)
        clean = media_synthetic_system()
        r_faulted = faulted.run(warmup=2.0, duration=30.0)
        r_clean = clean.run(warmup=2.0, duration=30.0)
        assert r_clean.degraded["media_recoveries"] == 0
        assert r_faulted.degraded["media_recoveries"] == 1
        assert 0 < r_faulted.committed <= r_clean.committed
        # Every arrival is eventually served: the rebuild delays
        # transactions, it never drops them.
        assert r_faulted.aborted == 0

    def test_nvem_loss_rebuilds_resident_partitions(self):
        # Data lives in the NVEM bank, the log on disk: losing the bank
        # is then recoverable (losing it with an NVEM log would not be).
        system = media_synthetic_system(
            allocation=NVEM,
            faults=(loss(NVEM, 6.0),), archive_interval=4.0)
        results = system.run(warmup=2.0, duration=30.0)
        assert len(system.media.recoveries) == 1
        stats = system.media.recoveries[0]
        assert stats.device == NVEM
        assert stats.restore_pages == DATA_PAGES
        assert results.media_mttr_mean > 0
        assert results.committed > 0
        assert not system.storage.media_state.lost

    def test_identical_loss_runs_are_bit_identical(self):
        dicts = []
        for _ in range(2):
            system = media_synthetic_system(
                faults=(loss("db0", 6.0),), archive_interval=4.0)
            dicts.append(results_to_dict(
                system.run(warmup=2.0, duration=30.0)))
        assert dicts[0] == dicts[1]

    def test_older_archive_means_more_redo(self):
        """Loss just before an archiver tick: a longer interval leaves
        an older newest-archive, so more log redo at the rebuild."""
        redo_pages = {}
        for interval in (3.0, 9.0):
            system = media_synthetic_system(
                faults=(loss("db0", 8.9),), archive_interval=interval)
            system.run(warmup=2.0, duration=35.0)
            assert len(system.media.recoveries) == 1
            redo_pages[interval] = system.media.recoveries[0].redo_pages
        assert redo_pages[9.0] > redo_pages[3.0]


class TestMirroredLog:
    def test_single_copy_loss_survives_and_resilvers(self):
        system = media_synthetic_system(
            log_device=NVEM, log_mirror=True,
            faults=(loss(LOG_COPY_MIRROR, 6.0),))
        results = system.run(warmup=2.0, duration=25.0)
        # Commits ran through the loss on the surviving copy, and the
        # mirror force shows up in the I/O accounting.
        assert results.committed > 0
        assert results.io_per_tx["log_nvem"] > 0
        assert results.io_per_tx["log_nvem_mirror"] > 0
        assert len(system.media.recoveries) == 1
        stats = system.media.recoveries[0]
        assert stats.device == LOG_COPY_MIRROR
        assert stats.log_pages > 0
        assert not system.storage.media_state.lost_log_copies

    def test_mirroring_costs_commit_latency(self):
        single = media_synthetic_system(log_device=NVEM)
        dual = media_synthetic_system(log_device=NVEM, log_mirror=True)
        r_single = single.run(warmup=2.0, duration=15.0)
        r_dual = dual.run(warmup=2.0, duration=15.0)
        assert r_dual.response_time_mean > r_single.response_time_mean
        assert r_dual.io_per_tx["log_nvem_mirror"] == pytest.approx(
            r_dual.io_per_tx["log_nvem"])

    def test_unmirrored_copy_loss_is_unrecoverable(self):
        system = media_synthetic_system(
            log_device=NVEM,
            faults=(loss(LOG_COPY_PRIMARY, 4.0),))
        with pytest.raises(MediaUnrecoverableError):
            system.run(warmup=2.0, duration=15.0)

    def test_both_copies_lost_is_unrecoverable(self):
        system = media_synthetic_system(
            log_device=NVEM, log_mirror=True,
            faults=(loss(LOG_COPY_PRIMARY, 4.0),
                    loss(LOG_COPY_MIRROR, 4.01)))
        with pytest.raises(MediaUnrecoverableError):
            system.run(warmup=2.0, duration=15.0)

    def test_disk_log_unit_loss_is_unrecoverable(self):
        system = media_synthetic_system(faults=(loss("log0", 4.0),))
        with pytest.raises(MediaUnrecoverableError):
            system.run(warmup=2.0, duration=15.0)