"""Fuzzy-checkpointer tests: record writes, flush, DPT invariants."""

from repro.core.config import UpdateStrategy

from tests.recovery.conftest import debit_credit_system


def dirty_mm_keys(system):
    return {e.key for e in system.bm.mm.entries() if e.dirty}


class TestCheckpointRecords:
    def test_checkpoints_written_through_log_device(self):
        system = debit_credit_system(rate=20.0, interval=2.0,
                                     prewarm=False)
        results = system.run(warmup=0.0, duration=7.0)
        tracker = system.recovery.tracker
        # Checkpoints at t=2, 4, 6: each wrote one record via the real
        # log path and advanced the checkpoint LSN monotonically.
        assert tracker.checkpoints_taken == 3
        assert results.recovery["checkpoints"] == 3.0
        assert 0 < tracker.checkpoint_lsn <= \
            system.storage.log_page_count
        # Checkpoint records share the transaction log's page space.
        committed_like = results.committed + results.aborted
        assert system.storage.log_page_count >= committed_like

    def test_flush_destages_dirty_pages(self):
        """Pages dirtied before a checkpoint leave the DPT once the
        background flush has destaged them (bounded redo exposure)."""
        system = debit_credit_system(rate=30.0, interval=3.0,
                                     prewarm=False)
        system.run(warmup=0.0, duration=3.5)
        dirty_mid = system.recovery.tracker.dirty_page_count()
        # Let the flush drain, with arrivals still running: the DPT
        # should shrink well below its pre-checkpoint size even though
        # new transactions keep dirtying pages.
        system.env.run(until=6.0)
        flushed = system.metrics.io_counts.get("checkpoint_flush")
        assert flushed > 0
        assert dirty_mid > 0

    def test_no_checkpoints_during_an_outage(self):
        """A crashed module takes no checkpoints: ticks that fall
        inside the restart are skipped, so no checkpoint record
        interleaves with (and inflates) the replay, and the checkpoint
        LSN never advances to a record written while down."""
        system = debit_credit_system(rate=50.0, interval=2.0,
                                     crash_times=(3.0,), prewarm=False)
        system.start_workload()
        system.env.run(until=3.05)
        assert not system.tm.is_online  # restart in progress
        tracker = system.recovery.tracker
        taken_at_crash = tracker.checkpoints_taken
        lsn_at_crash = tracker.checkpoint_lsn
        # The disk restart here takes several simulated seconds, so the
        # t=4 and t=6 ticks fall inside the outage.
        system.env.run(until=6.5)
        assert not system.tm.is_online
        assert tracker.checkpoints_taken == taken_at_crash
        assert tracker.checkpoint_lsn == lsn_at_crash
        system.env.run(until=40.0)
        assert system.tm.is_online
        assert tracker.checkpoints_taken > taken_at_crash

    def test_crash_mid_checkpoint_kills_the_record_write(self):
        """A checkpoint record in flight when the CM fails never
        completes: the checkpoint LSN must not advance from a dead
        module (the controller interrupts the checkpointer)."""
        # The t=2 checkpoint's record write takes ~6.5 ms on the log
        # disk; crash 3 ms into it.
        system = debit_credit_system(rate=20.0, interval=2.0,
                                     crash_times=(2.003,),
                                     prewarm=False)
        system.start_workload()
        tracker = system.recovery.tracker
        system.env.run(until=2.002)
        assert tracker.checkpoints_taken == 0  # record still in flight
        system.env.run(until=2.1)
        assert tracker.checkpoints_taken == 0
        assert tracker.checkpoint_lsn == 0
        # After the restart the cadence resumes and checkpoints
        # complete normally again.
        system.env.run(until=30.0)
        assert system.tm.is_online
        assert tracker.checkpoints_taken > 0

    def test_force_checkpoints_have_little_to_flush(self):
        """Under FORCE every commit forces its pages: the DPT holds only
        in-flight transactions' pages, so checkpoint flushes are tiny."""
        system = debit_credit_system(rate=30.0, interval=3.0,
                                     strategy=UpdateStrategy.FORCE,
                                     prewarm=False)
        system.run(warmup=0.0, duration=7.0)
        assert system.recovery.tracker.dirty_page_count() < 30
        flushed = system.metrics.io_counts.get("checkpoint_flush")
        noforce = debit_credit_system(rate=30.0, interval=3.0,
                                      prewarm=False)
        noforce.run(warmup=0.0, duration=7.0)
        assert flushed < noforce.metrics.io_counts.get("checkpoint_flush")


class TestDPTMirrorsBuffer:
    def test_dpt_equals_dirty_buffer_pages_without_prewarm(self):
        """The DPT is exactly the set of dirty main-memory pages (the
        note_dirty/note_clean hooks mirror the dirty bits) when no
        prewarm predates the log horizon."""
        system = debit_credit_system(rate=40.0, interval=50.0,
                                     prewarm=False)
        system.run(warmup=0.0, duration=4.0)
        assert set(system.recovery.tracker.dirty_pages) == \
            dirty_mm_keys(system)

    def test_dpt_subset_of_dirty_buffer_with_prewarm(self):
        """Prewarm-dirty pages are untracked (no log records exist for
        them), so with prewarm the DPT is a subset of the dirty bits."""
        system = debit_credit_system(rate=40.0, interval=50.0,
                                     prewarm=True)
        system.run(warmup=0.0, duration=2.0)
        assert set(system.recovery.tracker.dirty_pages) <= \
            dirty_mm_keys(system)
