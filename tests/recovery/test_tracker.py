"""Unit tests for the recovery tracker (repro.recovery.tracker)."""

from repro.recovery.tracker import RecoveryTracker


def make_tracker(times=(1.0, 2.0, 3.0), lsns=(10, 20, 30)):
    time_iter = iter(times)
    lsn_iter = iter(lsns)
    return RecoveryTracker(now=lambda: next(time_iter),
                           log_tail=lambda: next(lsn_iter))


def test_note_dirty_records_first_dirty_time_and_reclsn():
    tracker = make_tracker()
    tracker.note_dirty((0, 7))
    tracker.note_dirty((0, 7))  # re-dirty: first record sticks
    tracker.note_dirty((1, 2))
    # recLSN is the *next* log page at dirtying time.
    assert tracker.dirty_pages == {(0, 7): (1.0, 11), (1, 2): (2.0, 21)}
    assert tracker.oldest_dirty_time() == 1.0


def test_note_clean_is_idempotent():
    tracker = make_tracker()
    tracker.note_dirty((0, 1))
    tracker.note_clean((0, 1))
    tracker.note_clean((0, 1))  # never-dirty / already-clean: no-op
    tracker.note_clean((5, 5))
    assert tracker.dirty_page_count() == 0
    assert tracker.oldest_dirty_time() is None


def test_reclean_then_redirty_refreshes_reclsn():
    tracker = make_tracker()
    tracker.note_dirty((0, 1))
    tracker.note_clean((0, 1))
    tracker.note_dirty((0, 1))
    assert tracker.dirty_pages[(0, 1)] == (2.0, 21)


def test_checkpoint_bookkeeping():
    tracker = RecoveryTracker()
    tracker.complete_checkpoint(lsn=120, time=10.0)
    tracker.complete_checkpoint(lsn=260, time=20.0)
    assert tracker.checkpoint_lsn == 260
    assert tracker.checkpoint_time == 20.0
    assert tracker.checkpoints_taken == 2


def test_flush_candidates_sorted():
    tracker = make_tracker(times=(1.0,) * 4, lsns=(5,) * 4)
    for key in [(1, 9), (0, 3), (1, 1), (0, 11)]:
        tracker.note_dirty(key)
    assert tracker.flush_candidates() == [(0, 3), (0, 11), (1, 1), (1, 9)]


class TestScanStart:
    def test_scan_starts_at_checkpoint_when_dpt_is_younger(self):
        tracker = make_tracker(times=(9.0,), lsns=(150,))
        tracker.complete_checkpoint(lsn=100, time=8.0)
        tracker.note_dirty((0, 1))  # recLSN 151 > checkpoint
        assert tracker.scan_from_lsn() == 100

    def test_scan_extends_to_oldest_unflushed_reclsn(self):
        """ARIES rule: a fuzzy checkpoint does not flush, so a page
        dirtied before it needs records from before its record."""
        tracker = make_tracker(times=(5.0,), lsns=(60,))
        tracker.note_dirty((0, 1))  # recLSN 61, before the checkpoint
        tracker.complete_checkpoint(lsn=100, time=8.0)
        assert tracker.scan_from_lsn() == 60

    def test_scan_never_negative(self):
        tracker = make_tracker(times=(0.0,), lsns=(0,))
        tracker.note_dirty((0, 1))  # recLSN 1 -> scan from 0
        assert tracker.scan_from_lsn() == 0


class TestCrashSnapshot:
    def test_on_crash_freezes_and_clears(self):
        tracker = make_tracker(times=(9.0, 9.5, 10.5),
                               lsns=(110, 115, 130))
        tracker.complete_checkpoint(lsn=100, time=8.0)
        for key in [(0, 5), (0, 2), (2, 1)]:
            tracker.note_dirty(key)
        snapshot = tracker.on_crash(time=12.0, log_tail=160, in_flight=7)
        assert snapshot.time == 12.0
        assert snapshot.checkpoint_lsn == 100
        assert snapshot.scan_from_lsn == 100
        assert snapshot.log_pages_to_scan == 60
        assert snapshot.dirty_pages == [(0, 2), (0, 5), (2, 1)]
        assert snapshot.in_flight == 7
        # The volatile DPT died with the buffer.
        assert tracker.dirty_page_count() == 0

    def test_snapshot_scan_covers_pre_checkpoint_dirt(self):
        tracker = make_tracker(times=(5.0,), lsns=(60,))
        tracker.note_dirty((0, 1))
        tracker.complete_checkpoint(lsn=100, time=8.0)
        snapshot = tracker.on_crash(time=12.0, log_tail=160, in_flight=0)
        assert snapshot.scan_from_lsn == 60
        assert snapshot.log_pages_to_scan == 100

    def test_empty_scan_window(self):
        tracker = RecoveryTracker()
        tracker.complete_checkpoint(lsn=50, time=1.0)
        snapshot = tracker.on_crash(time=2.0, log_tail=50, in_flight=0)
        assert snapshot.log_pages_to_scan == 0
