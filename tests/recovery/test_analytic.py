"""Tests for the config -> RecoveryModel bridge (repro.recovery.analytic)."""

import pytest

from repro.core.config import DeviceSpec, LogAllocation, NVEM
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    flash_resident,
    nvem_resident,
    ssd_resident,
)
from repro.recovery import matched_recovery_model, page_time_estimates


def test_disk_config_matches_table41_arithmetic():
    config = debit_credit_config(disk_only())
    log_read, db_read, db_write = page_time_estimates(config)
    io_cpu = 3000 / 50e6
    # Log disk: 1 ms controller + 0.4 ms transfer + 5 ms disk + I/O CPU.
    assert log_read == pytest.approx(0.0064 + io_cpu)
    # DB disk: 16.4 ms (§4.2's "average access time per page") + CPU;
    # the read side also carries the redo-apply instructions.
    redo_cpu = config.recovery.redo_instr / 50e6
    assert db_read == pytest.approx(0.0164 + io_cpu + redo_cpu)
    assert db_write == pytest.approx(0.0164 + io_cpu)


def test_nvem_config_runs_at_nvem_speed():
    config = debit_credit_config(nvem_resident())
    log_read, db_read, db_write = page_time_estimates(config)
    nvem_cpu = 300 / 50e6
    assert log_read == pytest.approx(50e-6 + nvem_cpu)
    assert db_write == pytest.approx(50e-6 + nvem_cpu)
    assert db_read < 0.001


def test_ssd_config_skips_disk_delay():
    config = debit_credit_config(ssd_resident())
    log_read, _, db_write = page_time_estimates(config)
    io_cpu = 3000 / 50e6
    assert log_read == pytest.approx(0.0014 + io_cpu)
    assert db_write == pytest.approx(0.0014 + io_cpu)


def test_flash_config_is_asymmetric():
    config = debit_credit_config(flash_resident())
    _, db_read, db_write = page_time_estimates(config)
    redo_cpu = config.recovery.redo_instr / 50e6
    # Programs are slower than reads on flash.
    assert db_write > db_read - redo_cpu


def test_matched_model_uses_config_interval_and_overrides():
    config = debit_credit_config(disk_only())
    config.recovery.checkpoint_interval = 42.0
    model = matched_recovery_model(config, update_tps=100.0,
                                   pages_modified_per_tx=2.5)
    assert model.checkpoint_interval == 42.0
    assert model.update_tps == 100.0
    assert model.pages_modified_per_tx == 2.5


def test_unknown_device_kind_rejected():
    config = debit_credit_config(disk_only())
    config.devices.append(DeviceSpec(kind="pcm", name="pcm0"))
    config.log = LogAllocation(device="pcm0")
    with pytest.raises(ValueError, match="pcm"):
        page_time_estimates(config)


def test_unknown_device_name_rejected():
    config = debit_credit_config(disk_only())
    config.log = LogAllocation(device="ghost")
    with pytest.raises(KeyError, match="ghost"):
        page_time_estimates(config)


def test_memory_resident_db_costs_nothing():
    config = debit_credit_config(disk_only())
    for part in config.partitions:
        part.allocation = "memory"
    _, db_read, db_write = page_time_estimates(config)
    redo_cpu = config.recovery.redo_instr / 50e6
    assert db_read == pytest.approx(redo_cpu)
    assert db_write == 0.0


def test_nvem_allocation_string_accepted():
    config = debit_credit_config(disk_only())
    config.log = LogAllocation(device=NVEM)
    log_read, _, _ = page_time_estimates(config)
    assert log_read == pytest.approx(50e-6 + 300 / 50e6)
