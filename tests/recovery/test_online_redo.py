"""Online (ARIES-style) redo: admission during replay, per-page
gating, volatile controller-cache loss, and availability gains."""


from repro.core.model import TransactionSystem
from repro.recovery.crash import RedoGate
from repro.sim import Environment
from repro.workload.synthetic import SyntheticWorkload

from tests.recovery.conftest import NoPrewarm, matched_synthetic_config


def crash_system(online_redo=False, volatile_cache_loss=False, seed=3,
                 **kwargs):
    config = matched_synthetic_config(**kwargs)
    config.recovery.online_redo = online_redo
    config.recovery.volatile_cache_loss = volatile_cache_loss
    config.validate()
    workload = NoPrewarm(SyntheticWorkload(config))
    return TransactionSystem(config, workload, seed=seed)


class TestRedoGate:
    def test_wait_blocks_until_page_done(self):
        env = Environment()
        gate = RedoGate(env, [(0, 1), (0, 2)])
        order = []

        def accessor(key):
            yield from gate.wait(key)
            order.append((env.now, key))

        def driver():
            yield env.timeout(1.0)
            gate.page_done((0, 1))
            yield env.timeout(1.0)
            gate.page_done((0, 2))

        env.process(accessor((0, 1)))
        env.process(accessor((0, 2)))
        env.process(accessor((9, 9)))  # never pending: passes at once
        env.process(driver())
        env.run(until=5.0)
        assert order == [(0.0, (9, 9)), (1.0, (0, 1)), (2.0, (0, 2))]
        assert not gate.pending

    def test_close_releases_everything(self):
        env = Environment()
        gate = RedoGate(env, [(0, page) for page in range(5)])
        released = []

        def accessor(key):
            yield from gate.wait(key)
            released.append(key)

        for page in range(5):
            env.process(accessor((0, page)))

        def driver():
            yield env.timeout(1.0)
            gate.close()

        env.process(driver())
        env.run(until=2.0)
        assert sorted(released) == [(0, page) for page in range(5)]
        assert not gate.pending and not gate._events


class TestOnlineRedo:
    def test_degraded_window_admits_transactions(self):
        system = crash_system(online_redo=True, crash_at=15.0)
        results = system.run(warmup=5.0, duration=40.0)
        assert results.degraded is not None
        assert results.degraded["degraded_window"] > 0
        assert results.degraded_tps > 0
        stats = system.recovery.crash_controller.restarts[0]
        assert stats.redo_pages > 0

    def test_online_availability_beats_offline(self):
        """Same crash, same workload: online redo reopens after the log
        scan instead of after scan + full redo, so the charged outage is
        strictly shorter and availability strictly higher."""
        r_offline = crash_system(online_redo=False, crash_at=15.0).run(
            warmup=5.0, duration=40.0)
        r_online = crash_system(online_redo=True, crash_at=15.0).run(
            warmup=5.0, duration=40.0)
        assert r_online.availability > r_offline.availability
        # The restart work itself did not shrink — only its placement
        # relative to the admission gate changed.
        assert r_online.recovery["crashes"] == \
            r_offline.recovery["crashes"] == 1
        # Offline replay reports no degraded operation at all.
        assert r_offline.degraded is None

    def test_offline_restart_has_longer_downtime(self):
        offline = crash_system(online_redo=False, crash_at=15.0)
        online = crash_system(online_redo=True, crash_at=15.0)
        r_offline = offline.run(warmup=5.0, duration=40.0)
        r_online = online.run(warmup=5.0, duration=40.0)
        assert r_online.restart_time_mean < r_offline.restart_time_mean
        # The online redo pass still re-applied a comparable page set.
        off_stats = offline.recovery.crash_controller.restarts[0]
        on_stats = online.recovery.crash_controller.restarts[0]
        assert on_stats.redo_pages > 0 and off_stats.redo_pages > 0


class TestVolatileCacheLoss:
    def test_cache_loss_grows_redo_set(self):
        """Dropping the volatile controller caches at the crash re-enters
        their pages into the redo set: never fewer pages than the plain
        DPT replay of the identical trajectory."""
        plain = crash_system(crash_at=15.0)
        dropped = crash_system(crash_at=15.0, volatile_cache_loss=True)
        plain.run(warmup=5.0, duration=40.0)
        dropped.run(warmup=5.0, duration=40.0)
        pages_plain = plain.recovery.crash_controller.restarts[0].redo_pages
        pages_dropped = dropped.recovery.crash_controller.restarts[0].redo_pages
        assert pages_dropped >= pages_plain > 0

    def test_drop_volatile_caches_returns_db_pages_only(self):
        system = crash_system(crash_at=15.0, volatile_cache_loss=True)
        system.run(warmup=5.0, duration=40.0)
        # Re-drop after the run: whatever the caches hold now must be
        # database pages (partition index >= 0), never log pages.
        extra = system.bm.drop_volatile_caches()
        assert all(key[0] >= 0 for key in extra)
