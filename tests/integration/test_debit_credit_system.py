"""End-to-end integration tests: the paper's §4 claims, measured.

These run short Debit-Credit simulations and assert the published
qualitative results — hit-ratio patterns (footnote 6), I/O counts per
transaction, response-time orderings of Figs. 4.1–4.4, FORCE/NOFORCE
behaviour, and Table 4.2 cells (loose tolerances; the EXPERIMENTS.md
runs use longer windows).
"""

import pytest

from repro.core.config import UpdateStrategy
from repro.core.model import TransactionSystem
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    disk_with_nv_cache_write_buffer,
    memory_resident,
    nvem_resident,
    nvem_write_buffer,
    second_level_cache_scheme,
    ssd_resident,
)
from repro.workload.debit_credit import DebitCreditWorkload

RATE = 500.0


def run_scheme(scheme, strategy=UpdateStrategy.NOFORCE, buffer_size=2000,
               rate=RATE, duration=6.0, seed=1):
    config = debit_credit_config(scheme, update_strategy=strategy,
                                 buffer_size=buffer_size)
    system = TransactionSystem(config, DebitCreditWorkload(arrival_rate=rate),
                               seed=seed)
    results = system.run(warmup=3.0, duration=duration)
    assert not results.saturated
    return results, system


@pytest.fixture(scope="module")
def disk_results():
    return run_scheme(disk_only())[0]


class TestFootnote6HitRatios:
    """Footnote 6: per-record-type MM hit ratios at 2000 frames."""

    def test_aggregate_hit_ratio_72_5(self, disk_results):
        assert disk_results.hit_ratio("main_memory") * 100 == \
            pytest.approx(72.5, abs=1.5)

    def test_account_hit_ratio_zero(self, disk_results):
        assert disk_results.mm_hit_by_tag["ACCOUNT"] < 0.01

    def test_history_hit_ratio_95(self, disk_results):
        assert disk_results.mm_hit_by_tag["HISTORY"] * 100 == \
            pytest.approx(95.0, abs=1.0)

    def test_branch_hit_ratio_95(self, disk_results):
        assert disk_results.mm_hit_by_tag["BRANCH"] * 100 == \
            pytest.approx(95.0, abs=3.0)

    def test_teller_hit_ratio_100(self, disk_results):
        assert disk_results.mm_hit_by_tag["TELLER"] == pytest.approx(1.0)


class TestIOCounts:
    """§4.3: 'about 2 database I/Os and 1 log I/O occur per transaction'."""

    def test_two_db_ios_one_log_io(self, disk_results):
        db_ios = disk_results.io_per_tx.get("db_read", 0) + \
            disk_results.io_per_tx.get("db_write_sync", 0)
        assert db_ios == pytest.approx(2.2, abs=0.3)
        assert disk_results.io_per_tx.get("log_disk", 0) == \
            pytest.approx(1.0, abs=0.05)

    def test_noforce_write_back_per_miss(self, disk_results):
        # All pages are modified, so reads and write-backs pair up.
        assert disk_results.io_per_tx["db_write_sync"] == pytest.approx(
            disk_results.io_per_tx["db_read"], rel=0.1
        )

    def test_throughput_matches_arrival_rate(self, disk_results):
        assert disk_results.throughput == pytest.approx(RATE, rel=0.06)


class TestFig42Ordering:
    """Response-time ordering of the six §4.3 allocations."""

    @pytest.fixture(scope="class")
    def responses(self):
        out = {}
        for scheme_fn in (disk_only, disk_with_nv_cache_write_buffer,
                          nvem_write_buffer, ssd_resident, nvem_resident,
                          memory_resident):
            scheme = scheme_fn()
            out[scheme.name] = run_scheme(scheme)[0].response_time_ms
        return out

    def test_full_ordering(self, responses):
        assert responses["disk"] > responses["disk-cache-wb"]
        assert responses["disk-cache-wb"] > responses["memory"]
        assert responses["memory"] > responses["ssd"]
        assert responses["ssd"] > responses["nvem"]

    def test_write_buffer_halves_disk_response(self, responses):
        ratio = responses["disk"] / responses["disk-cache-wb"]
        assert ratio == pytest.approx(2.0, abs=0.5)

    def test_nvem_wb_slightly_better_than_cache_wb(self, responses):
        assert responses["nvem-wb"] <= responses["disk-cache-wb"]
        assert responses["nvem-wb"] > 0.8 * responses["disk-cache-wb"]

    def test_memory_exceeds_nvem_by_log_disk_io(self, responses):
        # §4.3: memory-resident pays one 6.4 ms log disk I/O (plus its
        # queueing) that the NVEM-resident configuration does not.
        assert responses["memory"] - responses["nvem"] == \
            pytest.approx(7.0, abs=2.5)


class TestForceVsNoforce:
    def test_force_worse_on_disk(self):
        force, _ = run_scheme(disk_only(), strategy=UpdateStrategy.FORCE)
        noforce, _ = run_scheme(disk_only())
        assert force.response_time_mean > 1.2 * noforce.response_time_mean

    def test_force_with_write_buffer_beats_disk_noforce(self):
        """Fig. 4.3: FORCE + write buffer < NOFORCE on plain disks."""
        force_wb, _ = run_scheme(disk_with_nv_cache_write_buffer(),
                                 strategy=UpdateStrategy.FORCE)
        noforce_disk, _ = run_scheme(disk_only())
        assert force_wb.response_time_mean < noforce_disk.response_time_mean

    def test_force_noforce_close_on_nvem(self):
        force, _ = run_scheme(nvem_resident(),
                              strategy=UpdateStrategy.FORCE)
        noforce, _ = run_scheme(nvem_resident())
        assert force.response_time_ms == pytest.approx(
            noforce.response_time_ms, abs=2.0
        )

    def test_force_has_no_replacement_writes(self):
        """§4.4 fn. 7: with FORCE there are always clean pages to
        replace, so misses trigger no write-backs."""
        force, _ = run_scheme(disk_only(), strategy=UpdateStrategy.FORCE)
        write_backs = force.io_per_tx.get("db_write_sync", 0)
        # ~3 forced writes, but no miss-triggered write-backs on top.
        assert write_backs == pytest.approx(3.0, abs=0.3)


class TestTable42Cells:
    """Spot checks against Table 4.2 (see experiments for the full grid)."""

    def test_volatile_cache_dies_at_mm_1000(self):
        results, _ = run_scheme(second_level_cache_scheme("volatile", 1000),
                                buffer_size=1000)
        assert results.hit_ratio("disk_cache") * 100 < 0.5  # paper: 0

    def test_nv_cache_retains_hits_at_mm_1000(self):
        results, _ = run_scheme(
            second_level_cache_scheme("nonvolatile", 1000),
            buffer_size=1000,
        )
        assert results.hit_ratio("disk_cache") * 100 == \
            pytest.approx(3.8, abs=1.0)

    def test_nvem_beats_nv_disk_cache(self):
        nvem, _ = run_scheme(second_level_cache_scheme("nvem", 1000),
                             buffer_size=500)
        nv, _ = run_scheme(second_level_cache_scheme("nonvolatile", 1000),
                           buffer_size=500)
        assert nvem.hit_ratio("nvem_cache") > nv.hit_ratio("disk_cache")

    def test_aggregate_buffer_equivalence(self):
        """§4.5: combined MM+NVEM hits depend only on aggregate size."""
        a, _ = run_scheme(second_level_cache_scheme("nvem", 1000),
                          buffer_size=500)
        b, _ = run_scheme(second_level_cache_scheme("nvem", 500),
                          buffer_size=1000)
        combined_a = a.hit_ratio("main_memory") + a.hit_ratio("nvem_cache")
        combined_b = b.hit_ratio("main_memory") + b.hit_ratio("nvem_cache")
        assert combined_a == pytest.approx(combined_b, abs=0.01)

    def test_force_lowers_second_level_hits(self):
        noforce, _ = run_scheme(second_level_cache_scheme("nvem", 1000),
                                buffer_size=1000)
        force, _ = run_scheme(second_level_cache_scheme("nvem", 1000),
                              strategy=UpdateStrategy.FORCE,
                              buffer_size=1000)
        assert force.hit_ratio("nvem_cache") < \
            noforce.hit_ratio("nvem_cache")


class TestSystemHealth:
    def test_buffer_invariants_after_run(self):
        for scheme_fn in (disk_only, nvem_resident):
            _, system = run_scheme(scheme_fn(), duration=4.0)
            assert system.bm.check_invariants() == []

    def test_nvem_cache_invariants_after_run(self):
        _, system = run_scheme(second_level_cache_scheme("nvem", 500),
                               buffer_size=500, duration=4.0)
        assert system.bm.check_invariants() == []

    def test_no_locks_leak(self):
        _, system = run_scheme(disk_only(), duration=4.0)
        system.env.run(until=system.env.now + 2.0)
        # After draining, at most the currently active txs hold locks.
        assert system.locks.held_count() <= 4 * system.tm.active + 8

    def test_determinism_same_seed(self):
        a, _ = run_scheme(disk_only(), duration=4.0, seed=9)
        b, _ = run_scheme(disk_only(), duration=4.0, seed=9)
        assert a.committed == b.committed
        assert a.response_time_mean == pytest.approx(b.response_time_mean,
                                                     rel=1e-12)

    def test_different_seeds_differ(self):
        a, _ = run_scheme(disk_only(), duration=4.0, seed=1)
        b, _ = run_scheme(disk_only(), duration=4.0, seed=2)
        assert a.committed != b.committed or \
            a.response_time_mean != b.response_time_mean
