"""Integration tests for §4.6 (trace) and §4.7 (lock contention)."""

import pytest

from repro.core.config import CCMode
from repro.core.model import TransactionSystem
from repro.experiments.fig4_8 import build_config
from repro.experiments.trace_setup import (
    trace_config,
    trace_for,
    trace_workload,
)
from repro.workload.synthetic import SyntheticWorkload


def run_contention(small_alloc, large_alloc, log_device, cc_mode, rate,
                   duration=6.0):
    config = build_config(small_alloc, large_alloc, log_device, cc_mode,
                          rate)
    system = TransactionSystem(config, SyntheticWorkload(config))
    return system.run(warmup=3.0, duration=duration)


class TestLockContention:
    """§4.7: page locking thrashes on disk, not on NVEM."""

    def test_disk_page_locking_thrashes(self):
        low = run_contention("db0", "db0", "log0", CCMode.PAGE, 50)
        high = run_contention("db0", "db0", "log0", CCMode.PAGE, 200,
                              duration=8.0)
        assert not low.saturated
        # Beyond the thrash point: either flagged saturated or response
        # times explode by an order of magnitude.
        assert high.saturated or \
            high.response_time_mean > 5 * low.response_time_mean

    def test_object_locking_removes_bottleneck(self):
        results = run_contention("db0", "db0", "log0", CCMode.OBJECT, 200,
                                 duration=8.0)
        assert not results.saturated
        assert results.throughput == pytest.approx(200, rel=0.1)

    def test_nvem_resident_page_locking_fine(self):
        from repro.core.config import NVEM
        results = run_contention(NVEM, NVEM, NVEM, CCMode.PAGE, 200,
                                 duration=8.0)
        assert not results.saturated
        assert results.throughput == pytest.approx(200, rel=0.1)
        assert results.response_time_ms < 50

    def test_lock_waits_dominate_thrashing_response(self):
        high = run_contention("db0", "db0", "log0", CCMode.PAGE, 150,
                              duration=8.0)
        if not high.saturated:
            assert high.composition["lock_wait"] > \
                high.composition["sync_io"] + high.composition["async_io"]

    def test_mixed_better_than_disk_under_page_locks(self):
        from repro.core.config import NVEM
        disk = run_contention("db0", "db0", "log0", CCMode.PAGE, 100,
                              duration=8.0)
        mixed = run_contention(NVEM, "db0", NVEM, CCMode.PAGE, 100,
                               duration=8.0)
        assert mixed.response_time_mean < disk.response_time_mean


class TestTraceWorkloadIntegration:
    @pytest.fixture(scope="class")
    def trace(self):
        return trace_for(fast=True)

    def run_kind(self, trace, kind, mm_size=500, second=2000,
                 duration=12.0):
        config = trace_config(trace, kind, mm_size, second_level=second)
        system = TransactionSystem(config, trace_workload(trace))
        return system.run(warmup=4.0, duration=duration)

    def test_read_dominated(self, trace):
        assert trace.write_fraction < 0.03

    def test_second_level_flattens_mm_curve(self, trace):
        """Fig. 4.6: with an NVEM cache, small MM buffers suffice."""
        small_no2nd = self.run_kind(trace, "none", mm_size=250)
        small_nvem = self.run_kind(trace, "nvem", mm_size=250)
        assert small_nvem.response_time_mean < \
            0.6 * small_no2nd.response_time_mean

    def test_nvem_beats_disk_caches(self, trace):
        vol = self.run_kind(trace, "volatile", mm_size=500)
        nvem = self.run_kind(trace, "nvem", mm_size=500)
        assert nvem.response_time_mean < vol.response_time_mean

    def test_volatile_close_to_nonvolatile_for_reads(self, trace):
        """§4.6: read-dominated loads make the two disk caches alike."""
        vol = self.run_kind(trace, "volatile", mm_size=500)
        nv = self.run_kind(trace, "nonvolatile", mm_size=500)
        vol_hits = vol.hit_ratio("disk_cache")
        nv_hits = nv.hit_ratio("disk_cache")
        assert vol_hits == pytest.approx(nv_hits, abs=0.03)

    def test_nvem_resident_fastest(self, trace):
        resident = self.run_kind(trace, "nvem-resident", mm_size=500)
        ssd = self.run_kind(trace, "ssd", mm_size=500)
        assert resident.response_time_mean <= ssd.response_time_mean
