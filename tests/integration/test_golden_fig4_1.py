"""Golden-output pin for the fig4_1 fast sweep.

The determinism contract of the simulator ("same seed, same trajectory,
bit for bit") is what allows kernel optimizations to be verified by
output diffing.  This test freezes that contract: the SHA-256 of the
canonical JSON export of ``fig4_1`` (fast profile, serial) must never
change unless a PR *intends* to change simulation behaviour — in which
case updating the hash below is the explicit, reviewable act.

Any "optimization" that perturbs RNG draw order or ``(time, seq)``
event dispatch order fails here loudly instead of silently shifting
every published figure.
"""

import hashlib
import json

import pytest

from repro.experiments.api import ExperimentRunner, get_experiment
from repro.experiments.export import experiment_to_dict

#: sha256 of json.dumps(experiment_to_dict(...), sort_keys=True,
#: separators=(",", ":")) for fig4_1, fast profile, serial runner.
#: Pinned on PR 4 and byte-identical to the PR-3 output (the fast-path
#: work preserved the trajectory exactly).
GOLDEN_SHA256 = \
    "ed08aabf3ec4573163644e1c7e86790698ab027a3edcf72b151411475537272c"


def _digest(result) -> str:
    payload = json.dumps(experiment_to_dict(result), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


GOLDEN_MESSAGE = (
    "fig4_1 fast output changed: the simulation trajectory is no "
    "longer bit-identical to the pinned baseline. If this change "
    "is intentional (a behavioural fix, a new model feature), "
    "update GOLDEN_SHA256; if it comes from a performance "
    "refactor, the refactor broke the determinism contract."
)


@pytest.mark.slow
def test_fig4_1_fast_output_checksum_is_pinned():
    result = ExperimentRunner().run_one(get_experiment("fig4_1"),
                                        profile="fast")
    assert _digest(result) == GOLDEN_SHA256, GOLDEN_MESSAGE


@pytest.mark.slow
def test_fig4_1_checksum_pinned_under_cache_and_resume(tmp_path):
    """The result cache may never perturb a figure: the pinned golden
    checksum must hold on the cache-miss (cold), cache-hit (warm) and
    --resume paths exactly as on the plain serial path."""
    from repro.experiments.store import ResultStore

    store = ResultStore(str(tmp_path))
    spec = get_experiment("fig4_1")

    cold_runner = ExperimentRunner(store=store, journal=True)
    cold = cold_runner.run_one(spec, profile="fast")
    assert _digest(cold) == GOLDEN_SHA256, "cache-miss: " + GOLDEN_MESSAGE
    assert cold_runner.last_stats.hits == 0

    warm_runner = ExperimentRunner(store=store)
    warm = warm_runner.run_one(spec, profile="fast")
    assert _digest(warm) == GOLDEN_SHA256, "cache-hit: " + GOLDEN_MESSAGE
    assert warm_runner.last_stats.hits == warm_runner.last_stats.total

    # Resume from the cold run's journal with the point store wiped:
    # every point reloads from the checkpoint, none recompute.
    store.clear()
    resume_runner = ExperimentRunner(store=ResultStore(str(tmp_path)),
                                     resume=True)
    resumed = resume_runner.run_one(spec, profile="fast")
    assert _digest(resumed) == GOLDEN_SHA256, "--resume: " + GOLDEN_MESSAGE
    assert resume_runner.last_stats.resumed == \
        resume_runner.last_stats.total
