"""Tests for the distributed (data-sharing) extension."""

import pytest

from repro.distributed import (
    CouplingConfig,
    DistributedConfig,
    DistributedSystem,
    GlobalExtendedMemory,
    MessageBus,
)
from repro.core.config import NVEMConfig
from repro.core.cpu import CPUPool
from repro.core.config import CMConfig
from repro.experiments.defaults import debit_credit_config, disk_only
from repro.sim import Environment, RandomStreams
from repro.storage.nvem import NVEMDevice
from repro.workload.debit_credit import DebitCreditWorkload


def run_distributed(nodes=2, gem=0, rate=200.0, duration=4.0,
                    coupling=None, routing="round_robin", seed=1):
    config = debit_credit_config(disk_only())
    dconfig = DistributedConfig(
        num_nodes=nodes, gem_capacity=gem, routing=routing,
        coupling=coupling or CouplingConfig.nvem_coupling(),
    )
    system = DistributedSystem(config, dconfig,
                               DebitCreditWorkload(arrival_rate=rate),
                               seed=seed)
    results = system.run(warmup=2.0, duration=duration)
    return results, system


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedConfig(num_nodes=0).validate()
        with pytest.raises(ValueError):
            DistributedConfig(num_nodes=2, central_lock_node=5).validate()
        with pytest.raises(ValueError):
            DistributedConfig(routing="carrier-pigeon").validate()
        with pytest.raises(ValueError):
            CouplingConfig(latency=-1).validate()

    def test_coupling_presets(self):
        nvem = CouplingConfig.nvem_coupling()
        net = CouplingConfig.network_coupling()
        assert nvem.latency < net.latency
        assert nvem.instr_send < net.instr_send


class TestMessageBus:
    def test_round_trip_charges_both_cpus_and_latency(self):
        env = Environment()
        streams = RandomStreams(1)
        cm = CMConfig(num_cpus=1, mips=50.0)
        cpu_a = CPUPool(env, streams, cm)
        cpu_b = CPUPool(env, streams, cm)
        bus = MessageBus(env, CouplingConfig(instr_send=50_000,
                                             instr_receive=50_000,
                                             latency=0.001))

        def proc(env):
            yield from bus.round_trip(None, cpu_a, cpu_b)
            return env.now

        finished = env.run(until=env.process(proc(env)))
        # send 1ms + latency 1ms + (recv+send) 2ms + latency 1ms + recv 1ms
        assert finished == pytest.approx(0.006)
        assert bus.stats.get("messages") == 2

    def test_one_way(self):
        env = Environment()
        streams = RandomStreams(1)
        cm = CMConfig(num_cpus=1, mips=50.0)
        cpu_a = CPUPool(env, streams, cm)
        cpu_b = CPUPool(env, streams, cm)
        bus = MessageBus(env, CouplingConfig(instr_send=50_000,
                                             instr_receive=50_000,
                                             latency=0.002))

        def proc(env):
            yield from bus.one_way(None, cpu_a, cpu_b)
            return env.now

        finished = env.run(until=env.process(proc(env)))
        assert finished == pytest.approx(0.004)
        assert bus.stats.get("messages") == 1


class TestGEM:
    def make(self, capacity=4):
        env = Environment()
        device = NVEMDevice(env, RandomStreams(1), NVEMConfig())
        return env, GlobalExtendedMemory(env, device, capacity)

    def test_probe_keeps_copy(self):
        _, gem = self.make()
        gem.install(("k", 1), dirty=False)
        assert gem.probe(("k", 1)) is not None
        assert ("k", 1) in gem  # still cached after the hit

    def test_install_refreshes_existing(self):
        _, gem = self.make()
        entry = gem.install(("k", 1), dirty=False)
        again = gem.install(("k", 1), dirty=True)
        assert again is entry
        assert entry.dirty

    def test_make_room_prefers_clean(self):
        _, gem = self.make(capacity=2)
        gem.install(("k", 1), dirty=True)
        gem.install(("k", 2), dirty=False)
        gem.install(("k", 3), dirty=False)  # displaces clean page 2
        assert ("k", 1) in gem
        assert ("k", 2) not in gem

    def test_install_skipped_when_all_dirty(self):
        _, gem = self.make(capacity=1)
        gem.install(("k", 1), dirty=True)
        assert gem.install(("k", 2), dirty=False) is None

    def test_invalidate_clean_only(self):
        _, gem = self.make()
        entry = gem.install(("k", 1), dirty=True)
        assert not gem.invalidate(("k", 1))  # dirty: disk not yet current
        gem.mark_clean(("k", 1), entry)
        assert gem.invalidate(("k", 1))

    def test_capacity_validation(self):
        env = Environment()
        device = NVEMDevice(env, RandomStreams(1), NVEMConfig())
        with pytest.raises(ValueError):
            GlobalExtendedMemory(env, device, 0)


class TestDistributedSystem:
    def test_single_node_equivalent_workload(self):
        results, system = run_distributed(nodes=1)
        assert results.committed > 200
        assert not results.saturated
        assert system.message_stats() == {}

    def test_round_robin_balances_nodes(self):
        results, system = run_distributed(nodes=2)
        per_node = [n.committed for n in system.node_results()]
        assert sum(per_node) >= results.committed
        assert min(per_node) > 0.4 * max(per_node)

    def test_remote_lock_requests_cost_messages(self):
        results, system = run_distributed(nodes=2)
        msgs = system.message_stats()
        # 3 locked accesses/tx, half the txs remote -> ~3 round trips
        # (6 msgs) per remote tx plus 1 invalidation per commit.
        assert msgs.get("lock_request", 0) > 0
        assert msgs.get("invalidation", 0) > 0

    def test_gem_improves_response_time(self):
        no_gem, _ = run_distributed(nodes=2, gem=0)
        with_gem, _ = run_distributed(nodes=2, gem=2000)
        assert with_gem.response_time_mean < no_gem.response_time_mean

    def test_gem_absorbs_writes(self):
        results, system = run_distributed(nodes=2, gem=2000)
        # Write-backs and commit propagation land in GEM, not on disk
        # synchronously.
        assert results.io_per_tx.get("nvem_cache_write", 0) > 1.0
        assert results.io_per_tx.get("db_write_sync", 0) < 0.2

    def test_invalidations_drop_stale_copies(self):
        """BRANCH/TELLER pages are shared: commits on one node must
        invalidate copies on the other."""
        results, system = run_distributed(nodes=2, gem=2000,
                                          duration=6.0)
        assert system.invalidation_stats.get("pages_dropped") > 0

    def test_network_coupling_slower_than_nvem(self):
        nvem, _ = run_distributed(
            nodes=2, coupling=CouplingConfig.nvem_coupling())
        net, _ = run_distributed(
            nodes=2, coupling=CouplingConfig.network_coupling())
        assert net.response_time_mean > nvem.response_time_mean

    def test_more_nodes_carry_higher_rates(self):
        """Aggregate CPU scales with nodes: 4 nodes sustain a rate that
        saturates 1 node (800 TPS > single-system CPU capacity)."""
        one, _ = run_distributed(nodes=1, rate=900.0, duration=5.0)
        four, _ = run_distributed(nodes=4, rate=900.0, duration=5.0,
                                  gem=2000)
        assert one.saturated or one.response_time_mean > 0.5
        assert not four.saturated
        assert four.throughput == pytest.approx(900, rel=0.1)

    def test_random_routing(self):
        results, system = run_distributed(nodes=2, routing="random")
        per_node = [n.committed for n in system.node_results()]
        assert all(count > 0 for count in per_node)

    def test_workloads_unchanged(self):
        """Any existing workload runs on the distributed system."""
        from repro.experiments.fig4_8 import build_config
        from repro.core.config import CCMode
        from repro.workload.synthetic import SyntheticWorkload

        config = build_config("db0", "db0", "log0", CCMode.OBJECT, 100.0)
        dconfig = DistributedConfig(num_nodes=2)
        system = DistributedSystem(config, dconfig,
                                   SyntheticWorkload(config), seed=2)
        results = system.run(warmup=2.0, duration=4.0)
        assert results.committed > 100

    def test_node_results_report_measured_window_only(self):
        """Regression: node shares are committed-count deltas over the
        measured window, consistent with the committed-only reporting
        rule of core/tm.py — the lifetime ``tm.completed`` counters
        also include warmup transactions and used to leak into the
        per-node shares, overcounting ``results.committed``."""
        results, system = run_distributed(nodes=2, rate=200.0)
        per_node = [n.committed for n in system.node_results()]
        assert sum(per_node) == results.committed
        # The lifetime counters really are larger (warmup committed
        # something), so the delta is doing actual work here.
        assert sum(n.tm.completed for n in system.nodes) > results.committed
