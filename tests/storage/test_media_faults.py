"""Device-fault gates: schedule validation, deterministic retry/backoff,
loss blocking, and the empty-schedule purity contract."""

import pytest

from repro.core.config import (
    LOG_COPY_MIRROR,
    DeviceFault,
    MediaConfig,
)
from repro.sim import Environment
from repro.storage.faults import DeviceFaultGate, MediaState

from tests.recovery.conftest import (
    media_synthetic_config,
    media_synthetic_system,
)


class FakeDevice:
    """Minimal inner device: fixed-latency read/write, call counting."""

    def __init__(self, env, name="db0", latency=0.001):
        self.env = env
        self.name = name
        self.latency = latency
        self.cache = None
        self.reads = 0
        self.writes = 0

    def read(self, key):
        self.reads += 1
        yield self.env.timeout(self.latency)
        return None

    def write(self, key):
        self.writes += 1
        yield self.env.timeout(self.latency)
        return None

    def reset_stats(self):
        pass

    def utilization_report(self):
        return {}


def gated_device(faults, **cfg_kwargs):
    env = Environment()
    cfg = MediaConfig(enabled=True, faults=tuple(faults), **cfg_kwargs)
    state = MediaState(env, cfg)
    inner = FakeDevice(env)
    return env, state, inner, DeviceFaultGate(inner, state)


class TestConfigValidation:
    def test_fault_kinds_validated(self):
        with pytest.raises(ValueError):
            DeviceFault(device="db0", time=1.0, kind="bogus").validate()
        with pytest.raises(ValueError):
            DeviceFault(device="db0", time=1.0, kind="transient",
                        duration=0.0).validate()
        with pytest.raises(ValueError):
            DeviceFault(device="db0", time=1.0, kind="loss",
                        duration=2.0).validate()
        with pytest.raises(ValueError):
            DeviceFault(device="", time=1.0).validate()

    def test_faults_require_enabled_subsystem(self):
        with pytest.raises(ValueError):
            media_synthetic_config(
                media_enabled=False,
                faults=(DeviceFault(device="db0", time=1.0),))

    def test_unknown_fault_target_rejected(self):
        with pytest.raises(ValueError):
            media_synthetic_config(
                faults=(DeviceFault(device="nosuch", time=1.0),))

    def test_mirror_copy_fault_requires_mirroring(self):
        with pytest.raises(ValueError):
            media_synthetic_config(
                log_device="nvem",
                faults=(DeviceFault(device=LOG_COPY_MIRROR, time=1.0),))

    def test_log_mirror_requires_nvem_log(self):
        with pytest.raises(ValueError):
            media_synthetic_config(log_mirror=True)


class TestRetryBackoff:
    def test_no_window_is_pure_delegation(self):
        env, state, inner, gate = gated_device(
            [DeviceFault(device="db0", time=5.0, kind="transient",
                         duration=1.0)])
        done = env.process(gate.read((0, 1)))
        env.run(until=done)
        assert inner.reads == 1
        assert state.io_retries == 0
        assert env.now == pytest.approx(inner.latency)

    def test_retries_until_window_closes_deterministically(self):
        env, state, inner, gate = gated_device(
            [DeviceFault(device="db0", time=1.0, kind="transient",
                         duration=0.2)],
            error_latency=0.01, retry_backoff=0.02,
            retry_backoff_factor=2.0, retry_backoff_max=0.05)

        def driver():
            yield env.timeout(1.0)
            yield from gate.read((0, 7))

        done = env.process(driver())
        env.run(until=done)
        # Attempts at 1.00, 1.03, 1.08, 1.14, 1.20 (backoff 0.02,
        # 0.04, 0.05, 0.05 after the 0.01 error latency each): the
        # fourth retry lands exactly at the window edge and succeeds.
        assert state.io_retries == 4
        assert state.retries_by_device == {"db0": 4}
        assert env.now == pytest.approx(1.20 + inner.latency)
        assert inner.reads == 1

    def test_identical_schedules_replay_identically(self):
        times = []
        for _ in range(2):
            env, state, inner, gate = gated_device(
                [DeviceFault(device="db0", time=0.5, kind="transient",
                             duration=0.3)])

            def driver():
                yield env.timeout(0.6)
                yield from gate.write((1, 2))

            done = env.process(driver())
            env.run(until=done)
            times.append((env.now, state.io_retries))
        assert times[0] == times[1]


class TestLossBlocking:
    def test_access_blocks_until_page_restored(self):
        env, state, inner, gate = gated_device(
            [DeviceFault(device="db0", time=1.0, kind="loss")])
        state.mark_lost("db0")
        finished = []

        def reader():
            yield from gate.read((0, 3))
            finished.append(env.now)

        env.process(reader())
        env.run(until=2.0)
        assert not finished  # blocked: page not yet restored
        state.begin_restore("db0")
        state.page_restored("db0", (0, 3))
        env.run(until=3.0)
        assert finished and finished[0] == pytest.approx(
            2.0 + inner.latency)

    def test_finish_restore_releases_everything(self):
        env, state, inner, gate = gated_device(
            [DeviceFault(device="db0", time=1.0, kind="loss")])
        state.mark_lost("db0")
        state.begin_restore("db0")
        finished = []

        def reader(key):
            yield from gate.read(key)
            finished.append(key)

        for page in range(4):
            env.process(reader((0, page)))
        env.run(until=1.0)
        assert not finished
        state.finish_restore("db0")
        env.run(until=2.0)
        assert sorted(finished) == [(0, page) for page in range(4)]
        assert "db0" not in state.lost

    def test_availability_queries(self):
        env = Environment()
        state = MediaState(env, MediaConfig(
            enabled=True,
            faults=(DeviceFault(device="db0", time=1.0, kind="loss"),)))
        assert state.available("db0", (0, 1))  # not lost yet
        state.mark_lost("db0")
        assert not state.available("db0", (0, 1))
        state.begin_restore("db0")
        state.page_restored("db0", (0, 1))
        assert state.available("db0", (0, 1))
        assert not state.available("db0", (0, 2))
        state.finish_restore("db0")
        assert state.available("db0", (0, 2))


class TestEmptySchedulePurity:
    def test_no_gates_no_archive_without_faults(self):
        system = media_synthetic_system()
        assert system.storage.media_state is not None
        assert system.storage.archive_device is None
        assert system.storage.media_tracker is None
        for unit in system.storage.units.values():
            assert not isinstance(unit, DeviceFaultGate)

    def test_gates_only_around_named_devices(self):
        system = media_synthetic_system(
            faults=(DeviceFault(device="db0", time=1e9, kind="loss"),))
        assert isinstance(system.storage.units["db0"], DeviceFaultGate)
        assert not isinstance(system.storage.units["log0"],
                              DeviceFaultGate)
        assert system.storage.archive_device is not None
        assert system.storage.inner_unit("db0") is \
            system.storage.units["db0"].inner