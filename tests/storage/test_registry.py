"""Tests for the device/policy registries and the new device models."""

import pathlib

import pytest

from repro.core.config import (
    CMConfig,
    DeviceSpec,
    DiskUnitConfig,
    LogAllocation,
    NVEMConfig,
    PartitionConfig,
    PolicySpec,
    SystemConfig,
)
from repro.sim import Environment, RandomStreams
from repro.storage import (
    BatteryDRAMDevice,
    ClockPolicy,
    FlashSSDDevice,
    LRUCache,
    StorageSubsystem,
    TwoQPolicy,
    device_kinds,
    make_device,
    make_policy,
    policy_kinds,
    register_device,
)
from repro.storage.cache import VolatileCachePolicy


def drive(env, gen):
    return env.run(until=env.process(gen))


class TestRegistryResolution:
    def test_builtin_device_kinds(self):
        kinds = set(device_kinds())
        assert {"regular", "volatile_cache", "nonvolatile_cache", "ssd",
                "flash_ssd", "battery_dram", "nvem"} <= kinds
        assert len(kinds) >= 4

    def test_builtin_policy_kinds(self):
        assert {"lru", "clock", "2q"} <= set(policy_kinds())

    def test_unknown_device_kind_raises(self):
        spec = DeviceSpec(kind="tape", name="t0")
        with pytest.raises(KeyError, match="tape"):
            make_device(spec, Environment(), RandomStreams(1))

    def test_unknown_policy_kind_raises(self):
        with pytest.raises(KeyError, match="fifo"):
            make_policy("fifo", 10)

    def test_make_policy_accepts_spec_tuple_and_string(self):
        assert isinstance(make_policy("lru", 4), LRUCache)
        assert isinstance(make_policy(("clock", {}), 4), ClockPolicy)
        spec = PolicySpec(kind="2q", params={"kin": 2})
        policy = make_policy(spec, 8)
        assert isinstance(policy, TwoQPolicy)
        assert policy.kin == 2

    def test_custom_device_registration(self):
        created = {}

        @register_device("test_null_device")
        def _factory(env, streams, spec):
            created["spec"] = spec
            return BatteryDRAMDevice(env, streams, name=spec.name)

        spec = DeviceSpec(kind="test_null_device", name="n0")
        device = make_device(spec, Environment(), RandomStreams(1))
        assert device.name == "n0"
        assert created["spec"] is spec


class TestNewDevices:
    def test_flash_read_write_asymmetry(self):
        env = Environment()
        flash = FlashSSDDevice(env, RandomStreams(1), name="f0",
                               num_controllers=1, num_channels=1)
        read = drive(env, flash.read((0, 1)))
        write = drive(env, flash.write((0, 1)))
        assert read.level == "flash" and write.level == "flash"
        assert write.latency > read.latency
        assert write.latency - read.latency == pytest.approx(
            flash.write_delay - flash.read_delay
        )

    def test_flash_channels_striped_by_page(self):
        env = Environment()
        flash = FlashSSDDevice(env, RandomStreams(1), name="f0",
                               num_channels=4)
        assert flash._channel_for((0, 5)) is flash.channels[1]
        assert flash._channel_for(8) is flash.channels[0]

    def test_battery_dram_symmetric_and_fast(self):
        env = Environment()
        dram = BatteryDRAMDevice(env, RandomStreams(1), name="b0")
        read = drive(env, dram.read((0, 1)))
        write = drive(env, dram.write((0, 1)))
        assert read.level == "battery_dram"
        assert read.latency == pytest.approx(write.latency)
        assert read.latency < 0.001

    def test_utilization_reports(self):
        env = Environment()
        flash = FlashSSDDevice(env, RandomStreams(1), name="f0")
        drive(env, flash.write((0, 1)))
        report = flash.utilization_report()
        assert set(report) == {"controllers", "channels"}
        flash.reset_stats()
        assert flash.stats.total() == 0


class TestConfigSpecs:
    def build_config(self):
        config = SystemConfig(
            partitions=[
                PartitionConfig("hot", num_objects=100,
                                allocation="flash0"),
                PartitionConfig("cold", num_objects=100,
                                allocation="unit0"),
            ],
            disk_units=[DiskUnitConfig(name="unit0")],
            devices=[DeviceSpec(kind="flash_ssd", name="flash0")],
            nvem=NVEMConfig(),
            cm=CMConfig(),
            log=LogAllocation(device="unit0"),
        )
        config.validate()
        return config

    def test_device_specs_merges_both_styles(self):
        config = self.build_config()
        specs = {s.name: s.kind for s in config.device_specs()}
        assert specs == {"unit0": "regular", "flash0": "flash_ssd"}

    def test_hierarchy_resolves_spec_devices(self):
        config = self.build_config()
        env = Environment()
        storage = StorageSubsystem(env, RandomStreams(1), config)
        assert isinstance(storage.units["flash0"], FlashSSDDevice)
        result = drive(env, storage.read_page(0, "hot", 3))
        assert result.level == "flash"

    def test_duplicate_names_across_styles_rejected(self):
        config = self.build_config()
        config.devices.append(DeviceSpec(kind="battery_dram",
                                         name="unit0"))
        with pytest.raises(ValueError, match="duplicate"):
            config.validate()

    def test_nvem_kind_rejected_in_devices_list(self):
        config = self.build_config()
        config.devices.append(DeviceSpec(kind="nvem", name="x"))
        with pytest.raises(ValueError, match="nvem"):
            config.validate()

    def test_disk_cache_policy_spec(self):
        cache = VolatileCachePolicy(8, policy=PolicySpec(kind="clock"))
        assert isinstance(cache.lru, ClockPolicy)


class TestLayering:
    def test_no_concrete_storage_imports_outside_storage(self):
        """Modules outside storage/ must use the registries, not the
        concrete NVEMDevice/DiskUnit/LRUCache classes."""
        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        offenders = []
        for path in src.rglob("*.py"):
            if "storage" in path.parts:
                continue
            text = path.read_text()
            for name in ("NVEMDevice", "DiskUnit(", "LRUCache"):
                if name in text:
                    offenders.append(f"{path.name}: {name}")
        assert offenders == []
