"""Unit tests for disk units (repro.storage.disk) and NVEM device."""

import pytest

from repro.core.config import (
    DiskUnitConfig,
    DiskUnitType,
    Distribution,
    NVEMConfig,
)
from repro.sim import Environment, RandomStreams
from repro.storage.disk import DiskUnit
from repro.storage.nvem import NVEMDevice


def constant_unit(**overrides):
    """A unit with constant service times for exact latency checks."""
    params = dict(
        name="u0",
        unit_type=DiskUnitType.REGULAR,
        num_controllers=1,
        controller_delay=0.001,
        trans_delay=0.0004,
        num_disks=1,
        disk_delay=0.015,
        controller_distribution=Distribution.CONSTANT,
        disk_distribution=Distribution.CONSTANT,
        striping="page",  # deterministic page->disk mapping for tests
    )
    params.update(overrides)
    return DiskUnitConfig(**params)


def run_io(env, gen):
    """Drive one I/O generator to completion, returning its IOResult."""
    return env.run(until=env.process(gen))


class TestRegularDisk:
    def test_read_latency_composition(self):
        env = Environment()
        unit = DiskUnit(env, RandomStreams(1), constant_unit())
        result = run_io(env, unit.read((0, 7)))
        # 1 ms controller + 15 ms disk + 0.4 ms transfer = 16.4 ms (§4.1)
        assert result.latency == pytest.approx(0.0164)
        assert result.level == "disk"

    def test_write_latency_composition(self):
        env = Environment()
        unit = DiskUnit(env, RandomStreams(1), constant_unit())
        result = run_io(env, unit.write((0, 7)))
        assert result.latency == pytest.approx(0.0164)
        assert result.level == "disk"

    def test_disk_queueing_serializes(self):
        env = Environment()
        unit = DiskUnit(env, RandomStreams(1), constant_unit(num_controllers=4))
        done = []

        def io(env, tag):
            result = yield from unit.read((0, 4))  # same disk
            done.append((tag, env.now))

        env.process(io(env, "a"))
        env.process(io(env, "b"))
        env.run()
        # Second I/O waits for the disk (controller is parallel).
        assert done[0][1] == pytest.approx(0.0164)
        assert done[1][1] == pytest.approx(0.0164 + 0.015, abs=1e-3)

    def test_striping_parallelizes_across_disks(self):
        env = Environment()
        unit = DiskUnit(
            env, RandomStreams(1),
            constant_unit(num_disks=2, num_controllers=2),
        )
        done = []

        def io(env, page):
            yield from unit.read((0, page))
            done.append(env.now)

        env.process(io(env, 0))  # disk 0
        env.process(io(env, 1))  # disk 1
        env.run()
        assert done[0] == pytest.approx(0.0164)
        assert done[1] == pytest.approx(0.0164)

    def test_stats_counters(self):
        env = Environment()
        unit = DiskUnit(env, RandomStreams(1), constant_unit())
        run_io(env, unit.read((0, 1)))
        run_io(env, unit.write((0, 2)))
        assert unit.stats.get("read") == 1
        assert unit.stats.get("write") == 1

    def test_random_striping_spreads_hot_page(self):
        """Repeated I/O to one page uses all disks under random striping."""
        env = Environment()
        unit = DiskUnit(
            env, RandomStreams(1),
            constant_unit(num_disks=4, num_controllers=4,
                          striping="random"),
        )

        def io(env):
            for _ in range(40):
                yield from unit.write((0, 7))

        env.run(until=env.process(io(env)))
        used = sum(1 for d in unit.disks if d.monitor.completions > 0)
        assert used == 4

    def test_page_striping_pins_hot_page(self):
        env = Environment()
        unit = DiskUnit(
            env, RandomStreams(1),
            constant_unit(num_disks=4, num_controllers=4, striping="page"),
        )

        def io(env):
            for _ in range(10):
                yield from unit.write((0, 7))

        env.run(until=env.process(io(env)))
        used = [i for i, d in enumerate(unit.disks)
                if d.monitor.completions > 0]
        assert used == [3]  # page 7 mod 4


class TestSSD:
    def test_ssd_latency(self):
        env = Environment()
        unit = DiskUnit(
            env, RandomStreams(1),
            constant_unit(unit_type=DiskUnitType.SSD),
        )
        result = run_io(env, unit.read((0, 7)))
        # 1 ms controller + 0.4 ms transfer = 1.4 ms (§4.1)
        assert result.latency == pytest.approx(0.0014)
        assert result.level == "ssd"

    def test_ssd_write_same_latency(self):
        env = Environment()
        unit = DiskUnit(
            env, RandomStreams(1),
            constant_unit(unit_type=DiskUnitType.SSD),
        )
        result = run_io(env, unit.write((0, 7)))
        assert result.latency == pytest.approx(0.0014)


class TestVolatileCacheUnit:
    def make(self, env, cache_size=10):
        return DiskUnit(
            env, RandomStreams(1),
            constant_unit(unit_type=DiskUnitType.VOLATILE_CACHE,
                          cache_size=cache_size),
        )

    def test_read_miss_then_hit_latency(self):
        env = Environment()
        unit = self.make(env)
        miss = run_io(env, unit.read((0, 3)))
        hit = run_io(env, unit.read((0, 3)))
        assert miss.level == "disk"
        assert miss.latency == pytest.approx(0.0164)
        assert hit.level == "disk_cache"
        assert hit.latency == pytest.approx(0.0014)

    def test_write_goes_to_disk_even_on_hit(self):
        env = Environment()
        unit = self.make(env)
        run_io(env, unit.read((0, 3)))  # cache the page
        result = run_io(env, unit.write((0, 3)))
        assert result.level == "disk"
        assert result.latency == pytest.approx(0.0164)


class TestNonVolatileCacheUnit:
    def make(self, env, cache_size=2):
        return DiskUnit(
            env, RandomStreams(1),
            constant_unit(unit_type=DiskUnitType.NONVOLATILE_CACHE,
                          cache_size=cache_size),
        )

    def test_write_absorbed_fast(self):
        env = Environment()
        unit = self.make(env)
        result = run_io(env, unit.write((0, 3)))
        assert result.level == "disk_cache"
        assert result.latency == pytest.approx(0.0014)
        assert unit.pending_destages() == 1

    def test_destage_completes_in_background(self):
        env = Environment()
        unit = self.make(env)
        run_io(env, unit.write((0, 3)))
        env.run(until=1.0)
        assert unit.pending_destages() == 0
        assert unit.stats.get("destage_write") == 1

    def test_saturated_cache_writes_synchronously(self):
        env = Environment()
        unit = self.make(env, cache_size=1)

        def io(env):
            first = yield from unit.write((0, 1))
            # Immediately write another page: the only frame is dirty.
            second = yield from unit.write((0, 2))
            return first, second

        first, second = env.run(until=env.process(io(env)))
        assert first.level == "disk_cache"
        assert second.level == "disk"

    def test_read_hit_after_write(self):
        env = Environment()
        unit = self.make(env)
        run_io(env, unit.write((0, 3)))
        result = run_io(env, unit.read((0, 3)))
        assert result.level == "disk_cache"

    def test_drain_waits_for_destages(self):
        env = Environment()
        unit = self.make(env)

        def io(env):
            yield from unit.write((0, 3))
            yield from unit.drain()
            return env.now

        finished = env.run(until=env.process(io(env)))
        assert unit.pending_destages() == 0
        assert finished >= 0.015  # destage includes a 15 ms disk access


class TestWriteBufferUnit:
    def make(self, env, cache_size=2):
        return DiskUnit(
            env, RandomStreams(1),
            constant_unit(unit_type=DiskUnitType.NONVOLATILE_CACHE,
                          cache_size=cache_size, write_buffer_only=True,
                          disk_delay=0.005),
        )

    def test_log_writes_absorbed_until_saturation(self):
        env = Environment()
        unit = self.make(env, cache_size=2)

        def io(env):
            results = []
            for page in range(3):
                result = yield from unit.write((-1, page))
                results.append(result.level)
            return results

        levels = env.run(until=env.process(io(env)))
        assert levels == ["disk_cache", "disk_cache", "disk"]

    def test_slots_freed_after_destage(self):
        env = Environment()
        unit = self.make(env, cache_size=1)

        def io(env):
            yield from unit.write((-1, 1))
            yield env.timeout(0.1)  # destage done
            result = yield from unit.write((-1, 2))
            return result

        result = env.run(until=env.process(io(env)))
        assert result.level == "disk_cache"


class TestNVEMDevice:
    def test_access_latency(self):
        env = Environment()
        device = NVEMDevice(env, RandomStreams(1), NVEMConfig(delay=50e-6))

        def io(env):
            yield from device.access("read")
            return env.now

        finished = env.run(until=env.process(io(env)))
        assert finished == pytest.approx(50e-6)

    def test_single_server_serializes(self):
        env = Environment()
        device = NVEMDevice(
            env, RandomStreams(1), NVEMConfig(num_servers=1, delay=50e-6)
        )
        done = []

        def io(env):
            yield from device.access()
            done.append(env.now)

        env.process(io(env))
        env.process(io(env))
        env.run()
        assert done[0] == pytest.approx(50e-6)
        assert done[1] == pytest.approx(100e-6)

    def test_multiple_servers_parallel(self):
        env = Environment()
        device = NVEMDevice(
            env, RandomStreams(1), NVEMConfig(num_servers=2, delay=50e-6)
        )
        done = []

        def io(env):
            yield from device.access()
            done.append(env.now)

        env.process(io(env))
        env.process(io(env))
        env.run()
        assert done == [pytest.approx(50e-6), pytest.approx(50e-6)]

    def test_stats_by_kind(self):
        env = Environment()
        device = NVEMDevice(env, RandomStreams(1), NVEMConfig())
        env.run(until=env.process(device.access("migrate")))
        env.run(until=env.process(device.access("migrate")))
        env.run(until=env.process(device.access("log")))
        assert device.stats.get("migrate") == 2
        assert device.stats.get("log") == 1
