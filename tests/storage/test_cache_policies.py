"""Unit tests for disk-cache policies (repro.storage.cache)."""

import pytest

from repro.storage.cache import (
    NonVolatileCachePolicy,
    VolatileCachePolicy,
    WriteBufferPolicy,
    make_cache_policy,
)


class TestVolatileCache:
    def test_read_miss_then_hit(self):
        cache = VolatileCachePolicy(2)
        first = cache.on_read("x")
        assert not first.hit and first.needs_disk
        cache.on_read_fill("x")
        second = cache.on_read("x")
        assert second.hit and not second.needs_disk

    def test_read_fill_evicts_lru(self):
        cache = VolatileCachePolicy(2)
        for key in ("a", "b"):
            cache.on_read(key)
            cache.on_read_fill(key)
        cache.on_read("a")  # promote a
        cache.on_read("c")
        cache.on_read_fill("c")  # evicts b
        assert cache.on_read("b").needs_disk
        assert cache.on_read("a").hit

    def test_write_always_needs_disk(self):
        cache = VolatileCachePolicy(2)
        cache.on_read("x")
        cache.on_read_fill("x")
        hit_decision = cache.on_write("x")
        assert hit_decision.needs_disk  # write-through
        miss_decision = cache.on_write("y")
        assert miss_decision.needs_disk

    def test_write_miss_does_not_allocate(self):
        cache = VolatileCachePolicy(2)
        cache.on_write("y")
        assert cache.on_read("y").needs_disk  # still not cached
        assert cache.stats.get("write_miss") == 1

    def test_write_hit_refreshes_lru_position(self):
        cache = VolatileCachePolicy(2)
        for key in ("a", "b"):
            cache.on_read(key)
            cache.on_read_fill(key)
        cache.on_write("a")  # refresh: a becomes MRU
        cache.on_read("c")
        cache.on_read_fill("c")  # evicts b, not a
        assert cache.on_read("a").hit
        assert cache.on_read("b").needs_disk

    def test_double_fill_is_idempotent(self):
        cache = VolatileCachePolicy(2)
        cache.on_read_fill("x")
        cache.on_read_fill("x")
        assert len(cache) == 1

    def test_hit_ratio_stats(self):
        cache = VolatileCachePolicy(4)
        cache.on_read("a")
        cache.on_read_fill("a")
        cache.on_read("a")
        cache.on_read("a")
        assert cache.stats.get("read_hit") == 2
        assert cache.stats.get("read_miss") == 1


class TestNonVolatileCache:
    def test_write_miss_allocates_and_destages(self):
        cache = NonVolatileCachePolicy(2)
        decision = cache.on_write("x")
        assert decision.hit and not decision.needs_disk
        assert decision.async_disk_write
        assert len(cache) == 1

    def test_write_hit_on_clean_page_destages(self):
        cache = NonVolatileCachePolicy(2)
        d1 = cache.on_write("x")
        cache.on_disk_write_complete(d1.entry)  # now clean
        d2 = cache.on_write("x")
        assert d2.hit and d2.async_disk_write

    def test_write_hit_on_dirty_page_no_second_destage(self):
        cache = NonVolatileCachePolicy(2)
        cache.on_write("x")  # dirty, destage in flight
        d2 = cache.on_write("x")
        assert d2.hit and not d2.async_disk_write

    def test_write_bypass_when_all_dirty(self):
        cache = NonVolatileCachePolicy(2)
        cache.on_write("a")
        cache.on_write("b")
        # Cache full, both dirty (disk updates outstanding).
        decision = cache.on_write("c")
        assert not decision.hit and decision.needs_disk
        assert cache.stats.get("write_bypass") == 1

    def test_write_miss_evicts_lru_unmodified(self):
        cache = NonVolatileCachePolicy(2)
        da = cache.on_write("a")
        db = cache.on_write("b")
        cache.on_disk_write_complete(da.entry)
        cache.on_disk_write_complete(db.entry)
        decision = cache.on_write("c")  # evicts a (LRU clean)
        assert decision.hit
        assert cache.on_read("a").needs_disk
        assert cache.on_read("b").hit

    def test_disk_write_complete_marks_clean(self):
        cache = NonVolatileCachePolicy(1)
        decision = cache.on_write("x")
        assert cache.dirty_count() == 1
        cache.on_disk_write_complete(decision.entry)
        assert cache.dirty_count() == 0

    def test_stale_completion_for_evicted_entry_ignored(self):
        cache = NonVolatileCachePolicy(1)
        d1 = cache.on_write("x")
        cache.on_disk_write_complete(d1.entry)
        d2 = cache.on_write("y")  # evicts x
        # Late completion signal for the old entry must not corrupt y.
        cache.on_disk_write_complete(d1.entry)
        assert cache.dirty_count() == 1

    def test_read_fill_skipped_when_all_dirty(self):
        cache = NonVolatileCachePolicy(1)
        cache.on_write("a")  # dirty
        cache.on_read("b")
        cache.on_read_fill("b")  # cannot evict dirty a
        assert cache.on_read("b").needs_disk
        assert cache.stats.get("fill_skipped") == 1

    def test_read_fill_evicts_clean(self):
        cache = NonVolatileCachePolicy(1)
        d = cache.on_write("a")
        cache.on_disk_write_complete(d.entry)
        cache.on_read_fill("b")
        assert cache.on_read("b").hit

    def test_completion_with_none_entry_is_noop(self):
        cache = NonVolatileCachePolicy(1)
        cache.on_disk_write_complete(None)


class TestWriteBuffer:
    def test_absorbs_until_capacity(self):
        wb = WriteBufferPolicy(2)
        assert wb.on_write(1).hit
        assert wb.on_write(2).hit
        bypass = wb.on_write(3)
        assert not bypass.hit and bypass.needs_disk

    def test_completion_frees_slot(self):
        wb = WriteBufferPolicy(1)
        wb.on_write(1)
        assert not wb.on_write(2).hit
        wb.on_disk_write_complete(None)
        assert wb.on_write(3).hit

    def test_reads_go_to_disk(self):
        wb = WriteBufferPolicy(4)
        decision = wb.on_read(1)
        assert decision.needs_disk and not decision.hit

    def test_read_fill_is_noop(self):
        wb = WriteBufferPolicy(4)
        wb.on_read_fill(1)
        assert len(wb) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            WriteBufferPolicy(0)


class TestFactory:
    def test_factory_types(self):
        assert isinstance(make_cache_policy(4, False, False),
                          VolatileCachePolicy)
        assert isinstance(make_cache_policy(4, True, False),
                          NonVolatileCachePolicy)
        assert isinstance(make_cache_policy(4, True, True), WriteBufferPolicy)

    def test_volatile_write_buffer_rejected(self):
        with pytest.raises(ValueError):
            make_cache_policy(4, False, True)
