"""Unit tests for storage-hierarchy wiring (repro.storage.hierarchy)."""

import pytest

from repro.core.config import (
    CMConfig,
    DiskUnitConfig,
    DiskUnitType,
    LogAllocation,
    MEMORY,
    NVEM,
    NVEMConfig,
    PartitionConfig,
    SystemConfig,
)
from repro.sim import Environment, RandomStreams
from repro.storage.hierarchy import StorageSubsystem


def build(log_device="unit0"):
    config = SystemConfig(
        partitions=[
            PartitionConfig("on_disk", num_objects=100,
                            allocation="unit0"),
            PartitionConfig("on_ssd", num_objects=100,
                            allocation="ssd0"),
            PartitionConfig("in_nvem", num_objects=100, allocation=NVEM),
            PartitionConfig("in_memory", num_objects=100,
                            allocation=MEMORY),
        ],
        disk_units=[
            DiskUnitConfig(name="unit0", num_disks=2),
            DiskUnitConfig(name="ssd0", unit_type=DiskUnitType.SSD),
        ],
        nvem=NVEMConfig(),
        cm=CMConfig(),
        log=LogAllocation(device=log_device),
    )
    config.validate()
    env = Environment()
    return env, StorageSubsystem(env, RandomStreams(1), config)


class TestAllocationQueries:
    def test_allocation_of(self):
        _, storage = build()
        assert storage.allocation_of("on_disk") == "unit0"
        assert storage.allocation_of("in_nvem") == NVEM

    def test_residence_predicates(self):
        _, storage = build()
        assert storage.is_memory_resident("in_memory")
        assert not storage.is_memory_resident("on_disk")
        assert storage.is_nvem_resident("in_nvem")
        assert not storage.is_nvem_resident("on_ssd")

    def test_unit_of(self):
        _, storage = build()
        assert storage.unit_of("on_disk").name == "unit0"
        assert storage.unit_of("on_ssd").name == "ssd0"
        assert storage.unit_of("in_nvem") is None
        assert storage.unit_of("in_memory") is None

    def test_unknown_partition_raises(self):
        _, storage = build()
        with pytest.raises(KeyError):
            storage.allocation_of("ghost")


class TestLog:
    def test_log_unit_resolution(self):
        _, storage = build()
        assert not storage.log_on_nvem
        assert storage.log_unit.name == "unit0"

    def test_log_on_nvem(self):
        _, storage = build(log_device=NVEM)
        assert storage.log_on_nvem
        assert storage.log_unit is None

    def test_log_pages_monotonic(self):
        _, storage = build()
        pages = [storage.next_log_page() for _ in range(5)]
        assert pages == [1, 2, 3, 4, 5]

    def test_log_write_to_unit(self):
        env, storage = build()
        result = env.run(until=env.process(storage.write_log_to_unit(1)))
        assert result.level == "disk"

    def test_log_write_on_nvem_log_raises(self):
        env, storage = build(log_device=NVEM)
        with pytest.raises(RuntimeError):
            env.run(until=env.process(storage.write_log_to_unit(1)))


class TestPageIO:
    def test_read_routes_to_home_unit(self):
        env, storage = build()
        result = env.run(
            until=env.process(storage.read_page(0, "on_disk", 5))
        )
        assert result.level == "disk"
        assert storage.units["unit0"].stats.get("read") == 1

    def test_ssd_read(self):
        env, storage = build()
        result = env.run(
            until=env.process(storage.read_page(1, "on_ssd", 5))
        )
        assert result.level == "ssd"

    def test_resident_partition_io_rejected(self):
        env, storage = build()
        with pytest.raises(RuntimeError):
            env.run(until=env.process(storage.read_page(2, "in_nvem", 5)))
        with pytest.raises(RuntimeError):
            env.run(
                until=env.process(storage.write_page(3, "in_memory", 5))
            )


class TestReporting:
    def test_utilization_report_structure(self):
        env, storage = build()
        env.run(until=env.process(storage.read_page(0, "on_disk", 5)))
        report = storage.utilization_report()
        assert "nvem" in report
        assert "unit0" in report
        assert 0.0 <= report["unit0"]["disks"] <= 1.0

    def test_reset_stats(self):
        env, storage = build()
        env.run(until=env.process(storage.read_page(0, "on_disk", 5)))
        storage.reset_stats()
        assert storage.units["unit0"].stats.total() == 0
