"""Unit tests for the LRU mechanism (repro.storage.lru)."""

import pytest

from repro.storage.lru import LRUCache


def test_insert_and_contains():
    cache = LRUCache(3)
    cache.insert("a")
    assert "a" in cache
    assert "b" not in cache
    assert len(cache) == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_insert_duplicate_raises():
    cache = LRUCache(2)
    cache.insert("a")
    with pytest.raises(KeyError):
        cache.insert("a")


def test_insert_beyond_capacity_raises():
    cache = LRUCache(1)
    cache.insert("a")
    with pytest.raises(OverflowError):
        cache.insert("b")


def test_victim_is_least_recently_used():
    cache = LRUCache(3)
    for key in ("a", "b", "c"):
        cache.insert(key)
    assert cache.victim().key == "a"


def test_get_promotes_to_mru():
    cache = LRUCache(3)
    for key in ("a", "b", "c"):
        cache.insert(key)
    cache.get("a")
    assert cache.victim().key == "b"


def test_peek_does_not_promote():
    cache = LRUCache(3)
    for key in ("a", "b", "c"):
        cache.insert(key)
    cache.peek("a")
    assert cache.victim().key == "a"


def test_get_missing_returns_none():
    cache = LRUCache(2)
    assert cache.get("nope") is None


def test_remove():
    cache = LRUCache(2)
    cache.insert("a")
    entry = cache.remove("a")
    assert entry.key == "a"
    assert "a" not in cache
    assert len(cache) == 0


def test_remove_missing_raises():
    cache = LRUCache(2)
    with pytest.raises(KeyError):
        cache.remove("ghost")


def test_victim_with_predicate_skips_nonmatching():
    cache = LRUCache(3)
    a = cache.insert("a")
    b = cache.insert("b")
    cache.insert("c")
    a.dirty = True
    b.dirty = True
    victim = cache.victim(lambda e: not e.dirty)
    assert victim.key == "c"


def test_victim_with_predicate_none_match():
    cache = LRUCache(2)
    cache.insert("a").dirty = True
    cache.insert("b").dirty = True
    assert cache.victim(lambda e: not e.dirty) is None


def test_victim_empty_cache_is_none():
    assert LRUCache(2).victim() is None


def test_is_full():
    cache = LRUCache(2)
    assert not cache.is_full
    cache.insert("a")
    cache.insert("b")
    assert cache.is_full


def test_lru_order_full_scan():
    cache = LRUCache(4)
    for key in ("a", "b", "c", "d"):
        cache.insert(key)
    cache.get("b")
    mru_order = [e.key for e in cache.items_mru_to_lru()]
    assert mru_order == ["b", "d", "c", "a"]
    lru_order = [e.key for e in cache.items_lru_to_mru()]
    assert lru_order == ["a", "c", "d", "b"]


def test_touch_promotes_entry():
    cache = LRUCache(3)
    entry = cache.insert("a")
    cache.insert("b")
    cache.touch(entry)
    assert cache.victim().key == "b"


def test_clear():
    cache = LRUCache(3)
    cache.insert("a")
    cache.insert("b")
    cache.clear()
    assert len(cache) == 0
    assert cache.victim() is None
    cache.insert("c")  # reusable after clear
    assert "c" in cache


def test_classic_lru_trace():
    """Reference trace: capacity 3, accesses a b c a d -> evict order."""
    cache = LRUCache(3)
    evictions = []

    def access(key):
        if cache.get(key) is None:
            if cache.is_full:
                victim = cache.victim()
                evictions.append(victim.key)
                cache.remove(victim.key)
            cache.insert(key)

    for key in ("a", "b", "c", "a", "d", "e", "b"):
        access(key)
    # After a b c a: order (MRU->LRU) a c b. d evicts b; e evicts c;
    # then b misses again and evicts a.
    assert evictions == ["b", "c", "a"]


def test_keys_listing():
    cache = LRUCache(2)
    cache.insert(("p", 1))
    cache.insert(("p", 2))
    assert set(cache.keys()) == {("p", 1), ("p", 2)}


def test_fix_count_default_zero():
    cache = LRUCache(1)
    entry = cache.insert("a")
    assert entry.fix_count == 0
    assert entry.pending_write is None
