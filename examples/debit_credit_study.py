#!/usr/bin/env python3
"""Debit-Credit storage-architecture study (mini Figs. 4.1–4.3).

Sweeps arrival rates over the six storage allocations of §4.3 and over
FORCE/NOFORCE, printing response-time tables like the paper's figures.
This is the reduced version (fewer points, shorter windows); the full
curves are produced by ``python -m repro.experiments.report_all``.

Run with::

    python examples/debit_credit_study.py
"""

from repro import DebitCreditWorkload, TransactionSystem, UpdateStrategy
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    disk_with_nv_cache_write_buffer,
    memory_resident,
    nvem_resident,
    nvem_write_buffer,
    ssd_resident,
)

RATES = [100, 300, 500]
SCHEMES = [
    disk_only,
    disk_with_nv_cache_write_buffer,
    nvem_write_buffer,
    ssd_resident,
    nvem_resident,
    memory_resident,
]


def measure(scheme, rate, strategy):
    config = debit_credit_config(scheme, update_strategy=strategy)
    system = TransactionSystem(
        config, DebitCreditWorkload(arrival_rate=rate), seed=7
    )
    return system.run(warmup=3.0, duration=8.0)


def main() -> None:
    for strategy in (UpdateStrategy.NOFORCE, UpdateStrategy.FORCE):
        print(f"=== update strategy: {strategy.value.upper()} "
              "(response time, ms) ===")
        header = f"{'allocation':18s}" + "".join(
            f" {rate:>8d}" for rate in RATES
        )
        print(header)
        print("-" * len(header))
        for scheme_fn in SCHEMES:
            scheme = scheme_fn()
            cells = []
            for rate in RATES:
                results = measure(scheme, rate, strategy)
                marker = "*" if results.saturated else ""
                cells.append(f" {results.response_time_ms:7.1f}{marker}")
            print(f"{scheme.name:18s}" + "".join(cells))
        print()
    print("(* = saturated; compare with Figs. 4.2/4.3 of the paper)")


if __name__ == "__main__":
    main()
