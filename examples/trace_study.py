#!/usr/bin/env python3
"""Trace-driven caching study (mini Fig. 4.6) with trace file I/O.

1. Generates a synthetic "real-life" trace matching the §4.6 marginals.
2. Writes it to the interchange format and reads it back (round trip —
   the same path a user of real trace data would take).
3. Replays it against main-memory-only caching, disk caches and an
   NVEM cache, printing normalized response times and hit ratios.

Run with::

    python examples/trace_study.py
"""

import os
import tempfile

from repro import TransactionSystem
from repro.experiments.trace_setup import MEAN_TX_SIZE, trace_config
from repro.workload.trace import TraceWorkload, read_trace, write_trace
from repro.workload.tracegen import RealWorkloadProfile, generate_trace

CONFIGS = [
    ("MM caching only", "none"),
    ("volatile disk cache", "volatile"),
    ("non-volatile disk cache", "nonvolatile"),
    ("NVEM cache", "nvem"),
]


def main() -> None:
    profile = RealWorkloadProfile(
        num_transactions=2_000,
        target_accesses=120_000,
        adhoc_count=1,
        adhoc_accesses=6_000,
    )
    trace = generate_trace(profile, seed=42)
    print("generated trace:")
    print(f"  transactions : {len(trace)}")
    print(f"  page accesses: {trace.num_accesses}")
    print(f"  write share  : {trace.write_fraction * 100:.2f} %")
    print(f"  update txs   : {trace.update_tx_fraction * 100:.1f} %")
    print(f"  distinct pgs : {trace.distinct_pages}")
    print(f"  largest tx   : {trace.largest_tx} accesses")

    # Round-trip through the interchange format.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "workload.trace")
        write_trace(trace, path)
        size_mb = os.path.getsize(path) / 1e6
        trace = read_trace(path)
        print(f"  trace file   : {size_mb:.1f} MB, reloaded OK")
    print()

    print(f"{'configuration':26s} {'norm. rt (ms)':>14} "
          f"{'mm hit':>8} {'2nd hit':>8}")
    print("-" * 60)
    for label, kind in CONFIGS:
        config = trace_config(trace, kind, mm_size=500, second_level=2000)
        workload = TraceWorkload(trace, arrival_rate=25.0, loop=True)
        system = TransactionSystem(config, workload, seed=3)
        results = system.run(warmup=4.0, duration=20.0)
        norm_ms = results.normalized_response_time(MEAN_TX_SIZE) * 1000
        mm = results.hit_ratio("main_memory") * 100
        second = (results.hit_ratio("nvem_cache")
                  + results.hit_ratio("disk_cache")) * 100
        print(f"{label:26s} {norm_ms:14.1f} {mm:7.1f}% {second:7.1f}%")
    print()
    print("(compare with Fig. 4.6: second-level caches flatten the "
          "MM-size curve; NVEM caching avoids double caching)")


if __name__ == "__main__":
    main()
