"""Registering a user-defined experiment through the public API.

The experiment layer is a registry of declarative specs
(`repro.experiments.api`): the CLI, `report_all` and the exports all
resolve experiments through it, so a spec registered here is a
first-class citizen — it shows up in `repro experiment list`, runs
under `repro experiment run flash_log_study`, participates in
`--all --parallel` figure-wide scheduling and exports to JSON/CSV.

This study asks a question the paper could not: how does a *flash* SSD
log (asymmetric read/program latency, PR-1's `flash_ssd` device kind)
compare against the paper's DRAM SSD and NVEM logs?

Run it directly::

    PYTHONPATH=src python examples/custom_experiment.py

or through the CLI (any import of this module registers the spec)::

    PYTHONPATH=src:examples python -c "
    import custom_experiment
    from repro.cli import main
    main(['experiment', 'run', 'flash_log_study', '--profile', 'fast'])
    "
"""

from typing import Tuple

from repro.core.config import (
    DeviceSpec,
    DiskUnitType,
    LogAllocation,
    NVEM,
)
from repro.experiments.api import (
    CurveSpec,
    ExperimentRunner,
    ExperimentSpec,
    SweepProfile,
    experiment,
    get_experiment,
)
from repro.experiments.defaults import (
    StorageScheme,
    db_disk_unit,
    debit_credit_config,
    log_disk_unit,
)
from repro.workload.debit_credit import DebitCreditWorkload


def _scheme(log_alloc: LogAllocation, log_units=(),
            devices=()) -> StorageScheme:
    return StorageScheme(
        name="flash-log-study",
        db_allocation="db0",
        bt_allocation="bt0",
        log=log_alloc,
        disk_units=[
            db_disk_unit("db0"),
            db_disk_unit("bt0", num_disks=24, num_controllers=4),
            *log_units,
        ],
        devices=list(devices),
    )


#: label -> storage scheme for the log device under test.
LOG_VARIANTS = {
    "log on flash SSD": lambda: _scheme(
        LogAllocation(device="flog"),
        devices=[DeviceSpec(kind="flash_ssd", name="flog",
                            params={"num_controllers": 2,
                                    "num_channels": 4})],
    ),
    "log on DRAM SSD": lambda: _scheme(
        LogAllocation(device="slog"),
        log_units=[log_disk_unit("slog", unit_type=DiskUnitType.SSD,
                                 num_controllers=2)],
    ),
    "log in NVEM": lambda: _scheme(LogAllocation(device=NVEM)),
}


def _curves():
    def curve(label, scheme_fn):
        def build(rate: float) -> Tuple:
            config = debit_credit_config(scheme_fn())
            return config, DebitCreditWorkload(arrival_rate=rate)

        return CurveSpec(label=label, build=build)

    return [curve(label, fn) for label, fn in LOG_VARIANTS.items()]


@experiment("flash_log_study")
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="flash_log_study",
        title="Flash vs DRAM SSD vs NVEM log (Debit-Credit, NOFORCE)",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms); * = saturated",
        curves=_curves(),
        profiles={
            "full": SweepProfile(xs=(100, 300, 500, 700), warmup=3.0,
                                 duration=8.0),
            "fast": SweepProfile(xs=(100, 500), warmup=3.0,
                                 duration=4.0),
        },
        notes=(
            "expected: flash programs slower than DRAM reads/writes, so "
            "the flash log sits between DRAM SSD and a plain log disk; "
            "NVEM stays fastest",
        ),
    )


def main() -> None:
    study = get_experiment("flash_log_study")
    result = ExperimentRunner().run_one(study, "fast")
    print(study.render(result))


if __name__ == "__main__":
    main()
