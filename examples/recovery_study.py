#!/usr/bin/env python3
"""Recovery-time study: the other half of the FORCE/NOFORCE trade-off.

The performance experiments (Fig. 4.3) show what FORCE costs during
normal processing; this example shows what NOFORCE costs at restart —
and how non-volatile semiconductor storage shrinks that cost too.  It
combines a measured simulation run (to get the update rate and write
traffic) with the analytic redo-recovery model of
:mod:`repro.analysis.recovery`.

Run with::

    python examples/recovery_study.py
"""

from repro import DebitCreditWorkload, TransactionSystem, UpdateStrategy
from repro.analysis.recovery import RecoveryModel
from repro.experiments.defaults import debit_credit_config, disk_only

RATE = 500.0
CHECKPOINT_INTERVALS = [60.0, 300.0, 900.0]
STORAGE = [("disk", "disk", "disk"), ("ssd", "ssd", "ssd"),
           ("nvem", "nvem", "nvem")]


def main() -> None:
    # Measure the actual update traffic once (any allocation will do —
    # the update rate is workload-determined).
    config = debit_credit_config(disk_only())
    system = TransactionSystem(
        config, DebitCreditWorkload(arrival_rate=RATE), seed=3
    )
    results = system.run(warmup=3.0, duration=6.0)
    update_tps = results.throughput  # every Debit-Credit tx updates
    print(f"measured update rate: {update_tps:.0f} update tx/s "
          f"({results.io_per_tx.get('log_disk', 1.0):.2f} log pages/tx)")
    print()

    print("expected restart time after a crash (seconds):")
    header = (f"{'log/db storage':16s} {'FORCE':>8} "
              + "".join(f" NOFORCE@{int(iv):>4}s" for iv in
                        CHECKPOINT_INTERVALS))
    print(header)
    print("-" * len(header))
    for name, log_dev, db_dev in STORAGE:
        force = RecoveryModel.for_storage(
            update_tps, log_dev, db_dev
        ).estimate(UpdateStrategy.FORCE).total
        cells = f"{name:16s} {force:8.2f}"
        for interval in CHECKPOINT_INTERVALS:
            model = RecoveryModel.for_storage(
                update_tps, log_dev, db_dev,
                checkpoint_interval=interval, redo_parallelism=8.0,
            )
            noforce = model.estimate(UpdateStrategy.NOFORCE).total
            cells += f" {noforce:12.1f}"
        print(cells)
    print()

    model = RecoveryModel.for_storage(update_tps, "disk", "disk",
                                      redo_parallelism=8.0)
    interval = model.break_even_checkpoint_interval(30.0)
    print(f"to keep disk-based NOFORCE restart under 30 s, checkpoints "
          f"every {interval:.0f} s are needed;")
    model = RecoveryModel.for_storage(update_tps, "nvem", "nvem")
    interval = model.break_even_checkpoint_interval(30.0)
    print(f"with log and database in NVEM, every {interval:.0f} s "
          "suffices — non-volatile storage relaxes checkpointing just "
          "as it relaxes buffer management (§5).")


if __name__ == "__main__":
    main()
