#!/usr/bin/env python3
"""Lock-contention study (mini Fig. 4.8) using the synthetic model.

Builds the §4.7 workload — variable-size update transactions, 80% of
accesses on a small hot partition — directly through the public
configuration API, then crosses storage allocations with lock
granularities to show I/O-delay-driven lock thrashing.

Run with::

    python examples/contention_study.py
"""

from repro import NVEM, TransactionSystem
from repro.core.config import CCMode
from repro.experiments.fig4_8 import build_config
from repro.workload.synthetic import SyntheticWorkload

RATES = [50, 100, 150, 200]
VARIANTS = [
    ("disk, page locks", "db0", "db0", "log0", CCMode.PAGE),
    ("disk, object locks", "db0", "db0", "log0", CCMode.OBJECT),
    ("mixed, page locks", NVEM, "db0", NVEM, CCMode.PAGE),
    ("NVEM, page locks", NVEM, NVEM, NVEM, CCMode.PAGE),
]


def main() -> None:
    header = f"{'configuration':22s}" + "".join(
        f" {rate:>9d}" for rate in RATES
    )
    print("response time (ms) vs arrival rate (TPS); * = lock thrash")
    print(header)
    print("-" * len(header))
    for label, small, large, log_dev, cc_mode in VARIANTS:
        cells = []
        for rate in RATES:
            config = build_config(small, large, log_dev, cc_mode, rate)
            system = TransactionSystem(config, SyntheticWorkload(config),
                                       seed=11)
            results = system.run(warmup=3.0, duration=8.0)
            if results.saturated:
                cells.append(f" {'thrash*':>9}")
            else:
                cells.append(f" {results.response_time_ms:9.1f}")
        print(f"{label:22s}" + "".join(cells))
    print()
    print("(compare with Fig. 4.8: page locking thrashes on the "
          "disk-based and mixed allocations; object locking or full "
          "NVEM residence removes the bottleneck)")


if __name__ == "__main__":
    main()
