#!/usr/bin/env python3
"""Combined three-tier storage architecture + cost analysis (§5).

The paper's conclusion suggests combining the intermediate storage
types: non-volatile disk caches as write buffers, SSD for hot files,
and an NVEM second-level database cache.  This example builds exactly
that configuration through the public API — BRANCH/TELLER on SSD,
ACCOUNT on cached disks, HISTORY on plain disks with an NVEM write
buffer, log in NVEM — compares it against the pure configurations, and
prices each with the Table 2.1 cost model.

It also demonstrates the storage-device registry: a phase-change-memory
device kind is registered below and dropped into a configuration purely
through a ``DeviceSpec`` — no wiring code changes (see README.md,
*Architecture & extension points*).

Run with::

    python examples/custom_storage.py
"""

from repro import (
    DebitCreditWorkload,
    DeviceSpec,
    DiskUnitConfig,
    DiskUnitType,
    LogAllocation,
    NVEM,
    NVEMCachingMode,
    SystemConfig,
    TransactionSystem,
)
from repro.storage import FlashSSDDevice, register_device
from repro.analysis.cost import configuration_cost, cost_effectiveness
from repro.experiments.defaults import (
    db_disk_unit,
    debit_credit_config,
    default_cm,
    default_nvem,
    disk_only,
    nvem_resident,
)
from repro.workload.debit_credit import build_debit_credit_partitions

RATE = 300.0
ACCOUNT_PAGES = 5_000_000
BT_PAGES = 500


# -- a custom device kind, registered by name ---------------------------
# Phase-change memory: reads almost as fast as DRAM, writes an order of
# magnitude slower.  Reusing the flash channel model with PCM service
# times is all it takes; the registry makes the kind configurable.
@register_device("pcm")
def make_pcm(env, streams, spec):
    params = dict(read_delay=0.00005, write_delay=0.0008,
                  num_channels=8)
    params.update(spec.params)
    return FlashSSDDevice(env, streams, name=spec.name, **params)


def pcm_config() -> SystemConfig:
    """The whole database and log on the custom PCM device."""
    partitions = build_debit_credit_partitions(allocation="pcm0",
                                               bt_allocation="pcm0")
    config = SystemConfig(
        partitions=partitions,
        devices=[
            DeviceSpec(kind="pcm", name="pcm0",
                       params={"num_controllers": 8}),
            DeviceSpec(kind="pcm", name="pcmlog",
                       params={"num_controllers": 2}),
        ],
        cm=default_cm(),
        nvem=default_nvem(),
        log=LogAllocation(device="pcmlog"),
        seed=21,
    )
    config.validate()
    return config


def combined_config() -> SystemConfig:
    partitions = build_debit_credit_partitions(
        allocation="account0",       # ACCOUNT: cached disks
        bt_allocation="bt_ssd",      # BRANCH/TELLER: SSD-resident
        history_allocation="hist0",  # HISTORY: plain disks + NVEM WB
    )
    partitions[0].nvem_caching = NVEMCachingMode.ALL  # ACCOUNT... no:
    # ACCOUNT sits behind a non-volatile disk cache; NVEM caching on
    # top would double-cache (footnote 4) — keep the disk cache only.
    partitions[0].nvem_caching = NVEMCachingMode.NONE
    partitions[2].nvem_write_buffer = True

    cm = default_cm()
    cm.nvem_write_buffer_size = 500
    config = SystemConfig(
        partitions=partitions,
        disk_units=[
            db_disk_unit("account0",
                         unit_type=DiskUnitType.NONVOLATILE_CACHE,
                         cache_size=1000),
            DiskUnitConfig(name="bt_ssd", unit_type=DiskUnitType.SSD,
                           num_controllers=4),
            db_disk_unit("hist0", num_disks=8, num_controllers=2),
        ],
        nvem=default_nvem(),
        cm=cm,
        log=LogAllocation(device=NVEM),
        seed=21,
    )
    config.validate()
    return config


def measure(config) -> float:
    system = TransactionSystem(
        config, DebitCreditWorkload(arrival_rate=RATE), seed=21
    )
    return system.run(warmup=3.0, duration=8.0).response_time_ms


def main() -> None:
    responses = {
        "all-disk": measure(debit_credit_config(disk_only())),
        "combined 3-tier": measure(combined_config()),
        "custom PCM": measure(pcm_config()),
        "all-NVEM": measure(debit_credit_config(nvem_resident())),
    }
    costs = {
        "all-disk": configuration_cost([("disk",
                                         ACCOUNT_PAGES + BT_PAGES)]),
        "combined 3-tier": configuration_cost([
            ("disk", ACCOUNT_PAGES),
            ("disk_cache", 1000),
            ("ssd", BT_PAGES),
            ("nvem", 500 + 100),  # write buffer + log buffer
        ]),
        # Priced like SSD semiconductor storage (Table 2.1 has no PCM).
        "custom PCM": configuration_cost([("ssd",
                                           ACCOUNT_PAGES + BT_PAGES)]),
        "all-NVEM": configuration_cost([("nvem",
                                         ACCOUNT_PAGES + BT_PAGES)]),
    }

    print(f"Debit-Credit at {RATE:g} TPS:")
    print(f"{'configuration':18s} {'rt (ms)':>8} {'storage cost':>16}")
    print("-" * 46)
    for name in responses:
        print(f"{name:18s} {responses[name]:8.1f} "
              f"${costs[name]:>15,.0f}")
    print()
    print("response-time gain per 1000$ (vs all-disk):")
    for name, gain in cost_effectiveness(responses, costs):
        print(f"  {name:18s} {gain:8.4f} ms/k$")
    print()
    print("(the §5 conclusion: a little non-volatile memory in the "
          "right places buys most of the NVEM-resident performance at "
          "a fraction of its cost)")


if __name__ == "__main__":
    main()
