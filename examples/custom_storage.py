#!/usr/bin/env python3
"""Combined three-tier storage architecture + cost analysis (§5).

The paper's conclusion suggests combining the intermediate storage
types: non-volatile disk caches as write buffers, SSD for hot files,
and an NVEM second-level database cache.  This example builds exactly
that configuration through the public API — BRANCH/TELLER on SSD,
ACCOUNT on cached disks, HISTORY on plain disks with an NVEM write
buffer, log in NVEM — compares it against the pure configurations, and
prices each with the Table 2.1 cost model.

Run with::

    python examples/custom_storage.py
"""

from repro import (
    DebitCreditWorkload,
    DiskUnitConfig,
    DiskUnitType,
    LogAllocation,
    NVEM,
    NVEMCachingMode,
    SystemConfig,
    TransactionSystem,
)
from repro.analysis.cost import configuration_cost, cost_effectiveness
from repro.experiments.defaults import (
    db_disk_unit,
    debit_credit_config,
    default_cm,
    default_nvem,
    disk_only,
    nvem_resident,
)
from repro.workload.debit_credit import build_debit_credit_partitions

RATE = 300.0
ACCOUNT_PAGES = 5_000_000
BT_PAGES = 500


def combined_config() -> SystemConfig:
    partitions = build_debit_credit_partitions(
        allocation="account0",       # ACCOUNT: cached disks
        bt_allocation="bt_ssd",      # BRANCH/TELLER: SSD-resident
        history_allocation="hist0",  # HISTORY: plain disks + NVEM WB
    )
    partitions[0].nvem_caching = NVEMCachingMode.ALL  # ACCOUNT... no:
    # ACCOUNT sits behind a non-volatile disk cache; NVEM caching on
    # top would double-cache (footnote 4) — keep the disk cache only.
    partitions[0].nvem_caching = NVEMCachingMode.NONE
    partitions[2].nvem_write_buffer = True

    cm = default_cm()
    cm.nvem_write_buffer_size = 500
    config = SystemConfig(
        partitions=partitions,
        disk_units=[
            db_disk_unit("account0",
                         unit_type=DiskUnitType.NONVOLATILE_CACHE,
                         cache_size=1000),
            DiskUnitConfig(name="bt_ssd", unit_type=DiskUnitType.SSD,
                           num_controllers=4),
            db_disk_unit("hist0", num_disks=8, num_controllers=2),
        ],
        nvem=default_nvem(),
        cm=cm,
        log=LogAllocation(device=NVEM),
        seed=21,
    )
    config.validate()
    return config


def measure(config) -> float:
    system = TransactionSystem(
        config, DebitCreditWorkload(arrival_rate=RATE), seed=21
    )
    return system.run(warmup=3.0, duration=8.0).response_time_ms


def main() -> None:
    responses = {
        "all-disk": measure(debit_credit_config(disk_only())),
        "combined 3-tier": measure(combined_config()),
        "all-NVEM": measure(debit_credit_config(nvem_resident())),
    }
    costs = {
        "all-disk": configuration_cost([("disk",
                                         ACCOUNT_PAGES + BT_PAGES)]),
        "combined 3-tier": configuration_cost([
            ("disk", ACCOUNT_PAGES),
            ("disk_cache", 1000),
            ("ssd", BT_PAGES),
            ("nvem", 500 + 100),  # write buffer + log buffer
        ]),
        "all-NVEM": configuration_cost([("nvem",
                                         ACCOUNT_PAGES + BT_PAGES)]),
    }

    print(f"Debit-Credit at {RATE:g} TPS:")
    print(f"{'configuration':18s} {'rt (ms)':>8} {'storage cost':>16}")
    print("-" * 46)
    for name in responses:
        print(f"{name:18s} {responses[name]:8.1f} "
              f"${costs[name]:>15,.0f}")
    print()
    print("response-time gain per 1000$ (vs all-disk):")
    for name, gain in cost_effectiveness(responses, costs):
        print(f"  {name:18s} {gain:8.4f} ms/k$")
    print()
    print("(the §5 conclusion: a little non-volatile memory in the "
          "right places buys most of the NVEM-resident performance at "
          "a fraction of its cost)")


if __name__ == "__main__":
    main()
