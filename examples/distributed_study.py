#!/usr/bin/env python3
"""Distributed data sharing with global extended memory ([BHR91]/[Ra91]).

The paper's conclusions point at NVEM in *locally distributed*
systems: speeding up inter-system communication and holding globally
shared data. This example scales a shared-disk Debit-Credit system
from 1 to 4 computing nodes (4×50 MIPS each) and compares:

* no GEM vs a 2000-page global extended memory cache;
* NVEM coupling (~100 µs messages) vs LAN coupling (~1 ms).

Run with::

    python examples/distributed_study.py
"""

from repro import DebitCreditWorkload
from repro.distributed import (
    CouplingConfig,
    DistributedConfig,
    DistributedSystem,
)
from repro.experiments.defaults import debit_credit_config, disk_only

RATE_PER_NODE = 350.0


def measure(nodes, gem, coupling):
    # The shared disk subsystem must grow with the aggregate rate
    # ("sufficient disk servers to avoid bottlenecks", §4.2).
    scheme = disk_only()
    for unit in scheme.disk_units:
        unit.num_disks *= nodes
        unit.num_controllers *= nodes
    config = debit_credit_config(scheme)
    dconfig = DistributedConfig(num_nodes=nodes, gem_capacity=gem,
                                coupling=coupling)
    rate = RATE_PER_NODE * nodes
    system = DistributedSystem(
        config, dconfig, DebitCreditWorkload(arrival_rate=rate), seed=5
    )
    results = system.run(warmup=3.0, duration=6.0)
    msgs = system.message_stats().get("messages", 0)
    return results, msgs / max(results.committed, 1)


def main() -> None:
    print(f"Debit-Credit, {RATE_PER_NODE:g} TPS per node, shared disks")
    print(f"{'nodes':>5} {'GEM':>6} {'coupling':>9} {'thr (TPS)':>10} "
          f"{'rt (ms)':>8} {'msgs/tx':>8}")
    print("-" * 52)
    for nodes in (1, 2, 4):
        for gem in (0, 2000):
            for coupling_name, coupling in (
                ("nvem", CouplingConfig.nvem_coupling()),
                ("lan", CouplingConfig.network_coupling()),
            ):
                if nodes == 1 and coupling_name == "lan":
                    continue  # no messages with a single node
                results, msgs_per_tx = measure(nodes, gem, coupling)
                marker = "*" if results.saturated else ""
                print(f"{nodes:>5} {gem:>6} {coupling_name:>9} "
                      f"{results.throughput:>9.0f}{marker} "
                      f"{results.response_time_ms:>8.1f} "
                      f"{msgs_per_tx:>8.1f}")
    print()
    print("observations: throughput scales with nodes (shared disks "
          "sized generously); GEM absorbs writes and adds a shared "
          "second-level cache; LAN coupling pays ~1 ms per message on "
          "every remote lock request, NVEM coupling makes the "
          "distribution overhead almost invisible [Ra91]")


if __name__ == "__main__":
    main()
