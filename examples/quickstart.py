#!/usr/bin/env python3
"""Quickstart: simulate Debit-Credit on two storage architectures.

Builds the paper's default transaction system (Table 4.1), runs the
Debit-Credit workload at 300 TPS against (a) a disk-based configuration
and (b) one with the database and log resident in non-volatile extended
memory, and prints the full measurement report for both.

Run with::

    python examples/quickstart.py
"""

from repro import DebitCreditWorkload, TransactionSystem
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    nvem_resident,
)


def main() -> None:
    for scheme in (disk_only(), nvem_resident()):
        config = debit_credit_config(scheme)
        workload = DebitCreditWorkload(arrival_rate=300.0)
        system = TransactionSystem(config, workload, seed=42)
        results = system.run(warmup=3.0, duration=10.0)

        print(f"=== storage scheme: {scheme.name} ===")
        print(results.summary())
        print("response composition (ms per committed tx):")
        for component, seconds in sorted(results.composition.items()):
            if seconds > 1e-6:
                print(f"  {component:12s} {seconds * 1000:8.2f}")
        print()


if __name__ == "__main__":
    main()
