"""Benchmark E7 — regenerate Figure 4.6 (trace workload, MM size)."""

from repro.experiments.api import ExperimentRunner, get_experiment
from repro.experiments.trace_setup import MEAN_TX_SIZE


def test_fig4_6_trace_mm_size(once):
    spec = get_experiment("fig4_6")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))

    def norm(series, i):
        return series.points[i].results.normalized_response_time(
            MEAN_TX_SIZE
        )

    mm_only = result.series_by_label("MM caching only")
    nvem = result.series_by_label("NVEM cache 2000")
    vol = result.series_by_label("vol. disk cache 2000")
    nv = result.series_by_label("nv disk cache 2000")
    resident = result.series_by_label("NVEM-resident")
    for i in range(len(mm_only.points)):
        # Second-level caches flatten the curve; NVEM cache beats the
        # disk caches; full NVEM residence is fastest (paper).
        assert nvem.points and norm(nvem, i) < norm(mm_only, i)
        assert norm(nvem, i) < norm(vol, i)
        assert norm(nv, i) <= norm(vol, i) * 1.05
        assert norm(resident, i) < norm(nvem, i)
