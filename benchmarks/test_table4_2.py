"""Benchmark E5 — regenerate Table 4.2 (hit ratios, NOFORCE and FORCE)."""

from repro.experiments import table4_2


def test_table4_2_hit_ratios(once):
    tables = once(table4_2.run, fast=True)
    print()
    print(tables["a"].to_table())
    print()
    print(tables["b"].to_table())
    # Paper: NVEM cache achieves the best 2nd-level hit ratios under
    # NOFORCE; FORCE lowers them; volatile ~ nonvolatile under FORCE.
    a, b = tables["a"], tables["b"]
    small_mm = a.buffer_sizes[0]
    assert a.cells["NVEM cache 1000"][small_mm][1] >= \
        a.cells["nv disk cache 1000"][small_mm][1]
    assert b.cells["NVEM cache 1000"][small_mm][1] <= \
        a.cells["NVEM cache 1000"][small_mm][1] + 1.0
    assert abs(b.cells["vol. disk cache 1000"][small_mm][1]
               - b.cells["nv disk cache 1000"][small_mm][1]) < 3.0
