"""Benchmark E5 — regenerate Table 4.2 (hit ratios, NOFORCE and FORCE)."""

from repro.experiments.api import ExperimentRunner, get_experiment
from repro.experiments.table4_2 import hit_tables


def test_table4_2_hit_ratios(once):
    spec = get_experiment("table4_2")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))
    # Paper: NVEM cache achieves the best 2nd-level hit ratios under
    # NOFORCE; FORCE lowers them; volatile ~ nonvolatile under FORCE.
    tables = hit_tables(result)
    a, b = tables["a"], tables["b"]
    small_mm = a.buffer_sizes[0]
    assert a.cells["NVEM cache 1000"][small_mm][1] >= \
        a.cells["nv disk cache 1000"][small_mm][1]
    assert b.cells["NVEM cache 1000"][small_mm][1] <= \
        a.cells["NVEM cache 1000"][small_mm][1] + 1.0
    assert abs(b.cells["vol. disk cache 1000"][small_mm][1]
               - b.cells["nv disk cache 1000"][small_mm][1]) < 3.0
