"""Microbenchmarks of the simulation kernel itself.

These are classic pytest-benchmark measurements (multiple rounds):
event throughput bounds how large a TPSIM experiment can be simulated
per wall-clock second.
"""

from repro.sim import Environment, RandomStreams, Resource


def run_timeout_chain(n):
    env = Environment()

    def proc(env):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    return env.now


def run_queueing_network(customers):
    env = Environment()
    streams = RandomStreams(1)
    servers = [Resource(env, capacity=2) for _ in range(3)]

    def customer(env):
        for server in servers:
            req = server.request()
            yield req
            yield env.timeout(streams.exponential("svc", 1.0))
            server.release(req)

    def source(env):
        for _ in range(customers):
            yield env.timeout(streams.exponential("arr", 0.5))
            env.process(customer(env))

    env.process(source(env))
    env.run()
    return env.now


def test_event_throughput(benchmark):
    result = benchmark(run_timeout_chain, 20_000)
    assert result == 20_000.0


def test_queueing_network_throughput(benchmark):
    result = benchmark(run_queueing_network, 2_000)
    assert result > 0


def test_debit_credit_simulation_speed(benchmark):
    """End-to-end simulator speed: one second of 200 TPS Debit-Credit."""
    from repro.core.model import TransactionSystem
    from repro.experiments.defaults import debit_credit_config, disk_only
    from repro.workload.debit_credit import DebitCreditWorkload

    def run():
        config = debit_credit_config(disk_only())
        system = TransactionSystem(
            config, DebitCreditWorkload(arrival_rate=200)
        )
        return system.run(warmup=0.5, duration=1.0).committed

    committed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert committed > 100
