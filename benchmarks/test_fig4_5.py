"""Benchmark E6 — regenerate Figure 4.5 (2nd-level buffer size)."""

from repro.experiments.api import ExperimentRunner, get_experiment


def test_fig4_5_second_level_size(once):
    spec = get_experiment("fig4_5")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))  # both panels: response + hit ratios
    # NVEM beats both disk caches at every size; the volatile cache is
    # useless below the MM buffer size (500).
    for i in range(len(result.series[0].points)):
        rt = {s.label: s.points[i].response_ms for s in result.series}
        assert rt["NVEM buffer"] <= rt["nv disk cache"]
        assert rt["NVEM buffer"] <= rt["vol. disk cache"]
