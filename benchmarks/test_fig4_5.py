"""Benchmark E6 — regenerate Figure 4.5 (2nd-level buffer size)."""

from repro.experiments import fig4_5


def test_fig4_5_second_level_size(once):
    result = once(fig4_5.run, fast=True)
    print()
    print(result.to_table())
    print()
    print(fig4_5.hit_table(result))
    # NVEM beats both disk caches at every size; the volatile cache is
    # useless below the MM buffer size (500).
    for i in range(len(result.series[0].points)):
        rt = {s.label: s.points[i].response_ms for s in result.series}
        assert rt["NVEM buffer"] <= rt["nv disk cache"]
        assert rt["NVEM buffer"] <= rt["vol. disk cache"]
