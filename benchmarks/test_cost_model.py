"""Benchmark E10 — Table 2.1 cost model + §4.3 cost-effectiveness."""

from repro.analysis.cost import (
    STORES_1990,
    configuration_cost,
    cost_effectiveness,
    five_minute_rule,
)
from repro.core.model import TransactionSystem
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    disk_with_nv_cache_write_buffer,
    nvem_resident,
    ssd_resident,
)
from repro.workload.debit_credit import DebitCreditWorkload

DB_PAGES = 5_000_500  # ACCOUNT + BRANCH/TELLER pages
RATE = 300.0


def measure(scheme):
    config = debit_credit_config(scheme)
    system = TransactionSystem(config,
                               DebitCreditWorkload(arrival_rate=RATE))
    return system.run(warmup=2.0, duration=4.0).response_time_ms


def test_cost_effectiveness_of_allocations(once):
    def experiment():
        responses = {
            "disk": measure(disk_only()),
            "disk+write buffer": measure(disk_with_nv_cache_write_buffer()),
            "ssd": measure(ssd_resident()),
            "nvem": measure(nvem_resident()),
        }
        costs = {
            "disk": configuration_cost([("disk", DB_PAGES)]),
            "disk+write buffer": configuration_cost(
                [("disk", DB_PAGES), ("disk_cache", 1500)]),
            "ssd": configuration_cost([("ssd", DB_PAGES)]),
            "nvem": configuration_cost([("nvem", DB_PAGES)]),
        }
        return responses, costs

    responses, costs = once(experiment)
    ranked = cost_effectiveness(responses, costs)
    print()
    print("storage prices (Table 2.1 mid-range):")
    for name, store in STORES_1990.items():
        print(f"  {name:12s} ${store.price_per_mb:7.0f}/MB  "
              f"{store.access_time * 1e6:9.1f} us/page")
    print("configuration cost and response time:")
    for name in responses:
        print(f"  {name:18s} rt={responses[name]:6.1f} ms  "
              f"cost=${costs[name]:12,.0f}")
    print("ms saved per k$ (vs slowest):")
    for name, gain in ranked:
        print(f"  {name:18s} {gain:10.4f}")
    # The paper's conclusion: the write buffer is the most
    # cost-effective use of non-volatile semiconductor memory.
    assert ranked[0][0] == "disk+write buffer"
    # Gray-Putzolu five-minute rule sanity.
    assert 60 < five_minute_rule(page_size_kb=1.0, disk_price=15_000.0,
                                 memory_price_per_mb=5_000.0) < 600
