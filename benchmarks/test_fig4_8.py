"""Benchmark E9 — regenerate Figure 4.8 (lock contention)."""

from repro.experiments.api import ExperimentRunner, get_experiment


def test_fig4_8_lock_contention(once):
    spec = get_experiment("fig4_8")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))
    disk_page = result.series_by_label("disk-based - page locks")
    disk_obj = result.series_by_label("disk-based - object locks")
    nvem_page = result.series_by_label("NVEM-resident - page locks")
    # Page locking on disk thrashes at the higher rate (saturated or an
    # order of magnitude slower); object locks and NVEM residence don't.
    high = -1
    assert disk_page.points[high].saturated or \
        disk_page.points[high].response_ms > \
        5 * disk_obj.points[high].response_ms
    assert not disk_obj.points[high].saturated
    assert not nvem_page.points[high].saturated
    assert nvem_page.points[high].response_ms < 50
