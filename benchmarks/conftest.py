"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (fast
sweep settings) under pytest-benchmark timing and prints the resulting
series — the same rows the paper reports.  Full-resolution sweeps are
produced by ``python -m repro.experiments.report_all`` (EXPERIMENTS.md).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under benchmark timing.

    Simulation experiments are deterministic and long; repeating them
    for statistical timing would multiply wall time for no benefit.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _once(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return _once
