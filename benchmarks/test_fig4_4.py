"""Benchmark E4 — regenerate Figure 4.4 (caching vs MM buffer size)."""

from repro.experiments import fig4_4


def test_fig4_4_caching_vs_mm_size(once):
    result = once(fig4_4.run, fast=True)
    print()
    print(result.to_table())
    # At MM=2000 the volatile disk cache adds nothing over MM-only;
    # non-volatile variants stay far ahead (paper).
    mm_only = result.series_by_label("MM caching only")
    volatile = result.series_by_label("vol. disk cache 1000")
    nvem500 = result.series_by_label("NVEM buffer 500")
    last = -1
    assert abs(volatile.points[last].response_ms
               - mm_only.points[last].response_ms) < 6.0
    assert nvem500.points[last].response_ms < \
        0.7 * mm_only.points[last].response_ms
