"""Benchmark E4 — regenerate Figure 4.4 (caching vs MM buffer size)."""

from repro.experiments.api import ExperimentRunner, get_experiment


def test_fig4_4_caching_vs_mm_size(once):
    spec = get_experiment("fig4_4")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))
    # At MM=2000 the volatile disk cache adds nothing over MM-only;
    # non-volatile variants stay far ahead (paper).
    mm_only = result.series_by_label("MM caching only")
    volatile = result.series_by_label("vol. disk cache 1000")
    nvem500 = result.series_by_label("NVEM buffer 500")
    last = -1
    assert abs(volatile.points[last].response_ms
               - mm_only.points[last].response_ms) < 6.0
    assert nvem500.points[last].response_ms < \
        0.7 * mm_only.points[last].response_ms
