#!/usr/bin/env python
"""Tracked kernel benchmarks: emit and regression-check ``BENCH_kernel.json``.

Every paper figure is produced by replaying millions of kernel events,
so kernel speed bounds experiment turnaround.  This harness times the
workload set defined in :mod:`repro.bench` (importable, so ``repro
bench --profile`` profiles the exact same code) and writes the results
to a JSON trajectory file.

Because absolute times differ between machines, each benchmark also
reports a *normalized* score: its time divided by the time of a fixed
pure-Python calibration loop measured on the same interpreter.  The
``--check`` mode compares normalized scores against a committed
baseline, so a uniformly slower CI runner does not trip the gate while
a genuine kernel regression does.  Per-benchmark tolerance overrides
tighten the gate where a regression would matter most (``event_chain``
guards the scheduler hot path).

Usage::

    PYTHONPATH=src python benchmarks/kernel_bench.py --out BENCH_kernel.json
    PYTHONPATH=src python benchmarks/kernel_bench.py \
        --check BENCH_kernel.json --tolerance 0.30
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench import WORKLOADS, calibration

#: Committed measurements of earlier PRs, kept for the trajectory.
#: PR 1 = pre-overhaul kernel; PR 3 = post kernel overhaul, before the
#: PR 4 reference-pipeline fast path (uncontended grants, fused CPU
#: bursts, buffer-hit/metrics/prewarm fast paths); PR 5 = before the
#: PR 6 pluggable calendar-queue scheduler.  ``fig4_1_cached_rerun``
#: (PR 7, the content-addressed result store) has no earlier reference:
#: it measures the warm-cache rerun path that did not exist before.
REFERENCE = {
    "source": "PR 1 / PR 3 / PR 5 measured on the committed baseline machine",
    "pr1": {
        "event_chain_ms": 21.7,
        "debit_credit_ms": 127.0,
    },
    "pr3": {
        "event_chain_ms": 15.2,
        "debit_credit_ms": 119.7,
        "debit_credit_ms_median": 124.99,
        # Measured by running this harness against the PR-3 checkout.
        "page_reference_ms": 130.7,
        "fig4_1_fast_sweep_ms": 3783.0,
    },
    "pr5": {
        "event_chain_ms": 15.39,
        "debit_credit_ms": 73.486,
        "page_reference_ms": 90.494,
        "fig4_1_fast_sweep_ms": 3140.489,
    },
}

#: Per-benchmark regression tolerance on normalized scores, overriding
#: the CLI-wide ``--tolerance``.  ``event_chain`` is the direct
#: scheduler-hot-path guard: a regression there means the kernel
#: itself slowed down, so the gate is deliberately tight.
TOLERANCE_OVERRIDES: Dict[str, float] = {
    "event_chain": 0.15,
    # Seconds-long and capped at 2 repeats, so min-of-N smooths less of
    # the shared-runner noise than for the millisecond benchmarks.
    "media_redo": 0.60,
    # Three back-to-back 1 s end-to-end runs per repetition; the same
    # shared-runner noise argument applies.
    "trace_overhead": 0.60,
}

#: (name, workload, description, max_repeats).  ``max_repeats`` caps the
#: timing repetitions for benchmarks whose single run is seconds long
#: (the end-to-end sweep), so the suite stays CI-friendly.
BENCHMARKS: List[Tuple[str, Callable[[], int], str, Optional[int]]] = [
    (name, fn, desc,
     2 if name in ("fig4_1_fast_sweep", "media_redo") else None)
    for name, (fn, desc) in WORKLOADS.items()
]


# -- harness -------------------------------------------------------------
def _time_ms(fn: Callable[[], int], repeats: int) -> Dict[str, float]:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e3)
    times.sort()
    return {
        "ms_min": round(times[0], 3),
        "ms_median": round(times[len(times) // 2], 3),
        "repeats": repeats,
    }


def run_suite(repeats: int = 5) -> Dict:
    calib = _time_ms(calibration, repeats)
    report = {
        "schema": "repro-kernel-bench/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calibration_ms": calib["ms_min"],
        "reference": REFERENCE,
        "benchmarks": {},
    }
    for name, fn, desc, max_repeats in BENCHMARKS:
        fn()  # warm-up (imports, caches)
        n = repeats if max_repeats is None else min(repeats, max_repeats)
        timing = _time_ms(fn, n)
        timing["description"] = desc
        timing["normalized"] = round(timing["ms_min"] / calib["ms_min"], 4)
        report["benchmarks"][name] = timing
        print(f"{name:22s} {timing['ms_min']:9.2f} ms  "
              f"(x{timing['normalized']:.2f} calib)  {desc}",
              file=sys.stderr)
    return report


def _limit(name: str, base_normalized: float, tolerance: float) -> float:
    tol = TOLERANCE_OVERRIDES.get(name, tolerance)
    return base_normalized * (1.0 + tol)


def write_summary(report: Dict, baseline_path: str, tolerance: float,
                  path: str) -> None:
    """Append a markdown before/after table (for $GITHUB_STEP_SUMMARY).

    Compares the current run against the committed baseline by both raw
    and machine-normalized time, flagging anything past the regression
    tolerance — the same comparison ``--check`` gates on, rendered where
    a reviewer actually sees it.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh).get("benchmarks", {})
    lines = [
        "### Kernel benchmarks vs committed `%s`" % baseline_path,
        "",
        "| benchmark | baseline ms | current ms | baseline ×calib "
        "| current ×calib | Δ normalized | status |",
        "|---|---:|---:|---:|---:|---:|---|",
    ]
    for name, current in report["benchmarks"].items():
        base = baseline.get(name)
        if base is None:
            lines.append(f"| {name} | — | {current['ms_min']:.2f} | — "
                         f"| {current['normalized']:.3f} | — | new |")
            continue
        delta = (current["normalized"] / base["normalized"] - 1.0) * 100.0
        status = ("REGRESSION" if current["normalized"] >
                  _limit(name, base["normalized"], tolerance) else "ok")
        lines.append(
            f"| {name} | {base['ms_min']:.2f} | {current['ms_min']:.2f} "
            f"| {base['normalized']:.3f} | {current['normalized']:.3f} "
            f"| {delta:+.1f}% | {status} |"
        )
    lines.append("")
    lines.append(f"calibration: {report['calibration_ms']:.2f} ms "
                 f"(python {report['python']}, {report['machine']}); "
                 f"tolerance {tolerance:.0%} on normalized scores "
                 f"(overrides: {TOLERANCE_OVERRIDES})")
    with open(path, "a") as fh:
        fh.write("\n".join(lines) + "\n")


def check(report: Dict, baseline_path: str, tolerance: float) -> int:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = []
    for name, current in report["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if base is None:
            continue
        allowed = _limit(name, base["normalized"], tolerance)
        status = "ok" if current["normalized"] <= allowed else "REGRESSION"
        print(f"check {name:22s} normalized {current['normalized']:.3f} "
              f"vs baseline {base['normalized']:.3f} "
              f"(limit {allowed:.3f}): {status}", file=sys.stderr)
        if status != "ok":
            failures.append(name)
    if failures:
        print(f"kernel benchmark regression in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the JSON report to this path")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed normalized slowdown (default 0.30; "
                             "per-benchmark overrides may be tighter)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per benchmark (default 5)")
    parser.add_argument("--summary", metavar="PATH",
                        help="append a markdown before/after table vs the "
                             "--check baseline (e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)
    if args.summary and not args.check:
        parser.error("--summary requires --check BASELINE")

    report = run_suite(repeats=args.repeats)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    if args.summary:
        write_summary(report, args.check, args.tolerance, args.summary)
    if args.check:
        return check(report, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
