#!/usr/bin/env python
"""Tracked kernel benchmarks: emit and regression-check ``BENCH_kernel.json``.

Every paper figure is produced by replaying millions of kernel events,
so kernel speed bounds experiment turnaround.  This harness times the
three levels that matter and writes them to a JSON trajectory file:

* ``event_chain`` — a single process yielding 20k timeouts: the pure
  ``yield env.timeout`` hot path.
* ``resource_contention`` — 2k customers through a three-stage FIFO
  queueing network: request/grant/release plus timeout mix.
* ``priority_cancel`` — a priority queue under heavy cancellation:
  exercises the eager-purge/compaction path.
* ``debit_credit`` — one simulated second of 200 TPS Debit-Credit:
  the end-to-end simulator.
* ``page_reference`` — one CM hammering the per-reference pipeline
  (CPU burst + buffer-manager fix) on a main-memory-hit working set:
  the path every figure replays millions of times.
* ``fig4_1_fast_sweep`` — the registry-driven fig4_1 fast sweep end to
  end (12 simulated points through the experiment runner): what an
  experiment author actually waits for.

Because absolute times differ between machines, each benchmark also
reports a *normalized* score: its time divided by the time of a fixed
pure-Python calibration loop measured on the same interpreter.  The
``--check`` mode compares normalized scores against a committed
baseline, so a uniformly slower CI runner does not trip the gate while
a genuine kernel regression does.

Usage::

    PYTHONPATH=src python benchmarks/kernel_bench.py --out BENCH_kernel.json
    PYTHONPATH=src python benchmarks/kernel_bench.py \
        --check BENCH_kernel.json --tolerance 0.30
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim import Environment, PriorityResource, RandomStreams, Resource

#: Committed measurements of earlier PRs, kept for the trajectory.
#: PR 1 = pre-overhaul kernel; PR 3 = post kernel overhaul, before the
#: PR 4 reference-pipeline fast path (uncontended grants, fused CPU
#: bursts, buffer-hit/metrics/prewarm fast paths).
REFERENCE = {
    "source": "PR 1 (pre fast-path kernel) / PR 3 (pre reference-pipeline "
              "fast path) on the committed baseline machine",
    "pr1": {
        "event_chain_ms": 21.7,
        "debit_credit_ms": 127.0,
    },
    "pr3": {
        "event_chain_ms": 15.2,
        "debit_credit_ms": 119.7,
        "debit_credit_ms_median": 124.99,
        # Measured by running this harness against the PR-3 checkout.
        "page_reference_ms": 130.7,
        "fig4_1_fast_sweep_ms": 3783.0,
    },
}


# -- workloads -----------------------------------------------------------
def bench_event_chain(n: int = 20_000) -> int:
    env = Environment()

    def proc(env):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert env.now == float(n)
    return n


def bench_resource_contention(customers: int = 2_000) -> int:
    env = Environment()
    streams = RandomStreams(1)
    servers = [Resource(env, capacity=2) for _ in range(3)]

    def customer(env):
        for server in servers:
            req = server.request()
            yield req
            yield env.timeout(streams.exponential("svc", 1.0))
            server.release(req)

    def source(env):
        for _ in range(customers):
            yield env.timeout(streams.exponential("arr", 0.5))
            env.process(customer(env))

    env.process(source(env))
    env.run()
    return customers


def bench_priority_cancel(customers: int = 2_000) -> int:
    """Contended priority resource with a third of the waiters aborted."""
    env = Environment()
    streams = RandomStreams(2)
    server = PriorityResource(env, capacity=2)

    def customer(env, i):
        req = server.request(priority=i % 7)
        if i % 3 == 0:
            # Give up quickly: exercises cancel/purge under load.
            result = yield env.any_of([req, env.timeout(0.4)])
            if req not in result.values():
                server.cancel(req)
                return
        else:
            yield req
        yield env.timeout(streams.exponential("svc", 1.0))
        server.release(req)

    def source(env):
        for i in range(customers):
            yield env.timeout(streams.exponential("arr", 0.3))
            env.process(customer(env, i))

    env.process(source(env))
    env.run()
    return customers


def bench_debit_credit() -> int:
    from repro.core.model import TransactionSystem
    from repro.experiments.defaults import debit_credit_config, disk_only
    from repro.workload.debit_credit import DebitCreditWorkload

    config = debit_credit_config(disk_only())
    system = TransactionSystem(config, DebitCreditWorkload(arrival_rate=200))
    results = system.run(warmup=0.5, duration=1.0)
    assert results.committed > 100
    return results.committed


def bench_page_reference(n: int = 20_000) -> int:
    """One CM driving the per-reference pipeline on a hot working set.

    64 warm-up misses fill the frames, then every reference is a main
    memory hit: per-object CPU burst + buffer fix + hit accounting —
    the exact loop the transaction managers run per object reference.
    Uses the counters-only metrics mode like the other micro-benchmarks.
    """
    from repro.core.bm import BufferManager
    from repro.core.cpu import CPUPool
    from repro.core.metrics import MetricsCollector
    from repro.core.transaction import ObjectRef, Transaction
    from repro.experiments.defaults import debit_credit_config, disk_only
    from repro.storage.hierarchy import StorageSubsystem

    config = debit_credit_config(disk_only())
    env = Environment()
    streams = RandomStreams(7)
    metrics = (MetricsCollector.lite(env)
               if hasattr(MetricsCollector, "lite")
               else MetricsCollector(env, reservoir=0))
    storage = StorageSubsystem(env, streams, config)
    cpu = CPUPool(env, streams, config.cm)
    bm = BufferManager(env, streams, config, cpu, storage, metrics)
    instr_or = config.cm.instr_or
    refs = [ObjectRef(1, i, i % 64, False, tag="BRANCH") for i in range(n)]
    tx = Transaction(1, "bench", refs[:1])
    # Runnable against pre-fast-path checkouts (reference measurements).
    fix_fast = getattr(bm, "fix_page_fast", None)

    def driver(env):
        if fix_fast is None:  # pragma: no cover - old-checkout fallback
            for ref in refs:
                yield from cpu.execute(tx, instr_or)
                yield from bm.fix_page(tx, ref)
            return
        for ref in refs:
            yield from cpu.execute(tx, instr_or)
            if fix_fast(tx, ref) is None:
                yield from bm.fix_page_miss(tx, ref)

    env.run(until=env.process(driver(env)))
    assert metrics.page_access.total() == n
    return n


def bench_restart_replay(redo_pages: int = 1200,
                         log_pages: int = 600) -> int:
    """Crash-recovery restart replay (log scan + redo) on disk units.

    Populates the recovery tracker with a synthetic dirty page table
    and log tail, then replays the restart through the real device
    registry — the path every fig_restart / ablation_availability
    point pays once per injected crash.
    """
    from repro.core.model import TransactionSystem
    from repro.experiments.defaults import debit_credit_config, disk_only

    config = debit_credit_config(disk_only())
    config.recovery.enabled = True

    class _IdleWorkload:
        def start(self, system):
            pass

    system = TransactionSystem(config, _IdleWorkload(), seed=11)
    tracker = system.recovery.tracker
    for i in range(redo_pages):
        tracker.note_dirty((0, i))
    system.storage._log_page = log_pages
    snapshot = tracker.on_crash(time=0.0, log_tail=log_pages, in_flight=0)
    replayer = system.recovery.crash_controller.replayer
    done = system.env.process(replayer.replay(snapshot))
    system.env.run(until=done)
    assert system.env.now > 0
    return redo_pages + log_pages


def bench_fig4_1_fast_sweep() -> int:
    """The registry-driven fig4_1 fast sweep, serial, end to end."""
    from repro.experiments.api import ExperimentRunner, get_experiment

    result = ExperimentRunner().run_one(get_experiment("fig4_1"),
                                        profile="fast")
    points = sum(len(series.points) for series in result.series)
    assert points >= 8
    return points


def calibration(loops: int = 2_000_000) -> int:
    """Fixed pure-Python spin loop; the machine-speed yardstick."""
    acc = 0
    for i in range(loops):
        acc += i & 7
    return acc


#: (name, workload, description, max_repeats).  ``max_repeats`` caps the
#: timing repetitions for benchmarks whose single run is seconds long
#: (the end-to-end sweep), so the suite stays CI-friendly.
BENCHMARKS: List[Tuple[str, Callable[[], int], str, Optional[int]]] = [
    ("event_chain", bench_event_chain, "20k-timeout chain", None),
    ("resource_contention", bench_resource_contention,
     "2k customers, 3-stage FIFO network", None),
    ("priority_cancel", bench_priority_cancel,
     "2k customers, priority queue, 1/3 cancelled", None),
    ("debit_credit", bench_debit_credit,
     "1 s of 200 TPS Debit-Credit end-to-end", None),
    ("page_reference", bench_page_reference,
     "20k-reference MM-hit pipeline (1 CM)", None),
    ("restart_replay", bench_restart_replay,
     "crash restart: 600-page log scan + 1200-page redo on disks", None),
    ("fig4_1_fast_sweep", bench_fig4_1_fast_sweep,
     "fig4_1 fast profile through the experiment registry", 2),
]


# -- harness -------------------------------------------------------------
def _time_ms(fn: Callable[[], int], repeats: int) -> Dict[str, float]:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e3)
    times.sort()
    return {
        "ms_min": round(times[0], 3),
        "ms_median": round(times[len(times) // 2], 3),
        "repeats": repeats,
    }


def run_suite(repeats: int = 5) -> Dict:
    calib = _time_ms(calibration, repeats)
    report = {
        "schema": "repro-kernel-bench/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calibration_ms": calib["ms_min"],
        "reference": REFERENCE,
        "benchmarks": {},
    }
    for name, fn, desc, max_repeats in BENCHMARKS:
        fn()  # warm-up (imports, caches)
        n = repeats if max_repeats is None else min(repeats, max_repeats)
        timing = _time_ms(fn, n)
        timing["description"] = desc
        timing["normalized"] = round(timing["ms_min"] / calib["ms_min"], 4)
        report["benchmarks"][name] = timing
        print(f"{name:22s} {timing['ms_min']:9.2f} ms  "
              f"(x{timing['normalized']:.2f} calib)  {desc}",
              file=sys.stderr)
    return report


def write_summary(report: Dict, baseline_path: str, tolerance: float,
                  path: str) -> None:
    """Append a markdown before/after table (for $GITHUB_STEP_SUMMARY).

    Compares the current run against the committed baseline by both raw
    and machine-normalized time, flagging anything past the regression
    tolerance — the same comparison ``--check`` gates on, rendered where
    a reviewer actually sees it.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh).get("benchmarks", {})
    lines = [
        "### Kernel benchmarks vs committed `%s`" % baseline_path,
        "",
        "| benchmark | baseline ms | current ms | baseline ×calib "
        "| current ×calib | Δ normalized | status |",
        "|---|---:|---:|---:|---:|---:|---|",
    ]
    for name, current in report["benchmarks"].items():
        base = baseline.get(name)
        if base is None:
            lines.append(f"| {name} | — | {current['ms_min']:.2f} | — "
                         f"| {current['normalized']:.3f} | — | new |")
            continue
        delta = (current["normalized"] / base["normalized"] - 1.0) * 100.0
        status = ("REGRESSION" if current["normalized"] >
                  base["normalized"] * (1.0 + tolerance) else "ok")
        lines.append(
            f"| {name} | {base['ms_min']:.2f} | {current['ms_min']:.2f} "
            f"| {base['normalized']:.3f} | {current['normalized']:.3f} "
            f"| {delta:+.1f}% | {status} |"
        )
    lines.append("")
    lines.append(f"calibration: {report['calibration_ms']:.2f} ms "
                 f"(python {report['python']}, {report['machine']}); "
                 f"tolerance {tolerance:.0%} on normalized scores")
    with open(path, "a") as fh:
        fh.write("\n".join(lines) + "\n")


def check(report: Dict, baseline_path: str, tolerance: float) -> int:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = []
    for name, current in report["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if base is None:
            continue
        allowed = base["normalized"] * (1.0 + tolerance)
        status = "ok" if current["normalized"] <= allowed else "REGRESSION"
        print(f"check {name:22s} normalized {current['normalized']:.3f} "
              f"vs baseline {base['normalized']:.3f} "
              f"(limit {allowed:.3f}): {status}", file=sys.stderr)
        if status != "ok":
            failures.append(name)
    if failures:
        print(f"kernel benchmark regression (> {tolerance:.0%}) in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the JSON report to this path")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed normalized slowdown (default 0.30)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per benchmark (default 5)")
    parser.add_argument("--summary", metavar="PATH",
                        help="append a markdown before/after table vs the "
                             "--check baseline (e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)
    if args.summary and not args.check:
        parser.error("--summary requires --check BASELINE")

    report = run_suite(repeats=args.repeats)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    if args.summary:
        write_summary(report, args.check, args.tolerance, args.summary)
    if args.check:
        return check(report, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
