#!/usr/bin/env python
"""Tracked kernel benchmarks: emit and regression-check ``BENCH_kernel.json``.

Every paper figure is produced by replaying millions of kernel events,
so kernel speed bounds experiment turnaround.  This harness times the
three levels that matter and writes them to a JSON trajectory file:

* ``event_chain`` — a single process yielding 20k timeouts: the pure
  ``yield env.timeout`` hot path.
* ``resource_contention`` — 2k customers through a three-stage FIFO
  queueing network: request/grant/release plus timeout mix.
* ``priority_cancel`` — a priority queue under heavy cancellation:
  exercises the eager-purge/compaction path.
* ``debit_credit`` — one simulated second of 200 TPS Debit-Credit:
  the end-to-end simulator.

Because absolute times differ between machines, each benchmark also
reports a *normalized* score: its time divided by the time of a fixed
pure-Python calibration loop measured on the same interpreter.  The
``--check`` mode compares normalized scores against a committed
baseline, so a uniformly slower CI runner does not trip the gate while
a genuine kernel regression does.

Usage::

    PYTHONPATH=src python benchmarks/kernel_bench.py --out BENCH_kernel.json
    PYTHONPATH=src python benchmarks/kernel_bench.py \
        --check BENCH_kernel.json --tolerance 0.30
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.sim import Environment, PriorityResource, RandomStreams, Resource

#: PR 1 measurements (pre-overhaul kernel), kept for the trajectory.
REFERENCE = {
    "source": "PR 1 baseline (pre fast-path kernel)",
    "event_chain_ms": 21.7,
    "debit_credit_ms": 127.0,
}


# -- workloads -----------------------------------------------------------
def bench_event_chain(n: int = 20_000) -> int:
    env = Environment()

    def proc(env):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert env.now == float(n)
    return n


def bench_resource_contention(customers: int = 2_000) -> int:
    env = Environment()
    streams = RandomStreams(1)
    servers = [Resource(env, capacity=2) for _ in range(3)]

    def customer(env):
        for server in servers:
            req = server.request()
            yield req
            yield env.timeout(streams.exponential("svc", 1.0))
            server.release(req)

    def source(env):
        for _ in range(customers):
            yield env.timeout(streams.exponential("arr", 0.5))
            env.process(customer(env))

    env.process(source(env))
    env.run()
    return customers


def bench_priority_cancel(customers: int = 2_000) -> int:
    """Contended priority resource with a third of the waiters aborted."""
    env = Environment()
    streams = RandomStreams(2)
    server = PriorityResource(env, capacity=2)

    def customer(env, i):
        req = server.request(priority=i % 7)
        if i % 3 == 0:
            # Give up quickly: exercises cancel/purge under load.
            result = yield env.any_of([req, env.timeout(0.4)])
            if req not in result.values():
                server.cancel(req)
                return
        else:
            yield req
        yield env.timeout(streams.exponential("svc", 1.0))
        server.release(req)

    def source(env):
        for i in range(customers):
            yield env.timeout(streams.exponential("arr", 0.3))
            env.process(customer(env, i))

    env.process(source(env))
    env.run()
    return customers


def bench_debit_credit() -> int:
    from repro.core.model import TransactionSystem
    from repro.experiments.defaults import debit_credit_config, disk_only
    from repro.workload.debit_credit import DebitCreditWorkload

    config = debit_credit_config(disk_only())
    system = TransactionSystem(config, DebitCreditWorkload(arrival_rate=200))
    results = system.run(warmup=0.5, duration=1.0)
    assert results.committed > 100
    return results.committed


def calibration(loops: int = 2_000_000) -> int:
    """Fixed pure-Python spin loop; the machine-speed yardstick."""
    acc = 0
    for i in range(loops):
        acc += i & 7
    return acc


BENCHMARKS: List[Tuple[str, Callable[[], int], str]] = [
    ("event_chain", bench_event_chain, "20k-timeout chain"),
    ("resource_contention", bench_resource_contention,
     "2k customers, 3-stage FIFO network"),
    ("priority_cancel", bench_priority_cancel,
     "2k customers, priority queue, 1/3 cancelled"),
    ("debit_credit", bench_debit_credit,
     "1 s of 200 TPS Debit-Credit end-to-end"),
]


# -- harness -------------------------------------------------------------
def _time_ms(fn: Callable[[], int], repeats: int) -> Dict[str, float]:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e3)
    times.sort()
    return {
        "ms_min": round(times[0], 3),
        "ms_median": round(times[len(times) // 2], 3),
        "repeats": repeats,
    }


def run_suite(repeats: int = 5) -> Dict:
    calib = _time_ms(calibration, repeats)
    report = {
        "schema": "repro-kernel-bench/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calibration_ms": calib["ms_min"],
        "reference": REFERENCE,
        "benchmarks": {},
    }
    for name, fn, desc in BENCHMARKS:
        fn()  # warm-up (imports, caches)
        timing = _time_ms(fn, repeats)
        timing["description"] = desc
        timing["normalized"] = round(timing["ms_min"] / calib["ms_min"], 4)
        report["benchmarks"][name] = timing
        print(f"{name:22s} {timing['ms_min']:9.2f} ms  "
              f"(x{timing['normalized']:.2f} calib)  {desc}",
              file=sys.stderr)
    return report


def check(report: Dict, baseline_path: str, tolerance: float) -> int:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = []
    for name, current in report["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if base is None:
            continue
        allowed = base["normalized"] * (1.0 + tolerance)
        status = "ok" if current["normalized"] <= allowed else "REGRESSION"
        print(f"check {name:22s} normalized {current['normalized']:.3f} "
              f"vs baseline {base['normalized']:.3f} "
              f"(limit {allowed:.3f}): {status}", file=sys.stderr)
        if status != "ok":
            failures.append(name)
    if failures:
        print(f"kernel benchmark regression (> {tolerance:.0%}) in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the JSON report to this path")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed normalized slowdown (default 0.30)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per benchmark (default 5)")
    args = parser.parse_args(argv)

    report = run_suite(repeats=args.repeats)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    if args.check:
        return check(report, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
