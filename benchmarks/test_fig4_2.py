"""Benchmark E2 — regenerate Figure 4.2 (database allocation)."""

from repro.experiments.api import ExperimentRunner, get_experiment


def test_fig4_2_database_allocation(once):
    spec = get_experiment("fig4_2")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))
    # Paper ordering at every sampled rate:
    # disk > write-buffer variants > SSD > NVEM-resident.
    for i, _rate in enumerate(result.series[0].xs()):
        rt = {s.label: s.points[i].response_ms for s in result.series
              if i < len(s.points)}
        assert rt["disk"] > rt["disk cache WB"]
        assert rt["disk cache WB"] > rt["SSD"]
        assert rt["SSD"] > rt["NVEM-resident"]
        assert rt["NVEM WB"] <= rt["disk cache WB"] * 1.1
