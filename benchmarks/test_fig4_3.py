"""Benchmark E3 — regenerate Figure 4.3 (FORCE vs NOFORCE)."""

from repro.experiments.api import ExperimentRunner, get_experiment


def test_fig4_3_force_vs_noforce(once):
    spec = get_experiment("fig4_3")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))
    rt = {s.label: s.points[0].response_ms for s in result.series}
    # FORCE pays heavily on disk, less behind a write buffer, and is
    # nearly free on NVEM; FORCE+WB beats disk-based NOFORCE (paper).
    assert rt["FORCE: disk"] > 1.3 * rt["NOFORCE: disk"]
    assert rt["FORCE: cache WB"] < rt["NOFORCE: disk"]
    assert abs(rt["FORCE: NVEM"] - rt["NOFORCE: NVEM"]) < 3.0
