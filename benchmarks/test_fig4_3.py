"""Benchmark E3 — regenerate Figure 4.3 (FORCE vs NOFORCE)."""

from repro.experiments import fig4_3


def test_fig4_3_force_vs_noforce(once):
    result = once(fig4_3.run, fast=True)
    print()
    print(result.to_table())
    rt = {s.label: s.points[0].response_ms for s in result.series}
    # FORCE pays heavily on disk, less behind a write buffer, and is
    # nearly free on NVEM; FORCE+WB beats disk-based NOFORCE (paper).
    assert rt["FORCE: disk"] > 1.3 * rt["NOFORCE: disk"]
    assert rt["FORCE: cache WB"] < rt["NOFORCE: disk"]
    assert abs(rt["FORCE: NVEM"] - rt["NOFORCE: NVEM"]) < 3.0
