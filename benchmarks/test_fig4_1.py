"""Benchmark E1 — regenerate Figure 4.1 (log file allocation)."""

from repro.experiments import fig4_1


def test_fig4_1_log_allocation(once):
    result = once(fig4_1.run, fast=True)
    print()
    print(result.to_table())
    # Shape assertions (paper): the single log disk saturates early,
    # NVEM/SSD logs carry the highest rate with flat response times.
    nvem = result.series_by_label("log in NVEM")
    ssd = result.series_by_label("log on SSD")
    single = result.series_by_label("log on single disk")
    assert max(nvem.xs()) == 500 and not nvem.points[-1].saturated
    assert max(ssd.xs()) == 500 and not ssd.points[-1].saturated
    assert single.points[0].response_ms > nvem.points[0].response_ms
