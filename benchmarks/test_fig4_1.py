"""Benchmark E1 — regenerate Figure 4.1 (log file allocation)."""

from repro.experiments.api import ExperimentRunner, get_experiment


def test_fig4_1_log_allocation(once):
    spec = get_experiment("fig4_1")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))
    # Shape assertions (paper): the single log disk saturates early,
    # NVEM/SSD logs carry the highest rate with flat response times.
    nvem = result.series_by_label("log in NVEM")
    ssd = result.series_by_label("log on SSD")
    single = result.series_by_label("log on single disk")
    assert max(nvem.xs()) == 500 and not nvem.points[-1].saturated
    assert max(ssd.xs()) == 500 and not ssd.points[-1].saturated
    assert single.points[0].response_ms > nvem.points[0].response_ms
