"""Benchmark — distributed data-sharing extension ([BHR91]/[Ra91]).

Not a paper artifact (the paper evaluates the central case only) but
the extension its conclusions describe: node scaling with a global
extended memory and NVEM vs LAN coupling.
"""

from repro.distributed import (
    CouplingConfig,
    DistributedConfig,
    DistributedSystem,
)
from repro.experiments.defaults import debit_credit_config, disk_only
from repro.workload.debit_credit import DebitCreditWorkload


def run_point(nodes, gem, coupling):
    config = debit_credit_config(disk_only())
    dconfig = DistributedConfig(num_nodes=nodes, gem_capacity=gem,
                                coupling=coupling)
    system = DistributedSystem(
        config, dconfig,
        DebitCreditWorkload(arrival_rate=300.0 * nodes), seed=5,
    )
    return system.run(warmup=2.0, duration=4.0)


def test_distributed_scaling(once):
    def experiment():
        rows = []
        for nodes in (1, 2, 4):
            for gem in (0, 2000):
                results = run_point(nodes, gem,
                                    CouplingConfig.nvem_coupling())
                rows.append((nodes, gem, results))
        return rows

    rows = once(experiment)
    print()
    print(f"{'nodes':>5} {'GEM':>6} {'thr':>8} {'rt(ms)':>8}")
    for nodes, gem, r in rows:
        print(f"{nodes:>5} {gem:>6} {r.throughput:>8.0f} "
              f"{r.response_time_ms:>8.1f}")
    by_key = {(n, g): r for n, g, r in rows}
    # Scaling: 4 nodes carry 4x the rate without saturating.
    assert not by_key[(4, 2000)].saturated
    # GEM cuts response time at every node count.
    for nodes in (1, 2, 4):
        assert by_key[(nodes, 2000)].response_time_mean < \
            by_key[(nodes, 0)].response_time_mean


def test_coupling_comparison(once):
    def experiment():
        nvem = run_point(2, 2000, CouplingConfig.nvem_coupling())
        lan = run_point(2, 2000, CouplingConfig.network_coupling())
        return nvem, lan

    nvem, lan = once(experiment)
    print()
    print(f"nvem coupling: rt={nvem.response_time_ms:.1f} ms")
    print(f"lan  coupling: rt={lan.response_time_ms:.1f} ms")
    # [Ra91]: NVEM-based coupling makes distribution overhead small.
    assert nvem.response_time_mean < lan.response_time_mean
