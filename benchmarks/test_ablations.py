"""Benchmark E11 — ablations: group commit, async replacement,
deferred NVEM propagation, NVEM migration modes."""

from repro.experiments.ablations import migration_summary
from repro.experiments.api import ExperimentRunner, get_experiment


def test_group_commit(once):
    spec = get_experiment("ablation_group_commit")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))
    plain = result.series_by_label("log disk, no GC")
    grouped = result.series_by_label("log disk, GC=8")
    # Group commit carries rates the single log disk cannot (paper §4.2:
    # "Group commit would permit significantly higher transaction rates").
    assert max(grouped.xs()) >= max(plain.xs())


def test_async_replacement(once):
    spec = get_experiment("ablation_async_replacement")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))
    sync = result.series_by_label("sync write-back")
    async_ = result.series_by_label("async write-back")
    # §4.3: asynchronous write-back removes ~one disk write (16.4 ms).
    gap = sync.points[0].response_ms - async_.points[0].response_ms
    assert 8.0 < gap < 25.0


def test_deferred_propagation(once):
    spec = get_experiment("ablation_deferred_propagation")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))
    for series in result.series:
        assert series.points  # both variants run to completion


def test_migration_modes(once):
    spec = get_experiment("ablation_migration_modes")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))
    modes = migration_summary(result)
    # §4.6: migrating all pages gives the best NVEM hit ratios.  With
    # only 1.6% writes, "all" and "unmodified" populations nearly
    # coincide — allow measurement noise between those two.
    assert modes["all"][0] >= modes["modified"][0]
    assert modes["all"][0] >= modes["unmodified"][0] - 1.5
    # Migrating modified pages alone is far less effective, and the
    # response time reflects the hit-ratio ordering.
    assert modes["all"][1] < modes["modified"][1]
