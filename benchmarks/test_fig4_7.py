"""Benchmark E8 — regenerate Figure 4.7 (trace workload, 2nd-level size)."""

from repro.experiments import fig4_7
from repro.experiments.trace_setup import MEAN_TX_SIZE


def test_fig4_7_trace_second_level_size(once):
    result = once(fig4_7.run, fast=True)
    print()
    print(fig4_7.normalized_table(result))

    def norm(series, i):
        return series.points[i].results.normalized_response_time(
            MEAN_TX_SIZE
        )

    nvem = result.series_by_label("NVEM cache")
    vol = result.series_by_label("vol. disk cache")
    last = len(nvem.points) - 1
    # Growing the 2nd-level cache helps; NVEM helps most (paper).
    assert norm(nvem, last) < norm(nvem, 0)
    assert norm(nvem, last) <= norm(vol, last)
