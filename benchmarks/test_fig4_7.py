"""Benchmark E8 — regenerate Figure 4.7 (trace workload, 2nd-level size)."""

from repro.experiments.api import ExperimentRunner, get_experiment
from repro.experiments.trace_setup import MEAN_TX_SIZE


def test_fig4_7_trace_second_level_size(once):
    spec = get_experiment("fig4_7")
    result = once(ExperimentRunner().run_one, spec, "fast")
    print()
    print(spec.render(result))

    def norm(series, i):
        return series.points[i].results.normalized_response_time(
            MEAN_TX_SIZE
        )

    nvem = result.series_by_label("NVEM cache")
    vol = result.series_by_label("vol. disk cache")
    last = len(nvem.points) - 1
    # Growing the 2nd-level cache helps; NVEM helps most (paper).
    assert norm(nvem, last) < norm(nvem, 0)
    assert norm(nvem, last) <= norm(vol, last)
