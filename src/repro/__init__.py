"""repro — reproduction of Rahm's TPSIM extended-storage study (1991/92).

The package is layered bottom-up:

* :mod:`repro.sim` — discrete-event simulation kernel (DeNet substitute).
* :mod:`repro.storage` — disks, disk caches, SSDs, NVEM, hierarchy wiring.
* :mod:`repro.core` — the transaction-system model: configuration, CPUs,
  locking, buffer manager, transaction manager, metrics.
* :mod:`repro.workload` — SOURCE components: synthetic, Debit-Credit,
  trace-driven.
* :mod:`repro.experiments` — parameter sweeps regenerating every figure
  and table of the paper's §4.
* :mod:`repro.analysis` — the storage cost model of Table 2.1.

Quickstart::

    from repro import TransactionSystem, DebitCreditWorkload
    from repro.experiments.defaults import debit_credit_config, disk_only

    config = debit_credit_config(disk_only())
    system = TransactionSystem(config, DebitCreditWorkload(arrival_rate=100))
    results = system.run(warmup=5.0, duration=20.0)
    print(results.summary())
"""

from repro.core import (
    AccessMode,
    CCMode,
    CMConfig,
    DeviceSpec,
    DiskUnitConfig,
    DiskUnitType,
    Distribution,
    LogAllocation,
    MEMORY,
    NVEM,
    NVEMCachingMode,
    NVEMConfig,
    PartitionConfig,
    PolicySpec,
    SubPartition,
    SystemConfig,
    TransactionTypeConfig,
    UpdateStrategy,
)
from repro.core.metrics import Results
from repro.core.model import TransactionSystem
from repro.workload import (
    DebitCreditWorkload,
    SyntheticWorkload,
    Trace,
    TraceWorkload,
    generate_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AccessMode",
    "CCMode",
    "CMConfig",
    "DebitCreditWorkload",
    "DeviceSpec",
    "DiskUnitConfig",
    "DiskUnitType",
    "Distribution",
    "LogAllocation",
    "MEMORY",
    "NVEM",
    "NVEMCachingMode",
    "NVEMConfig",
    "PartitionConfig",
    "PolicySpec",
    "Results",
    "SubPartition",
    "SyntheticWorkload",
    "SystemConfig",
    "Trace",
    "TraceWorkload",
    "TransactionSystem",
    "TransactionTypeConfig",
    "UpdateStrategy",
    "generate_trace",
    "__version__",
]
