"""Reproducible random-variate streams.

Every stochastic component of the model (arrivals, CPU service, disk
service, reference selection, ...) draws from its own named substream so
that changing one part of the configuration does not perturb the random
sequence seen by unrelated parts — the standard variance-reduction
practice for simulation experiments, and what makes our sweeps (e.g.
Fig. 4.4's buffer-size axis) smooth.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

__all__ = ["RandomStreams"]

# Large odd constant used to derive independent substream seeds.
_STREAM_SALT = 0x9E3779B97F4A7C15

#: CPython's Random exposes ``_randbelow``; ``randint(a, b)`` is exactly
#: ``a + _randbelow(b - a + 1)`` (see random.py, randrange with istep 1),
#: so calling it directly skips randrange's argument plumbing while
#: consuming the identical underlying bits.  Other implementations fall
#: back to the public API.
_HAS_RANDBELOW = hasattr(random.Random, "_randbelow")


class RandomStreams:
    """A family of independent ``random.Random`` substreams.

    Substreams are created lazily by name::

        streams = RandomStreams(seed=42)
        streams.exponential("cpu", mean=0.8)
        streams.uniform_int("account-select", 0, 4_999_999)
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The substream for ``name`` (created on first use)."""
        rng = self._streams.get(name)
        if rng is None:
            # Derive a stable substream seed from the master seed + name.
            sub = (hash_name(name) ^ (self.seed * _STREAM_SALT)) & ((1 << 64) - 1)
            rng = random.Random(sub)
            self._streams[name] = rng
        return rng

    # -- variate helpers ---------------------------------------------------
    def exponential(self, name: str, mean: float) -> float:
        """Exponential variate with the given mean (0 mean -> 0)."""
        if mean <= 0:
            return 0.0
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def uniform_int(self, name: str, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low!r}, {high!r}]")
        rng = self._streams.get(name)
        if rng is None:
            rng = self.stream(name)
        if _HAS_RANDBELOW:
            return low + rng._randbelow(high - low + 1)
        return rng.randint(low, high)  # pragma: no cover - non-CPython

    def bernoulli(self, name: str, p: float) -> bool:
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self.stream(name).random() < p

    def choice_weighted(self, name: str, weights: Sequence[float]) -> int:
        """Index drawn with probability proportional to ``weights``."""
        total = 0.0
        for w in weights:
            if w < 0:
                raise ValueError("negative weight")
            total += w
        if total <= 0:
            raise ValueError("weights sum to zero")
        x = self.stream(name).random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if x < acc:
                return i
        return len(weights) - 1

    def geometric_like_size(self, name: str, mean: float,
                            minimum: int = 1) -> int:
        """Integer transaction size: exponential over the mean, floored.

        The paper draws variable transaction sizes from an exponential
        distribution over the specified mean (§3.1).
        """
        if mean <= minimum:
            return max(minimum, int(round(mean)))
        value = self.stream(name).expovariate(1.0 / mean)
        return max(minimum, int(round(value)))

    def zipf(self, name: str, n: int, theta: float) -> int:
        """Zipf-like rank in [0, n) via inverse-CDF over harmonic weights.

        Used only by the synthetic trace generator, where a smooth skew
        is needed; the paper's own workloads use subpartition rules.
        """
        if n <= 1:
            return 0
        rng = self.stream(name)
        # Approximate inverse CDF (Chlebus closed form) — adequate for
        # workload generation purposes.
        u = rng.random()
        if theta == 1.0:
            import math
            h_n = math.log(n) + 0.5772156649
            target = u * h_n
            rank = int(math.exp(target) - 0.5772156649)
        else:
            import math
            s = 1.0 - theta
            h_n = (n ** s - 1.0) / s
            rank = int(((u * h_n * s) + 1.0) ** (1.0 / s)) - 1
        if rank < 0:
            rank = 0
        elif rank >= n:
            rank = n - 1
        return rank

    def shuffle(self, name: str, items: List) -> None:
        self.stream(name).shuffle(items)

    def spawn(self, name: str) -> "RandomStreams":
        """A child family with a seed derived from this one."""
        child_seed = (self.seed * _STREAM_SALT + hash_name(name)) & ((1 << 63) - 1)
        return RandomStreams(child_seed)


def hash_name(name: str) -> int:
    """Stable 64-bit FNV-1a hash of a stream name.

    ``hash()`` is randomized per interpreter run, so it cannot be used
    for reproducible seeding.
    """
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & ((1 << 64) - 1)
    return value
