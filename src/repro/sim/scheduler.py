"""Pluggable event schedulers for the simulation kernel.

The kernel keys every scheduled event by ``(time, seq)``: simultaneous
events dispatch in FIFO order of their sequence numbers, which makes a
fixed-seed run fully deterministic.  This module provides two
interchangeable structures that maintain that order:

* :class:`HeapScheduler` — the classic binary heap of
  ``(time, seq, event)`` tuples.  O(log n) per insert/pop, one pop per
  event.  Kept as the verification backend: its dispatch order *is* the
  specification.
* :class:`CalendarScheduler` — a calendar queue specialised for this
  workload's shape.  TPSIM service times are near-constant (CPU bursts,
  disk/NVEM/flash latencies) and a large fraction of events share an
  exact timestamp (zero-delay grants, lock handoffs, simultaneous I/O
  completions), so events are hashed into *exact-timestamp buckets*
  (``dict`` time → list) while a small heap orders only the *distinct*
  times.  Same-instant cohorts are then drained in one bucket scan:
  ``n`` events at one instant cost one heap pop plus ``n`` list reads
  instead of ``n`` heap pops.  Within a bucket, append order equals
  sequence order (sequence numbers are assigned monotonically at
  insert), so no per-event key is stored at all on the hot path.

Both backends expose the same protocol, consumed by
:class:`repro.sim.core.Environment`:

``insert(when, seq, event)``
    Add a triggered event.  ``seq`` is assigned by the environment's
    single ``_insert`` choke point and is strictly monotone.
``run_all(env)`` / ``run_horizon(env, horizon)`` / ``run_event(env, finished)``
    The three event-loop modes (drain, run-until-time, run-until-event),
    each owning an optimised dispatch loop.
``pop_one(env)`` / ``peek()`` / ``pending_at(now)`` / ``note_cancelled(env)``
    Single-step dispatch, next-event time, the same-instant pending
    probe used by the resource layer's uncontended fast-grant guard,
    and cancellation accounting (with compaction).

Cancellation and compaction
---------------------------
Cancelled events stay in the structure and are dropped as no-ops when
they surface, exactly as for the heap historically.  When cancelled
entries dominate (``>= _COMPACT_MIN`` of them and at least half of all
pending entries), the structure is compacted in one sweep.  For the
calendar queue the sweep also *deletes buckets left empty*, so mass
interruption cannot pin thousands of dead timestamps in the time heap;
the distinct-time heap is rebuilt from the surviving bucket keys.

Tracing (the scheduler-equivalence oracle)
------------------------------------------
``enable_trace()`` turns on dispatch-order recording: every *live*
dispatch appends ``(time, seq)`` to ``trace``.  Cancelled no-op drops
are not recorded because compaction may collect them at slightly
different points on the two backends (the calendar queue cannot compact
its in-flight cohort); live dispatch order is the observable contract.
The environment also disables its solo-event short circuit under
tracing so every event flows through the structure.
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from sys import getrefcount as _getrefcount
from typing import Optional

__all__ = ["CalendarScheduler", "HeapScheduler", "make_scheduler"]

# Event states (single source of truth; re-exported by repro.sim.core).
_PENDING = 0
_TRIGGERED = 1  # scheduled, value fixed
_CANCELLED = 2  # scheduled but abandoned: dropped unless re-subscribed
_PROCESSED = 3  # callbacks have run

#: Cancelled entries in the structure before a compaction sweep is
#: considered.
_COMPACT_MIN = 64

_INF = float("inf")

#: Set by repro.sim.core after it defines Timeout (avoids a circular
#: import); the dispatch loops use it to gate the timeout object pool.
_Timeout: Optional[type] = None


def make_scheduler(spec=None):
    """Resolve a scheduler spec: None (env var / default), name, class
    or ready instance."""
    if spec is None:
        spec = os.environ.get("REPRO_SCHEDULER", "calendar")
    if isinstance(spec, str):
        try:
            return _SCHEDULERS[spec.lower()]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler {spec!r}; expected one of "
                f"{sorted(_SCHEDULERS)}"
            ) from None
    if isinstance(spec, type):
        return spec()
    return spec


class HeapScheduler:
    """Binary heap of ``(time, seq, event)`` — the verification backend."""

    name = "heap"

    __slots__ = ("_heap", "_ncancelled", "trace")

    def __init__(self):
        self._heap: list = []
        self._ncancelled = 0
        self.trace: Optional[list] = None

    def __len__(self) -> int:
        return len(self._heap)

    def enable_trace(self) -> list:
        self.trace = []
        return self.trace

    # -- structure ops ---------------------------------------------------
    def insert(self, when, seq, event) -> None:
        heappush(self._heap, (when, seq, event))

    def peek(self) -> float:
        heap = self._heap
        return heap[0][0] if heap else _INF

    def pending_at(self, now) -> bool:
        heap = self._heap
        return bool(heap) and heap[0][0] <= now

    def pop_one(self, env):
        """Pop the next entry (IndexError when empty), advancing time."""
        when, _, event = heappop(self._heap)
        env._now = when
        return event

    def note_cancelled(self, env) -> None:
        """Account one newly cancelled entry; compact when dominant.

        Compaction removes cancelled entries outright so that mass
        interruption (e.g. aborting a wave of blocked transactions)
        does not leave the heap dragging thousands of dead waits.
        Collected events are marked processed: anyone who later waits
        on one gets its value immediately, as for any past event.
        """
        n = self._ncancelled + 1
        self._ncancelled = n
        heap = self._heap
        if n >= _COMPACT_MIN and 2 * n >= len(heap):
            alive = []
            for entry in heap:
                ev = entry[2]
                if ev._state == _CANCELLED:
                    ev._state = _PROCESSED
                    ev.callbacks = None
                else:
                    alive.append(entry)
            env._pending -= len(heap) - len(alive)
            # In place: run loops hold a reference to this very list.
            heap[:] = alive
            heapify(heap)
            self._ncancelled = 0

    # -- dispatch loops --------------------------------------------------
    def run_all(self, env) -> None:
        heap = self._heap
        pop = heappop
        tr = self.trace
        grc = _getrefcount
        timeout_cls = _Timeout
        while True:
            if not heap:
                if env._solo is None:
                    return None
                env._flush()
                continue
            when, seq, event = pop(heap)
            env._now = when
            env._pending -= 1
            if event._state == _CANCELLED:
                self._ncancelled -= 1
                event._state = _PROCESSED
                event.callbacks = None
                continue
            if tr is not None:
                tr.append((when, seq))
            callbacks = event.callbacks
            event.callbacks = None
            event._state = _PROCESSED
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
            if (type(event) is timeout_cls and env._tcache is None
                    and grc(event) == 2):
                # Only the kernel still references this timeout: recycle
                # it through the environment's one-slot object pool.
                event._state = _TRIGGERED
                callbacks.clear()
                event.callbacks = callbacks
                event._value = None
                env._tcache = event

    def run_event(self, env, finished) -> None:
        heap = self._heap
        pop = heappop
        tr = self.trace
        grc = _getrefcount
        timeout_cls = _Timeout
        while not finished:
            if not heap:
                if env._solo is not None:
                    env._flush()
                    continue
                from repro.sim.core import SimulationError
                raise SimulationError(
                    "event loop ran dry before the awaited event fired"
                )
            when, seq, event = pop(heap)
            env._now = when
            env._pending -= 1
            if event._state == _CANCELLED:
                self._ncancelled -= 1
                event._state = _PROCESSED
                event.callbacks = None
                continue
            if tr is not None:
                tr.append((when, seq))
            callbacks = event.callbacks
            event.callbacks = None
            event._state = _PROCESSED
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
            if (type(event) is timeout_cls and env._tcache is None
                    and grc(event) == 2):
                event._state = _TRIGGERED
                callbacks.clear()
                event.callbacks = callbacks
                event._value = None
                env._tcache = event

    def run_horizon(self, env, horizon) -> None:
        heap = self._heap
        pop = heappop
        tr = self.trace
        grc = _getrefcount
        timeout_cls = _Timeout
        while True:
            while heap and heap[0][0] <= horizon:
                when, seq, event = pop(heap)
                env._now = when
                env._pending -= 1
                if event._state == _CANCELLED:
                    self._ncancelled -= 1
                    event._state = _PROCESSED
                    event.callbacks = None
                    continue
                if tr is not None:
                    tr.append((when, seq))
                callbacks = event.callbacks
                event.callbacks = None
                event._state = _PROCESSED
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if (type(event) is timeout_cls and env._tcache is None
                        and grc(event) == 2):
                    event._state = _TRIGGERED
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._value = None
                    env._tcache = event
            solo = env._solo
            if solo is not None and env._solo_at <= horizon:
                env._flush()
                continue
            return None


class CalendarScheduler:
    """Exact-timestamp buckets + a heap of distinct times.

    ``_buckets`` maps a timestamp to the events scheduled at exactly
    that instant, in sequence order (appends happen in monotone-
    sequence order): the event itself while the bucket holds one entry,
    a list from the second same-instant arrival on.  ``_times`` is a
    heap of the distinct timestamps that still have a bucket.  A
    singleton bucket dispatches directly; a list bucket is detached as
    the current *cohort* and drained by index, and events scheduled *at
    the current instant while the cohort drains* are appended to the
    live cohort and picked up in the same scan, preserving
    ``(time, seq)`` order exactly.

    The cohort survives across ``run(until=event)`` exits mid-drain;
    ``_cohort_i`` always reflects the next undispatched slot so that
    ``pending_at``/``peek`` stay correct from inside callbacks.
    """

    name = "calendar"

    __slots__ = ("_times", "_buckets", "_cohort", "_cohort_time",
                 "_cohort_i", "_ncancelled", "trace", "_seqmap")

    def __init__(self):
        self._times: list = []
        self._buckets: dict = {}
        self._cohort: Optional[list] = None
        self._cohort_time = -_INF
        self._cohort_i = 0
        self._ncancelled = 0
        self.trace: Optional[list] = None
        self._seqmap: Optional[dict] = None

    def __len__(self) -> int:
        n = 0
        for bucket in self._buckets.values():
            n += len(bucket) if type(bucket) is list else 1
        cohort = self._cohort
        if cohort is not None:
            n += len(cohort) - self._cohort_i
        return n

    def enable_trace(self) -> list:
        self.trace = []
        self._seqmap = {}
        return self.trace

    # -- structure ops ---------------------------------------------------
    # A bucket is stored as the event itself while it holds exactly one
    # entry and is promoted to a list on the second same-instant
    # arrival.  Workloads dominated by continuous (all-distinct) delays
    # then pay no list allocation and no cohort bookkeeping per event,
    # while dense same-instant cohorts keep the batched drain.
    def insert(self, when, seq, event) -> None:
        if self._seqmap is not None:
            self._seqmap[id(event)] = seq
        cohort = self._cohort
        if cohort is not None and when == self._cohort_time:
            # Same instant as the cohort being drained: the scan picks
            # it up in this very pass, in sequence order.
            cohort.append(event)
            return
        buckets = self._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = event
            heappush(self._times, when)
        elif type(bucket) is list:
            bucket.append(event)
        else:
            buckets[when] = [bucket, event]

    def peek(self) -> float:
        cohort = self._cohort
        if cohort is not None and self._cohort_i < len(cohort):
            return self._cohort_time
        times = self._times
        return times[0] if times else _INF

    def pending_at(self, now) -> bool:
        cohort = self._cohort
        if cohort is not None and self._cohort_i < len(cohort):
            return self._cohort_time <= now
        times = self._times
        return bool(times) and times[0] <= now

    def pop_one(self, env):
        cohort = self._cohort
        if cohort is not None and self._cohort_i < len(cohort):
            i = self._cohort_i
            event = cohort[i]
            cohort[i] = None
            self._cohort_i = i + 1
            env._now = self._cohort_time
            return event
        if not self._times:
            raise IndexError("pop from an empty scheduler")
        when = heappop(self._times)
        event = self._buckets.pop(when)
        env._now = when
        if type(event) is not list:
            # Singleton bucket: nothing to track across callbacks.
            return event
        cohort = event
        self._cohort = cohort
        self._cohort_time = when
        event = cohort[0]
        cohort[0] = None
        self._cohort_i = 1
        return event

    def note_cancelled(self, env) -> None:
        """Account one newly cancelled entry; compact when dominant.

        The sweep filters every bucket and *deletes buckets left
        empty*, rebuilding the distinct-time heap from the surviving
        keys — cancelled entries must not pin dead timestamps.  The
        in-flight cohort (if any) is left alone: it is about to drain
        anyway, and its surviving cancelled entries stay counted so the
        next trigger point is computed honestly.
        """
        n = self._ncancelled + 1
        self._ncancelled = n
        if n >= _COMPACT_MIN and 2 * n >= env._pending:
            self._compact(env)

    def _compact(self, env) -> None:
        buckets = self._buckets
        seqmap = self._seqmap
        removed = 0
        for when in list(buckets):
            bucket = buckets[when]
            if type(bucket) is not list:
                if bucket._state == _CANCELLED:
                    bucket._state = _PROCESSED
                    bucket.callbacks = None
                    removed += 1
                    if seqmap is not None:
                        seqmap.pop(id(bucket), None)
                    del buckets[when]
                continue
            alive = [ev for ev in bucket if ev._state != _CANCELLED]
            if len(alive) == len(bucket):
                continue
            for ev in bucket:
                if ev._state == _CANCELLED:
                    ev._state = _PROCESSED
                    ev.callbacks = None
                    removed += 1
                    if seqmap is not None:
                        seqmap.pop(id(ev), None)
            if alive:
                buckets[when] = alive
            else:
                del buckets[when]
        if removed:
            self._times[:] = list(buckets)
            heapify(self._times)
            env._pending -= removed
        leftover = 0
        cohort = self._cohort
        if cohort is not None:
            for ev in cohort[self._cohort_i:]:
                if ev is not None and ev._state == _CANCELLED:
                    leftover += 1
        self._ncancelled = leftover

    # -- dispatch loops --------------------------------------------------
    def run_all(self, env) -> None:
        times = self._times
        buckets = self._buckets
        pop = heappop
        tr = self.trace
        grc = _getrefcount
        timeout_cls = _Timeout
        while True:
            cohort = self._cohort
            if cohort is None:
                if not times:
                    if env._solo is None:
                        return None
                    env._flush()
                    continue
                when = pop(times)
                event = buckets.pop(when)
                env._now = when
                if type(event) is not list:
                    # Singleton bucket: dispatch with no cohort state.
                    env._pending -= 1
                    if event._state == _CANCELLED:
                        self._ncancelled -= 1
                        event._state = _PROCESSED
                        event.callbacks = None
                        continue
                    if tr is not None:
                        tr.append((when, self._seqmap.pop(id(event))))
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._state = _PROCESSED
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if (type(event) is timeout_cls and env._tcache is None
                            and grc(event) == 2):
                        event._state = _TRIGGERED
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._value = None
                        env._tcache = event
                    continue
                cohort = event
                self._cohort = cohort
                self._cohort_time = when
                self._cohort_i = 0
            else:
                when = self._cohort_time
            i = self._cohort_i
            while i < len(cohort):
                event = cohort[i]
                cohort[i] = None
                i += 1
                self._cohort_i = i
                env._pending -= 1
                if event._state == _CANCELLED:
                    self._ncancelled -= 1
                    event._state = _PROCESSED
                    event.callbacks = None
                    continue
                if tr is not None:
                    tr.append((when, self._seqmap.pop(id(event))))
                callbacks = event.callbacks
                event.callbacks = None
                event._state = _PROCESSED
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if (type(event) is timeout_cls and env._tcache is None
                        and grc(event) == 2):
                    event._state = _TRIGGERED
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._value = None
                    env._tcache = event
            self._cohort = None

    def run_event(self, env, finished) -> None:
        times = self._times
        buckets = self._buckets
        pop = heappop
        tr = self.trace
        grc = _getrefcount
        timeout_cls = _Timeout
        while not finished:
            cohort = self._cohort
            if cohort is not None and self._cohort_i >= len(cohort):
                self._cohort = cohort = None
            if cohort is None:
                if not times:
                    if env._solo is not None:
                        env._flush()
                        continue
                    from repro.sim.core import SimulationError
                    raise SimulationError(
                        "event loop ran dry before the awaited event fired"
                    )
                when = pop(times)
                event = buckets.pop(when)
                env._now = when
                if type(event) is list:
                    cohort = event
                    self._cohort = cohort
                    self._cohort_time = when
                    self._cohort_i = 1
                    event = cohort[0]
                    cohort[0] = None
                env._pending -= 1
            else:
                i = self._cohort_i
                event = cohort[i]
                cohort[i] = None
                self._cohort_i = i + 1
                env._pending -= 1
            if event._state == _CANCELLED:
                self._ncancelled -= 1
                event._state = _PROCESSED
                event.callbacks = None
                continue
            if tr is not None:
                # env._now is the dispatch time for singleton buckets
                # (which never touch _cohort_time) and cohorts alike.
                tr.append((env._now, self._seqmap.pop(id(event))))
            callbacks = event.callbacks
            event.callbacks = None
            event._state = _PROCESSED
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
            if (type(event) is timeout_cls and env._tcache is None
                    and grc(event) == 2):
                event._state = _TRIGGERED
                callbacks.clear()
                event.callbacks = callbacks
                event._value = None
                env._tcache = event

    def run_horizon(self, env, horizon) -> None:
        times = self._times
        buckets = self._buckets
        pop = heappop
        tr = self.trace
        grc = _getrefcount
        timeout_cls = _Timeout
        while True:
            cohort = self._cohort
            if cohort is None:
                if not times or times[0] > horizon:
                    solo = env._solo
                    if solo is not None and env._solo_at <= horizon:
                        env._flush()
                        continue
                    return None
                when = pop(times)
                event = buckets.pop(when)
                env._now = when
                if type(event) is not list:
                    # Singleton bucket: dispatch with no cohort state.
                    env._pending -= 1
                    if event._state == _CANCELLED:
                        self._ncancelled -= 1
                        event._state = _PROCESSED
                        event.callbacks = None
                        continue
                    if tr is not None:
                        tr.append((when, self._seqmap.pop(id(event))))
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._state = _PROCESSED
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if (type(event) is timeout_cls and env._tcache is None
                            and grc(event) == 2):
                        event._state = _TRIGGERED
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._value = None
                        env._tcache = event
                    continue
                cohort = event
                self._cohort = cohort
                self._cohort_time = when
                self._cohort_i = 0
            else:
                when = self._cohort_time
            i = self._cohort_i
            while i < len(cohort):
                event = cohort[i]
                cohort[i] = None
                i += 1
                self._cohort_i = i
                env._pending -= 1
                if event._state == _CANCELLED:
                    self._ncancelled -= 1
                    event._state = _PROCESSED
                    event.callbacks = None
                    continue
                if tr is not None:
                    tr.append((when, self._seqmap.pop(id(event))))
                callbacks = event.callbacks
                event.callbacks = None
                event._state = _PROCESSED
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if (type(event) is timeout_cls and env._tcache is None
                        and grc(event) == 2):
                    event._state = _TRIGGERED
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._value = None
                    env._tcache = event
            self._cohort = None


_SCHEDULERS = {
    HeapScheduler.name: HeapScheduler,
    CalendarScheduler.name: CalendarScheduler,
}
