"""Discrete-event simulation kernel used by the TPSIM reproduction.

The original TPSIM system was written in the DeNet simulation language
[Li89].  DeNet is not available, so this package provides an equivalent
substrate: a generator-based process model (``repro.sim.core``), queueing
resources (``repro.sim.resources``), reproducible random-variate streams
(``repro.sim.rng``) and online statistics (``repro.sim.stats``).

The public surface re-exported here is everything a model needs::

    from repro.sim import Environment, Resource, RandomStreams

    env = Environment()

    def customer(env, server):
        req = server.request()
        yield req
        yield env.timeout(1.0)
        server.release(req)

    env.process(customer(env, Resource(env, capacity=1)))
    env.run(until=10.0)
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import (
    PriorityResource,
    Resource,
    ResourceMonitor,
    Store,
)
from repro.sim.rng import RandomStreams
from repro.sim.stats import (
    Accumulator,
    CategoryCounter,
    Histogram,
    TimeWeighted,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Accumulator",
    "CategoryCounter",
    "Environment",
    "Event",
    "Histogram",
    "Interrupt",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "ResourceMonitor",
    "SimulationError",
    "Store",
    "TimeWeighted",
    "Timeout",
]
