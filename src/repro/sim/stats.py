"""Online statistics for simulation output analysis.

TPSIM reports response times, device utilizations, queue lengths, hit
ratios and lock statistics (§4 of the paper).  The classes here collect
those measures in a single pass:

* :class:`Accumulator` — Welford mean/variance plus min/max and an
  optional bounded sample reservoir for percentiles.
* :class:`TimeWeighted` — time-integral of a step function (queue
  lengths, busy servers); supports warm-up resets.
* :class:`Histogram` — fixed-bin histogram for distributions.
* :class:`CategoryCounter` — counters keyed by category (hit levels,
  abort reasons, I/O classes).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.core import Environment

__all__ = ["Accumulator", "CategoryCounter", "Histogram", "TimeWeighted"]


class Accumulator:
    """Welford accumulator with optional reservoir for percentiles.

    The reservoir is a *systematic* sample with a doubling stride: it
    keeps every ``stride``-th value (by arrival index), and whenever it
    fills up it drops every other retained sample and doubles the
    stride.  At any point it therefore holds an evenly spaced sample of
    the whole stream so far — deterministic (no RNG stream is consumed,
    preserving simulation reproducibility) and unbiased for percentile
    estimates over stationary output, unlike the previous scheme which
    overwrote pseudo-random slots and over-represented late samples.
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max",
                 "_reservoir", "_reservoir_cap", "_seen", "_stride")

    def __init__(self, reservoir: int = 0):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir_cap = reservoir
        self._reservoir: Optional[List[float]] = [] if reservoir else None
        self._seen = 0
        self._stride = 1

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        reservoir = self._reservoir
        if reservoir is not None:
            index = self._seen
            self._seen = index + 1
            stride = self._stride
            if index % stride == 0:
                if len(reservoir) >= self._reservoir_cap:
                    # Full: halve to every other sample, double the
                    # stride; retained entries stay evenly spaced.
                    del reservoir[1::2]
                    stride *= 2
                    self._stride = stride
                    if index % stride != 0:
                        return
                reservoir.append(value)

    def mean(self) -> float:
        return self._mean if self.count else 0.0

    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    def stdev(self) -> float:
        return math.sqrt(self.variance())

    def percentile(self, q: float) -> float:
        """Approximate percentile from the reservoir (q in [0, 100])."""
        if not self._reservoir:
            return self.mean()
        data = sorted(self._reservoir)
        if len(data) == 1:
            return data[0]
        rank = (q / 100.0) * (len(data) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def reset(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        if self._reservoir is not None:
            self._reservoir.clear()
            self._seen = 0
            self._stride = 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Accumulator n={self.count} mean={self.mean():.6g}>"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    ``record(level)`` notes that the signal has the new ``level`` from
    the current simulation time onward.  ``mean()`` integrates over the
    observation window (since construction or the last ``reset``).
    """

    __slots__ = ("_env", "_level", "_area", "_start", "_last")

    def __init__(self, env: "Environment", level: float = 0.0):
        self._env = env
        self._level = level
        self._area = 0.0
        self._start = env.now
        self._last = env.now

    @property
    def level(self) -> float:
        return self._level

    def record(self, level: float) -> None:
        # Hot path (every resource grant/release): read the clock slot
        # directly, skipping the ``now`` property descriptor.
        now = self._env._now
        self._area += self._level * (now - self._last)
        self._last = now
        self._level = level

    def mean(self) -> float:
        now = self._env.now
        span = now - self._start
        if span <= 0:
            return self._level
        area = self._area + self._level * (now - self._last)
        return area / span

    def integral(self) -> float:
        now = self._env.now
        return self._area + self._level * (now - self._last)

    def reset(self) -> None:
        """Restart the observation window, keeping the current level."""
        self._area = 0.0
        self._start = self._env.now
        self._last = self._env.now


class Histogram:
    """Fixed-width-bin histogram over [low, high) with overflow bins."""

    __slots__ = ("low", "high", "bins", "_width", "counts",
                 "underflow", "overflow", "total")

    def __init__(self, low: float, high: float, bins: int):
        if high <= low:
            raise ValueError("high must exceed low")
        if bins < 1:
            raise ValueError("need at least one bin")
        self.low = low
        self.high = high
        self.bins = bins
        self._width = (high - low) / bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.total = 0

    def add(self, value: float) -> None:
        self.total += 1
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            self.counts[int((value - self.low) / self._width)] += 1

    def bin_edges(self) -> List[float]:
        return [self.low + i * self._width for i in range(self.bins + 1)]

    def reset(self) -> None:
        self.counts = [0] * self.bins
        self.underflow = 0
        self.overflow = 0
        self.total = 0


class CategoryCounter:
    """Counters keyed by category with ratio helpers."""

    __slots__ = ("_counts",)

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def add(self, category: str, amount: int = 1) -> None:
        self._counts[category] = self._counts.get(category, 0) + amount

    def get(self, category: str) -> int:
        return self._counts.get(category, 0)

    def total(self) -> int:
        return sum(self._counts.values())

    def ratio(self, category: str) -> float:
        """Share of ``category`` among all counted occurrences."""
        total = self.total()
        return self._counts.get(category, 0) / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CategoryCounter {self._counts!r}>"
