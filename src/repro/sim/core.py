"""Core of the discrete-event simulation kernel.

This module implements the event loop, events, timeouts, generator-based
processes, process interruption and condition events.  It plays the role
the DeNet runtime played for the original TPSIM: everything else in the
reproduction (CPUs, disks, lock queues, buffer managers) is expressed as
processes that yield events produced here.

Design notes
------------
* Events are scheduled on a binary heap keyed by ``(time, sequence)``;
  the sequence number makes simultaneous events FIFO and the simulation
  fully deterministic for a fixed seed.
* A :class:`Process` wraps a Python generator.  The generator yields
  :class:`Event` objects; the process resumes when the yielded event is
  processed.  ``yield from`` composes sub-operations naturally, which is
  how transaction code in :mod:`repro.core.tm` stays readable.
* A process may be interrupted (:meth:`Process.interrupt`): the victim's
  current wait is cancelled and an :class:`Interrupt` exception is thrown
  into its generator.  TPSIM uses this for transaction aborts initiated
  by deadlock victims other than the requester (an extension; the paper's
  base policy aborts the requester itself).

Hot path
--------
Replaying one paper figure means millions of ``yield env.timeout(...)``
round trips, so that path is specialized end to end:

* :meth:`Environment.timeout` builds the :class:`Timeout` directly
  (no ``__init__`` chain, no :meth:`Environment.schedule` state check)
  and pushes it on the heap inline.
* :meth:`Environment.run` inlines the :meth:`step` body with all heap
  and attribute lookups bound to locals.
* :meth:`Process._resume` keeps the generator's ``send`` and its own
  bound callback in locals and dispatches fresh timeouts without the
  general ``isinstance``/state checks.
* Yielding an *already-processed* event feeds its value straight back
  into the generator without suspending — no heap traffic, no callback
  list.  The resource layer relies on this for uncontended grants
  (:meth:`repro.sim.resources.Resource.request` returns a processed
  request when a unit is free), which is why ``_resume`` loops rather
  than recursing: a chain of immediate grants runs as one step.

Cancellation
------------
Interrupting a process abandons the event it was waiting for.  The
kernel tells the event via :meth:`Event._abandoned` (resources override
it to withdraw queued requests) and, when nobody else is subscribed,
marks the event *cancelled*.  Cancelled events are dropped when they
surface at the top of the heap without running callbacks, and when they
outnumber live events the heap is compacted so interrupted waits do not
accumulate.  An event collected by compaction is treated as already
fired; a waiter that subscribes to a cancelled event before compaction
revives it in place and is woken at the originally scheduled time.
Contract: once an event has been abandoned by *all* of its waiters, a
later subscriber is only guaranteed to be woken *no later than* the
scheduled time — whether it sees the original instant or an immediate
delivery depends on whether compaction has collected the event.  Code
that shares one wait event across processes and interrupts some of
them must not rely on the distinction (nothing in this repository
does).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, unhandled failure, ...)."""


class Interrupt(Exception):
    """Thrown into a process that has been interrupted.

    ``cause`` carries an arbitrary, caller-supplied reason (for TPSIM it
    is typically the aborting transaction or a string tag).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, value fixed
_CANCELLED = 2  # scheduled but abandoned: dropped unless re-subscribed
_PROCESSED = 3  # callbacks have run

#: Cancelled events in the heap before a compaction sweep is considered.
_COMPACT_MIN = 64


class Event:
    """A happening at a point in simulated time.

    Events start *pending*, become *triggered* when given a value via
    :meth:`succeed` / :meth:`fail` (which schedules them), and are
    *processed* once the event loop has run their callbacks.
    """

    __slots__ = ("env", "callbacks", "_state", "_ok", "_value", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._state = _PENDING
        self._ok = True
        self._value: Any = None
        self._defused = False

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to succeed with ``value`` (now)."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fail with ``exception`` (now)."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    # -- cancellation ----------------------------------------------------
    def _abandoned(self) -> None:
        """Hook: an interrupted process stopped waiting for this event.

        The base behaviour marks an already-scheduled event with no
        remaining subscribers as cancelled so the event loop can drop it.
        Failed events are left alone: their unhandled-failure propagation
        must still run.  Subclasses with external bookkeeping (resource
        requests, store getters) override this to withdraw themselves.
        """
        if self._state == _TRIGGERED and self._ok and not self.callbacks:
            self._state = _CANCELLED
            self.env._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered",
                 _CANCELLED: "cancelled", _PROCESSED: "processed"}[self._state]
        return f"<{type(self).__name__} {state} at t={self.env.now:g}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    The common construction path is :meth:`Environment.timeout`, which
    bypasses this ``__init__`` chain entirely; direct construction is
    kept for compatibility.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay)


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume_cb)
        env.schedule(self)


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The process succeeds with the generator's return value, or fails with
    the exception that escaped it.  Other processes may therefore wait
    for a process simply by yielding it.
    """

    __slots__ = ("_generator", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        #: The bound resume callback, created once: appending
        #: ``self._resume`` would allocate a fresh bound method per wait.
        self._resume_cb = self._resume
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._state == _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (or None)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self._state != _PENDING:
            raise SimulationError("cannot interrupt a terminated process")
        target = self._target
        if target is None:
            raise SimulationError("cannot interrupt a process mid-step")
        callbacks = target.callbacks
        if callbacks is not None:
            try:
                callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        # Let the abandoned wait clean up after itself: resource requests
        # withdraw from their queue, scheduled waits are marked cancelled.
        target._abandoned()
        # Deliver the interrupt via an immediate, already-failed event.
        carrier = Event(self.env)
        carrier._ok = False
        carrier._value = Interrupt(cause)
        carrier._defused = True
        carrier.callbacks.append(self._resume_cb)
        self.env.schedule(carrier)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        generator = self._generator
        send = generator.send
        resume = self._resume_cb
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                return
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env.schedule(self)
                return

            # Fast path: a freshly scheduled timeout (the dominant wait).
            if type(next_event) is Timeout:
                if next_event._state == _TRIGGERED:
                    next_event.callbacks.append(resume)
                    self._target = next_event
                    return
            elif not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                self._ok = False
                self._value = exc
                env.schedule(self)
                return

            state = next_event._state
            if state == _PROCESSED or next_event.callbacks is None:
                # Already over: feed its value straight back in.
                event = next_event
                continue
            if state == _CANCELLED:
                env._revive(next_event)
            next_event.callbacks.append(resume)
            self._target = next_event
            return


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_outstanding")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._outstanding = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events belong to different environments")
            if ev._state == _PROCESSED or ev.callbacks is None:
                self._observe(ev)
            else:
                if ev._state == _CANCELLED:
                    env._revive(ev)
                self._outstanding += 1
                ev.callbacks.append(self._observe)
        if self._state == _PENDING:
            self._check_initial()

    def _check_initial(self) -> None:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        raise NotImplementedError

    def _collect_values(self) -> dict:
        return {
            i: ev._value
            for i, ev in enumerate(self._events)
            if ev._state == _PROCESSED and ev._ok
        }


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _check_initial(self) -> None:
        if self._outstanding == 0:
            self.succeed(self._collect_values())

    def _observe(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._outstanding -= 1
        if self._outstanding == 0:
            self.succeed(self._collect_values())


class AnyOf(_Condition):
    """Fires as soon as one constituent event has fired."""

    __slots__ = ()

    def _check_initial(self) -> None:
        for ev in self._events:
            if ev._state == _PROCESSED:
                self.succeed(self._collect_values())
                return
        if not self._events:
            self.succeed({})

    def _observe(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect_values())


class Environment:
    """The event loop: owns simulated time and the pending-event heap."""

    __slots__ = ("_now", "_heap", "_seq", "_active", "_ncancelled")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list = []
        self._seq = 0
        self._active = True
        self._ncancelled = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create and schedule a timeout (inlined hot path)."""
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        ev = Timeout.__new__(Timeout)
        ev.env = self
        ev.callbacks = []
        ev._state = _TRIGGERED
        ev._ok = True
        ev._value = value
        ev._defused = False
        ev.delay = delay
        seq = self._seq + 1
        self._seq = seq
        heappush(self._heap, (self._now + delay, seq, ev))
        return ev

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Put a triggered event on the heap ``delay`` from now."""
        if event._state != _PENDING:
            raise SimulationError("event already scheduled")
        event._state = _TRIGGERED
        self._seq += 1
        heappush(self._heap, (self._now + delay, self._seq, event))

    def _note_cancelled(self) -> None:
        """Account one newly cancelled heap entry; compact when dominant.

        Compaction removes cancelled entries outright so that mass
        interruption (e.g. aborting a wave of blocked transactions) does
        not leave the heap dragging thousands of dead waits.  Collected
        events are marked processed: anyone who later waits on one gets
        its value immediately, exactly as for any other past event.
        """
        n = self._ncancelled + 1
        self._ncancelled = n
        heap = self._heap
        if n >= _COMPACT_MIN and 2 * n >= len(heap):
            alive = []
            for entry in heap:
                ev = entry[2]
                if ev._state == _CANCELLED:
                    ev._state = _PROCESSED
                    ev.callbacks = None
                else:
                    alive.append(entry)
            # In place: `run` loops hold a reference to this very list.
            heap[:] = alive
            heapify(heap)
            self._ncancelled = 0

    def _revive(self, event: Event) -> None:
        """Re-subscribe path: a cancelled (still heap-resident) event
        gained a new waiter, so it must be delivered after all."""
        event._state = _TRIGGERED
        self._ncancelled -= 1

    def peek(self) -> float:
        """Time of the next event, or +inf if none is scheduled."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (cancelled events count as no-ops)."""
        when, _, event = heappop(self._heap)
        self._now = when
        if event._state == _CANCELLED:
            self._ncancelled -= 1
            event._state = _PROCESSED
            event.callbacks = None
            return
        callbacks = event.callbacks
        event.callbacks = None
        event._state = _PROCESSED
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until a time, until an event fires, or until empty.

        * ``until`` float: run all events up to and including that time,
          then set ``now`` to it.
        * ``until`` Event: run until that event is processed and return
          its value (raising if it failed).
        * ``until`` None: run until no events remain.

        All three loops inline :meth:`step` with locals bound outside
        the loop; this is the hottest code in the package.
        """
        heap = self._heap
        pop = heappop

        if until is None:
            while heap:
                when, _, event = pop(heap)
                self._now = when
                if event._state == _CANCELLED:
                    self._ncancelled -= 1
                    event._state = _PROCESSED
                    event.callbacks = None
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                event._state = _PROCESSED
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None

        if isinstance(until, Event):
            sentinel = until
            if sentinel._state == _PROCESSED:
                if not sentinel._ok:
                    raise sentinel._value
                return sentinel._value
            finished = []
            if sentinel.callbacks is None:  # pragma: no cover - safety
                raise SimulationError("cannot wait on this event")
            if sentinel._state == _CANCELLED:
                self._revive(sentinel)
            sentinel.callbacks.append(lambda ev: finished.append(ev))
            while not finished:
                if not heap:
                    raise SimulationError(
                        "event loop ran dry before the awaited event fired"
                    )
                when, _, event = pop(heap)
                self._now = when
                if event._state == _CANCELLED:
                    self._ncancelled -= 1
                    event._state = _PROCESSED
                    event.callbacks = None
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                event._state = _PROCESSED
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(
                f"cannot run to {horizon!r}: time is already {self._now!r}"
            )
        while heap and heap[0][0] <= horizon:
            when, _, event = pop(heap)
            self._now = when
            if event._state == _CANCELLED:
                self._ncancelled -= 1
                event._state = _PROCESSED
                event.callbacks = None
                continue
            callbacks = event.callbacks
            event.callbacks = None
            event._state = _PROCESSED
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        self._now = horizon
        return None
