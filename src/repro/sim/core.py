"""Core of the discrete-event simulation kernel.

This module implements the event loop, events, timeouts, generator-based
processes, process interruption and condition events.  It plays the role
the DeNet runtime played for the original TPSIM: everything else in the
reproduction (CPUs, disks, lock queues, buffer managers) is expressed as
processes that yield events produced here.

Design notes
------------
* Events are scheduled on a binary heap keyed by ``(time, sequence)``;
  the sequence number makes simultaneous events FIFO and the simulation
  fully deterministic for a fixed seed.
* A :class:`Process` wraps a Python generator.  The generator yields
  :class:`Event` objects; the process resumes when the yielded event is
  processed.  ``yield from`` composes sub-operations naturally, which is
  how transaction code in :mod:`repro.core.tm` stays readable.
* A process may be interrupted (:meth:`Process.interrupt`): the victim's
  current wait is cancelled and an :class:`Interrupt` exception is thrown
  into its generator.  TPSIM uses this for transaction aborts initiated
  by deadlock victims other than the requester (an extension; the paper's
  base policy aborts the requester itself).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, unhandled failure, ...)."""


class Interrupt(Exception):
    """Thrown into a process that has been interrupted.

    ``cause`` carries an arbitrary, caller-supplied reason (for TPSIM it
    is typically the aborting transaction or a string tag).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, value fixed
_PROCESSED = 2  # callbacks have run


class Event:
    """A happening at a point in simulated time.

    Events start *pending*, become *triggered* when given a value via
    :meth:`succeed` / :meth:`fail` (which schedules them), and are
    *processed* once the event loop has run their callbacks.
    """

    __slots__ = ("env", "callbacks", "_state", "_ok", "_value", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._state = _PENDING
        self._ok = True
        self._value: Any = None
        self._defused = False

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to succeed with ``value`` (now)."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fail with ``exception`` (now)."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered",
                 _PROCESSED: "processed"}[self._state]
        return f"<{type(self).__name__} {state} at t={self.env.now:g}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay)


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self)


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The process succeeds with the generator's return value, or fails with
    the exception that escaped it.  Other processes may therefore wait
    for a process simply by yielding it.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._state == _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (or None)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a terminated process")
        if self._target is None:
            raise SimulationError("cannot interrupt a process mid-step")
        target = self._target
        if target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        # Deliver the interrupt via an immediate, already-failed event.
        carrier = Event(self.env)
        carrier._ok = False
        carrier._value = Interrupt(cause)
        carrier._defused = True
        carrier.callbacks.append(self._resume)
        self.env.schedule(carrier)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        self._target = None
        while True:
            try:
                if event is None or event._ok:
                    next_event = self._generator.send(
                        None if event is None else event._value
                    )
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                return
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env.schedule(self)
                return

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                self._ok = False
                self._value = exc
                env.schedule(self)
                return

            if next_event._state == _PROCESSED:
                # Already over: feed its value straight back in.
                event = next_event
                continue
            if next_event.callbacks is None:  # pragma: no cover - safety
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            return


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_outstanding")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._outstanding = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events belong to different environments")
            if ev._state == _PROCESSED:
                self._observe(ev)
            else:
                self._outstanding += 1
                ev.callbacks.append(self._observe)
        if self._state == _PENDING:
            self._check_initial()

    def _check_initial(self) -> None:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        raise NotImplementedError

    def _collect_values(self) -> dict:
        return {
            i: ev._value
            for i, ev in enumerate(self._events)
            if ev._state == _PROCESSED and ev._ok
        }


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _check_initial(self) -> None:
        if self._outstanding == 0:
            self.succeed(self._collect_values())

    def _observe(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._outstanding -= 1
        if self._outstanding == 0:
            self.succeed(self._collect_values())


class AnyOf(_Condition):
    """Fires as soon as one constituent event has fired."""

    __slots__ = ()

    def _check_initial(self) -> None:
        for ev in self._events:
            if ev._state == _PROCESSED:
                self.succeed(self._collect_values())
                return
        if not self._events:
            self.succeed({})

    def _observe(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect_values())


class Environment:
    """The event loop: owns simulated time and the pending-event heap."""

    __slots__ = ("_now", "_heap", "_seq", "_active")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list = []
        self._seq = 0
        self._active = True

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Put a triggered event on the heap ``delay`` from now."""
        if event._state != _PENDING:
            raise SimulationError("event already scheduled")
        event._state = _TRIGGERED
        self._seq += 1
        heappush(self._heap, (self._now + delay, self._seq, event))

    def peek(self) -> float:
        """Time of the next event, or +inf if none is scheduled."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        when, _, event = heappop(self._heap)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._state = _PROCESSED
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until a time, until an event fires, or until empty.

        * ``until`` float: run all events up to and including that time,
          then set ``now`` to it.
        * ``until`` Event: run until that event is processed and return
          its value (raising if it failed).
        * ``until`` None: run until no events remain.
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            if sentinel._state == _PROCESSED:
                if not sentinel._ok:
                    raise sentinel._value
                return sentinel._value
            finished = []
            if sentinel.callbacks is None:  # pragma: no cover - safety
                raise SimulationError("cannot wait on this event")
            sentinel.callbacks.append(lambda ev: finished.append(ev))
            while not finished:
                if not self._heap:
                    raise SimulationError(
                        "event loop ran dry before the awaited event fired"
                    )
                self.step()
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(
                f"cannot run to {horizon!r}: time is already {self._now!r}"
            )
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
