"""Core of the discrete-event simulation kernel.

This module implements the event loop, events, timeouts, generator-based
processes, process interruption and condition events.  It plays the role
the DeNet runtime played for the original TPSIM: everything else in the
reproduction (CPUs, disks, lock queues, buffer managers) is expressed as
processes that yield events produced here.

Design notes
------------
* Events are ordered by ``(time, sequence)``; the sequence number makes
  simultaneous events FIFO and the simulation fully deterministic for a
  fixed seed.  The *structure* holding that order is pluggable
  (:mod:`repro.sim.scheduler`): a calendar queue with batched
  same-instant dispatch by default, the classic binary heap as the
  verification backend (``Environment(scheduler="heap")`` or
  ``REPRO_SCHEDULER=heap``).  Both produce bit-identical dispatch
  order; a tracing mode records ``(time, seq)`` per dispatch so the
  equivalence is testable.
* All scheduling funnels through one choke point,
  :meth:`Environment._insert`, which assigns the strictly monotone
  sequence number and feeds the active scheduler.
* A :class:`Process` wraps a Python generator.  The generator yields
  :class:`Event` objects; the process resumes when the yielded event is
  processed.  ``yield from`` composes sub-operations naturally, which is
  how transaction code in :mod:`repro.core.tm` stays readable.
* A process may be interrupted (:meth:`Process.interrupt`): the victim's
  current wait is cancelled and an :class:`Interrupt` exception is thrown
  into its generator.  TPSIM uses this for transaction aborts initiated
  by deadlock victims other than the requester (an extension; the paper's
  base policy aborts the requester itself).

Hot path
--------
Replaying one paper figure means millions of ``yield env.timeout(...)``
round trips, so that path is specialized end to end:

* **Solo slot**: a timeout created while *nothing else is pending* is
  parked in ``env._solo`` without touching the scheduler at all.  When
  the owning process yields it (and nobody else subscribed),
  :meth:`Process._resume` fires it inline — the clock jumps to its due
  time and the generator continues without a structure insert, a pop,
  or a callback list.  This is order-exact: with an empty structure the
  solo event would have been the very next dispatch, and dropping its
  structure round trip shifts later sequence numbers uniformly, which
  cannot reorder any tie.  The slot is *flushed* into the scheduler
  (assigning its sequence number at the position it would have held)
  the moment anything else schedules, subscribes, cancels, or the run
  loop needs it.
* **Timeout pooling**: a dispatched :class:`Timeout` that the kernel
  can *prove* it solely owns (``sys.getrefcount == 2`` at the recycle
  point: the dispatch local plus the call argument) is recycled through
  a one-slot pool (``env._tcache``) instead of being reallocated —
  event construction, not heap arithmetic, dominates the kernel's
  per-event cost.  An object with any outside reference is marked
  processed normally, so user-held timeouts observe the documented
  lifecycle.
* :meth:`Environment.run` delegates to scheduler-owned dispatch loops
  with all lookups bound to locals; this is the hottest code in the
  package.
* Yielding an *already-processed* event feeds its value straight back
  into the generator without suspending — no structure traffic, no
  callback list.  The resource layer relies on this for uncontended
  grants (:meth:`repro.sim.resources.Resource.request` returns a
  processed request when a unit is free), which is why ``_resume``
  loops rather than recursing: a chain of immediate grants runs as one
  step.

Cancellation
------------
Interrupting a process abandons the event it was waiting for.  The
kernel tells the event via :meth:`Event._abandoned` (resources override
it to withdraw queued requests) and, when nobody else is subscribed,
marks the event *cancelled*.  Cancelled events are dropped when they
surface in dispatch order without running callbacks, and when they
outnumber live events the structure is compacted so interrupted waits
do not accumulate (for the calendar queue the sweep also deletes
buckets left empty).  An event collected by compaction is treated as
already fired; a waiter that subscribes to a cancelled event before
compaction revives it in place and is woken at the originally scheduled
time.  Contract: once an event has been abandoned by *all* of its
waiters, a later subscriber is only guaranteed to be woken *no later
than* the scheduled time — whether it sees the original instant or an
immediate delivery depends on whether compaction has collected the
event.  Code that shares one wait event across processes and interrupts
some of them must not rely on the distinction (nothing in this
repository does).

:meth:`Event._abandoned` may return a *finalizer*: a one-argument
callable that :meth:`Process.interrupt` runs at interrupt *delivery*
(just before the Interrupt is thrown into the victim).  The resource
layer's fused service events use this to release a held unit at exactly
the instant the old generator-based ``serve`` released it from its
``except`` clause.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.sim import scheduler as _schedmod
from repro.sim.scheduler import (
    _CANCELLED,
    _INF,
    _PENDING,
    _PROCESSED,
    _TRIGGERED,
    make_scheduler,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, unhandled failure, ...)."""


class Interrupt(Exception):
    """Thrown into a process that has been interrupted.

    ``cause`` carries an arbitrary, caller-supplied reason (for TPSIM it
    is typically the aborting transaction or a string tag).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening at a point in simulated time.

    Events start *pending*, become *triggered* when given a value via
    :meth:`succeed` / :meth:`fail` (which schedules them), and are
    *processed* once the event loop has run their callbacks.
    """

    __slots__ = ("env", "callbacks", "_state", "_ok", "_value", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._state = _PENDING
        self._ok = True
        self._value: Any = None
        self._defused = False

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to succeed with ``value`` (now)."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fail with ``exception`` (now)."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    # -- cancellation ----------------------------------------------------
    def _abandoned(self):
        """Hook: an interrupted process stopped waiting for this event.

        The base behaviour marks an already-scheduled event with no
        remaining subscribers as cancelled so the event loop can drop it.
        Failed events are left alone: their unhandled-failure propagation
        must still run.  Subclasses with external bookkeeping (resource
        requests, store getters, fused service events) override this to
        withdraw themselves.

        May return a one-argument finalizer to be run at interrupt
        *delivery* time (see the module docstring); the base hook
        returns None.
        """
        if self._state == _TRIGGERED and self._ok and not self.callbacks:
            self._state = _CANCELLED
            self.env._note_cancelled(self)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered",
                 _CANCELLED: "cancelled", _PROCESSED: "processed"}[self._state]
        return f"<{type(self).__name__} {state} at t={self.env.now:g}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    The common construction path is :meth:`Environment.timeout`, which
    bypasses this ``__init__`` chain entirely; direct construction is
    kept for compatibility.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay)


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume_cb)
        env.schedule(self)


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The process succeeds with the generator's return value, or fails with
    the exception that escaped it.  Other processes may therefore wait
    for a process simply by yielding it.
    """

    __slots__ = ("_generator", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        #: The bound resume callback, created once: appending
        #: ``self._resume`` would allocate a fresh bound method per wait.
        self._resume_cb = self._resume
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._state == _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (or None)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self._state != _PENDING:
            raise SimulationError("cannot interrupt a terminated process")
        target = self._target
        if target is None:
            raise SimulationError("cannot interrupt a process mid-step")
        callbacks = target.callbacks
        if callbacks is not None:
            try:
                callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        # Let the abandoned wait clean up after itself: resource requests
        # withdraw from their queue, scheduled waits are marked cancelled.
        # A returned finalizer (fused service events release their unit
        # this way) runs at delivery, just before the Interrupt lands.
        finalizer = target._abandoned()
        # Deliver the interrupt via an immediate, already-failed event.
        carrier = Event(self.env)
        carrier._ok = False
        carrier._value = Interrupt(cause)
        carrier._defused = True
        if finalizer is not None:
            carrier.callbacks.append(finalizer)
        carrier.callbacks.append(self._resume_cb)
        self.env.schedule(carrier)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``.

        The loop carries ``(ok, value)`` locals instead of the event
        object itself so pooled Timeouts are not kept alive by a stale
        reference (the recycle gate proves sole ownership by refcount)
        and the dominant solo/pool cycle touches as few attributes as
        possible — this loop is the single hottest code in the package.
        """
        env = self.env
        generator = self._generator
        send = generator.send
        resume = self._resume_cb
        limit = env._limit
        grc = _schedmod._getrefcount
        timeout_t = Timeout
        triggered = _TRIGGERED
        processed = _PROCESSED
        self._target = None
        ok = event._ok
        value = event._value
        if not ok:
            event._defused = True
        event = None
        while True:
            try:
                if ok:
                    next_event = send(value)
                else:
                    next_event = generator.throw(value)
                    ok = True
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                return
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env.schedule(self)
                return

            # Solo short circuit: the yielded event is the parked solo
            # event (nothing else pending anywhere), so it is provably
            # the next dispatch — fire it inline and keep the generator
            # running.  The clock jumps straight to its due time.
            if next_event is env._solo and next_event is not None:
                when = env._solo_at
                if when <= limit:
                    env._now = when
                    env._solo = None
                    cbs = next_event.callbacks
                    value = next_event._value
                    if not cbs:
                        if (type(next_event) is timeout_t
                                and grc(next_event) == 2):
                            # Kernel-owned plain timeout: recycle it as
                            # is (still _TRIGGERED, empty callbacks) —
                            # unobservable without an outside reference.
                            # Overwriting an occupied one-slot cache
                            # merely abandons the older object.
                            env._tcache = next_event
                        else:
                            next_event._state = processed
                            next_event.callbacks = None
                    else:
                        # Pre-seeded internal callbacks (fused service
                        # events): run them now, in dispatch order —
                        # this resume loop *is* the final callback.
                        next_event._state = processed
                        next_event.callbacks = None
                        for cb in cbs:
                            cb(next_event)
                    next_event = None
                    continue

            # Fast path: a freshly scheduled timeout (the dominant wait).
            if type(next_event) is timeout_t:
                if next_event._state == triggered:
                    next_event.callbacks.append(resume)
                    self._target = next_event
                    return
            elif not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                self._ok = False
                self._value = exc
                env.schedule(self)
                return

            state = next_event._state
            if state == processed or next_event.callbacks is None:
                # Already over: feed its outcome straight back in.
                ok = next_event._ok
                value = next_event._value
                if not ok:
                    next_event._defused = True
                next_event = None
                continue
            if state == _CANCELLED:
                env._revive(next_event)
            next_event.callbacks.append(resume)
            self._target = next_event
            return


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_outstanding")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._outstanding = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events belong to different environments")
            if ev._state == _PROCESSED or ev.callbacks is None:
                self._observe(ev)
            else:
                if ev._state == _CANCELLED:
                    env._revive(ev)
                self._outstanding += 1
                ev.callbacks.append(self._observe)
        if self._state == _PENDING:
            self._check_initial()

    def _check_initial(self) -> None:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        raise NotImplementedError

    def _collect_values(self) -> dict:
        return {
            i: ev._value
            for i, ev in enumerate(self._events)
            if ev._state == _PROCESSED and ev._ok
        }


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _check_initial(self) -> None:
        if self._outstanding == 0:
            self.succeed(self._collect_values())

    def _observe(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._outstanding -= 1
        if self._outstanding == 0:
            self.succeed(self._collect_values())


class AnyOf(_Condition):
    """Fires as soon as one constituent event has fired."""

    __slots__ = ()

    def _check_initial(self) -> None:
        for ev in self._events:
            if ev._state == _PROCESSED:
                self.succeed(self._collect_values())
                return
        if not self._events:
            self.succeed({})

    def _observe(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect_values())


class Environment:
    """The event loop: owns simulated time and the pending-event order.

    The ordering structure itself is pluggable: ``scheduler`` may be
    ``"calendar"`` (default — calendar queue with batched same-instant
    dispatch), ``"heap"`` (the verification backend), a scheduler class
    or a ready instance.  When ``scheduler`` is None the
    ``REPRO_SCHEDULER`` environment variable picks the backend.

    ``trace=True`` enables dispatch-order recording (``env.trace`` grows
    one ``(time, seq)`` pair per live dispatch) and disables the solo
    short circuit so every event flows through the structure — the
    scheduler-equivalence oracle compares these traces across backends.
    """

    __slots__ = ("_now", "_seq", "_active", "_sched", "_solo", "_solo_at",
                 "_solo_on", "_tcache", "_pending", "_limit")

    def __init__(self, initial_time: float = 0.0,
                 scheduler: "str | type | object | None" = None,
                 trace: bool = False):
        self._now = float(initial_time)
        self._seq = 0
        self._active = True
        self._sched = make_scheduler(scheduler)
        #: A triggered timeout parked outside the structure (see module
        #: docstring).  Invariant: ``_solo is not None`` implies the
        #: structure is empty (``_pending == 0``).
        self._solo: Optional[Event] = None
        self._solo_at = 0.0
        self._solo_on = not trace
        #: One-slot recycled-Timeout pool.  Invariant: a cached object
        #: is _TRIGGERED with an empty callbacks list, _ok, not defused.
        self._tcache: Optional[Timeout] = None
        #: Number of entries in the scheduler structure (cancelled ones
        #: included; the solo slot excluded).
        self._pending = 0
        #: Time ceiling of the active ``run(until=<float>)``, +inf
        #: otherwise; bounds the solo inline fire.
        self._limit = _INF
        if trace:
            self._sched.enable_trace()

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def scheduler(self):
        """The active scheduler backend instance."""
        return self._sched

    @property
    def trace(self) -> Optional[list]:
        """Recorded ``(time, seq)`` dispatch order (None unless tracing)."""
        return self._sched.trace

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create and schedule a timeout (inlined hot path)."""
        if delay < 0.0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        ev = self._tcache
        if ev is not None:
            self._tcache = None
            ev.delay = delay
            ev._value = value
        else:
            ev = Timeout.__new__(Timeout)
            ev.env = self
            ev.callbacks = []
            ev._state = _TRIGGERED
            ev._ok = True
            ev._value = value
            ev._defused = False
            ev.delay = delay
        if self._pending == 0 and self._solo is None and self._solo_on:
            self._solo = ev
            self._solo_at = self._now + delay
            return ev
        # _insert, inlined (this is the hottest scheduling call site).
        if self._solo is not None:
            self._flush()
        seq = self._seq + 1
        self._seq = seq
        self._pending += 1
        self._sched.insert(self._now + delay, seq, ev)
        return ev

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Schedule a triggered event ``delay`` from now."""
        if event._state != _PENDING:
            raise SimulationError("event already scheduled")
        event._state = _TRIGGERED
        # _insert, inlined (hot: every process wake-up passes through).
        if self._solo is not None:
            self._flush()
        seq = self._seq + 1
        self._seq = seq
        self._pending += 1
        self._sched.insert(self._now + delay, seq, event)

    def _insert(self, when: float, event: Event) -> None:
        """The scheduling choke point: assign the next sequence number
        and hand the entry to the active scheduler.  Flushes the solo
        slot first so its sequence number lands exactly where its
        structure insert would have.

        ``timeout()`` and ``schedule()`` inline this exact body (they
        are the two hottest call sites); any change here must be
        mirrored there.  ``test_seq_strictly_monotone_across_both_paths``
        pins the shared contract."""
        if self._solo is not None:
            self._flush()
        seq = self._seq + 1
        self._seq = seq
        self._pending += 1
        self._sched.insert(when, seq, event)

    def _flush(self) -> None:
        """Move the parked solo event into the scheduler structure."""
        solo = self._solo
        if solo is not None:
            self._solo = None
            seq = self._seq + 1
            self._seq = seq
            self._pending += 1
            self._sched.insert(self._solo_at, seq, solo)

    def _pending_now(self) -> bool:
        """True if any entry (cancelled included) is due at this very
        instant — the resource layer's uncontended fast-grant guard."""
        if self._solo is not None:
            return self._solo_at <= self._now
        return self._sched.pending_at(self._now)

    def _note_cancelled(self, event: Event) -> None:
        """Account a newly cancelled scheduled event.

        A cancelled solo event is flushed into the structure first so
        revive and compaction see it exactly like any other entry.
        """
        if event is self._solo:
            self._flush()
        self._sched.note_cancelled(self)

    def _revive(self, event: Event) -> None:
        """Re-subscribe path: a cancelled (still structure-resident)
        event gained a new waiter, so it must be delivered after all."""
        event._state = _TRIGGERED
        self._sched._ncancelled -= 1

    def peek(self) -> float:
        """Time of the next event, or +inf if none is scheduled."""
        if self._solo is not None:
            return self._solo_at
        return self._sched.peek()

    def step(self) -> None:
        """Process exactly one event (cancelled events count as no-ops)."""
        if self._solo is not None:
            self._flush()
        event = self._sched.pop_one(self)
        self._pending -= 1
        if event._state == _CANCELLED:
            self._sched._ncancelled -= 1
            event._state = _PROCESSED
            event.callbacks = None
            return
        callbacks = event.callbacks
        event.callbacks = None
        event._state = _PROCESSED
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until a time, until an event fires, or until empty.

        * ``until`` float: run all events up to and including that time,
          then set ``now`` to it.
        * ``until`` Event: run until that event is processed and return
          its value (raising if it failed).
        * ``until`` None: run until no events remain.

        All three modes delegate to dispatch loops owned by the active
        scheduler, with locals bound outside the loop; this is the
        hottest code in the package.
        """
        sched = self._sched

        if until is None:
            self._limit = _INF
            return sched.run_all(self)

        if isinstance(until, Event):
            sentinel = until
            if sentinel._state == _PROCESSED:
                if not sentinel._ok:
                    raise sentinel._value
                return sentinel._value
            finished: list = []
            if sentinel.callbacks is None:  # pragma: no cover - safety
                raise SimulationError("cannot wait on this event")
            if sentinel._state == _CANCELLED:
                self._revive(sentinel)
            sentinel.callbacks.append(lambda ev: finished.append(ev))
            self._limit = _INF
            sched.run_event(self, finished)
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(
                f"cannot run to {horizon!r}: time is already {self._now!r}"
            )
        self._limit = horizon
        try:
            sched.run_horizon(self, horizon)
        finally:
            self._limit = _INF
        self._now = horizon
        return None


# Give the scheduler dispatch loops the concrete Timeout type for the
# object-pool gate without a circular import.
_schedmod._Timeout = Timeout
