"""Queueing resources for the simulation kernel.

TPSIM models every service station — CPUs, NVEM servers, disk
controllers, disk servers, multiprogramming slots — as a resource with a
fixed capacity and a FIFO (or priority) wait queue.  This module
provides those stations plus a :class:`Store` (producer/consumer queue,
used for the transaction input queue) and per-resource monitoring of
utilization and queue lengths.

Usage pattern (inside a process generator)::

    req = cpu.request()
    yield req
    yield env.timeout(service_time)
    cpu.release(req)
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Optional

from repro.sim.core import Environment, Event, SimulationError
from repro.sim.stats import TimeWeighted

__all__ = ["PriorityResource", "Resource", "ResourceMonitor", "Store"]


class ResourceMonitor:
    """Time-weighted utilization / queue statistics for one resource."""

    __slots__ = ("busy", "queue", "requests", "completions")

    def __init__(self, env: Environment, capacity: int):
        self.busy = TimeWeighted(env)
        self.queue = TimeWeighted(env)
        self.requests = 0
        self.completions = 0

    def utilization(self, capacity: int) -> float:
        """Mean busy servers divided by capacity."""
        if capacity <= 0:
            return 0.0
        return self.busy.mean() / capacity

    def mean_queue_length(self) -> float:
        return self.queue.mean()

    def reset(self) -> None:
        """Restart statistics (warm-up boundary); keeps current levels."""
        self.busy.reset()
        self.queue.reset()
        self.requests = 0
        self.completions = 0


class Request(Event):
    """A pending or granted claim on a resource."""

    __slots__ = ("resource", "priority", "key", "cancelled")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.key: Any = None
        self.cancelled = False


class Resource:
    """A server pool with ``capacity`` units and a FIFO wait queue."""

    __slots__ = ("env", "capacity", "name", "users", "_waiters", "monitor")

    def __init__(self, env: Environment, capacity: int = 1,
                 name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: int = 0
        self._waiters: deque = deque()
        self.monitor = ResourceMonitor(env, capacity)

    # -- queue discipline hooks (overridden by PriorityResource) ---------
    def _enqueue(self, request: Request) -> None:
        self._waiters.append(request)

    def _dequeue(self) -> Optional[Request]:
        while self._waiters:
            request = self._waiters.popleft()
            if not request.cancelled:
                return request
        return None

    def _queue_len(self) -> int:
        return len(self._waiters)

    # -- public API ------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        """Claim one unit; the returned event fires when granted."""
        request = Request(self, priority)
        self.monitor.requests += 1
        if self.users < self.capacity:
            self.users += 1
            self.monitor.busy.record(self.users)
            request.succeed(request)
        else:
            self._enqueue(request)
            self.monitor.queue.record(self._queue_len())
        return request

    def cancel(self, request: Request) -> None:
        """Withdraw a not-yet-granted request (e.g. on interrupt)."""
        if request.triggered and not request.cancelled:
            # Already granted: treat as release.
            self.release(request)
            return
        request.cancelled = True
        self.monitor.queue.record(self._queue_len())

    def release(self, request: Request) -> None:
        """Return one unit and grant the next waiter, if any."""
        if not request.triggered:
            raise SimulationError("releasing a request that was never granted")
        if request.cancelled:
            raise SimulationError("releasing a cancelled request")
        request.cancelled = True  # guard against double release
        self.monitor.completions += 1
        nxt = self._dequeue()
        if nxt is not None:
            self.monitor.queue.record(self._queue_len())
            nxt.succeed(nxt)
        else:
            self.users -= 1
            self.monitor.busy.record(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests currently waiting."""
        return self._queue_len()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name!r} "
                f"{self.users}/{self.capacity} busy, "
                f"{self._queue_len()} queued>")


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-priority-value first.

    Ties are FIFO (stable via a sequence number).
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        super().__init__(env, capacity, name)
        self._heap: list = []
        self._seq = 0

    def _enqueue(self, request: Request) -> None:
        self._seq += 1
        request.key = (request.priority, self._seq)
        heappush(self._heap, (request.key, request))

    def _dequeue(self) -> Optional[Request]:
        while self._heap:
            _, request = heappop(self._heap)
            if not request.cancelled:
                return request
        return None

    def _queue_len(self) -> int:
        return sum(1 for _, r in self._heap if not r.cancelled)


class Store:
    """Unbounded FIFO queue of items with blocking ``get``.

    Used for the transaction input queue of the transaction manager:
    the SOURCE ``put``s arrivals; MPL slots ``get`` them.
    """

    __slots__ = ("env", "name", "_items", "_getters", "monitor")

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: deque = deque()
        self._getters: deque = deque()
        self.monitor = ResourceMonitor(env, 1)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes one blocked getter if present."""
        self.monitor.requests += 1
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                self.monitor.completions += 1
                return
        self._items.append(item)
        self.monitor.queue.record(len(self._items))

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            item = self._items.popleft()
            self.monitor.queue.record(len(self._items))
            self.monitor.completions += 1
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
