"""Queueing resources for the simulation kernel.

TPSIM models every service station — CPUs, NVEM servers, disk
controllers, disk servers, multiprogramming slots — as a resource with a
fixed capacity and a FIFO (or priority) wait queue.  This module
provides those stations plus a :class:`Store` (producer/consumer queue,
used for the transaction input queue) and per-resource monitoring of
utilization and queue lengths.

Cancellation discipline: a withdrawn request (explicit :meth:`Resource.cancel`
or a process interrupt, which reaches :meth:`Request._abandoned` through
the kernel) is purged *eagerly* — removed from the FIFO queue, or
excluded from the priority queue's live count with periodic heap
compaction.  Queue-length statistics therefore never count cancelled
waiters, and the grant path stays O(log n) without lazy-deletion scans.

Uncontended fast path: when a unit is free (which for a consistent
resource implies an empty wait queue) *and no other event is pending at
the current instant*, :meth:`Resource.request` claims the unit
immediately and returns an *already-processed* request — the kernel
consumes such an event synchronously at the ``yield`` with no heap
insertion and no grant round trip.  The same-instant guard is what
keeps the simulation trajectory bit-identical: with nothing else
scheduled at ``now``, the zero-delay grant event would have been the
very next event popped, so skipping it runs the requester at exactly
the same point in the global ``(time, seq)`` dispatch order (dropping
the grant entry shifts every later sequence number uniformly, which
cannot reorder any tie).  With another event pending at ``now`` the
grant is scheduled on the heap as before, deferring the requester
behind that event exactly as it always was.

Fast-granted requests behave exactly like heap-granted ones afterwards:
:meth:`Resource.release` returns the unit, :meth:`Resource.cancel` (and
the interrupt machinery that funnels into it) treats the
granted-but-abandoned claim as a release, and utilization statistics
see the same busy transition at the same simulated time.

Usage pattern (inside a process generator)::

    req = cpu.request()
    yield req
    yield env.timeout(service_time)
    cpu.release(req)
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Generator, Optional

from repro.sim.core import (
    _PENDING,
    _PROCESSED,
    _TRIGGERED,
    Environment,
    Event,
    SimulationError,
    Timeout,
)
from repro.sim.stats import TimeWeighted

__all__ = ["PriorityResource", "Resource", "ResourceMonitor", "Store"]


class ResourceMonitor:
    """Time-weighted utilization / queue statistics for one resource."""

    __slots__ = ("busy", "queue", "requests", "completions")

    def __init__(self, env: Environment, capacity: int):
        self.busy = TimeWeighted(env)
        self.queue = TimeWeighted(env)
        self.requests = 0
        self.completions = 0

    def utilization(self, capacity: int) -> float:
        """Mean busy servers divided by capacity."""
        if capacity <= 0:
            return 0.0
        return self.busy.mean() / capacity

    def mean_queue_length(self) -> float:
        return self.queue.mean()

    def reset(self) -> None:
        """Restart statistics (warm-up boundary); keeps current levels."""
        self.busy.reset()
        self.queue.reset()
        self.requests = 0
        self.completions = 0


class Request(Event):
    """A pending or granted claim on a resource."""

    __slots__ = ("resource", "priority", "key", "cancelled")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.key: Any = None
        self.cancelled = False

    def _abandoned(self):
        """Kernel hook: the requesting process was interrupted.

        Withdraw the claim so a dead process is never granted a unit
        (queued request) and never leaks one (granted-but-undelivered
        request, which :meth:`Resource.cancel` turns into a release).
        """
        self.resource.cancel(self)
        Event._abandoned(self)
        return None


class _ServiceEvent(Timeout):
    """A fused acquire→hold→release cycle as one kernel event.

    ``yield resource.serve_event(draw)`` is the hot-path equivalent of
    ``yield from resource.serve(draw)``: one event object replaces the
    sub-generator, its grant round trip, and the separate service
    timeout, while reproducing the exact ``(time, seq)`` dispatch order
    and RNG draw positions of the generator version.

    Lifecycle:

    * uncontended grant — created already *triggered* at
      ``now + draw()`` with a pre-seeded ``_finish`` callback that
      releases the unit when the kernel dispatches it (parked in the
      environment's solo slot when nothing else is pending at all);
    * deferred or queued grant — stays *pending* with ``_on_grant``
      subscribed to the request; the service time is drawn at grant
      dispatch, exactly where the generator version drew it;
    * interrupt — the kernel's ``_abandoned`` hook withdraws a queued
      request immediately, while a granted-and-running service returns
      a finalizer that releases the unit at interrupt *delivery*,
      matching the generator version's ``except`` clause timing.

    A Timeout subclass so the kernel treats a scheduled instance like
    any other timed event; the exact-type gate on the object pool keeps
    it from ever being recycled as a plain timeout.
    """

    __slots__ = ("_resource", "_request", "_draw")

    def _on_grant(self, request: "Request") -> None:
        """Request-grant callback: draw the service time and schedule
        the completion (the grant was withdrawn if ``cancelled``)."""
        if request.cancelled:
            return
        delay = self._draw()
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        self.delay = delay
        self._state = _TRIGGERED
        env = self.env
        env._insert(env._now + delay, self)

    def _finish(self, event: Event) -> None:
        """Own completion callback (runs before the waiter's resume)."""
        self._resource.release(self._request)

    def _finalize(self, carrier: Event) -> None:
        """Interrupt-delivery finalizer: give back the held unit."""
        self._resource.cancel(self._request)

    def _abandoned(self):
        if self._state == _PENDING:
            # Still waiting for the grant: withdraw from the queue (or
            # turn an undelivered deferred grant into a release).
            request = self._request
            callbacks = request.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._on_grant)
                except ValueError:  # pragma: no cover - already granted
                    pass
            self._resource.cancel(request)
            Event._abandoned(request)
            return None
        # Unit held, completion scheduled: drop the completion event and
        # release the unit at interrupt delivery — the same instant the
        # generator version's ``except`` clause released it.
        try:
            self.callbacks.remove(self._finish)
        except ValueError:  # pragma: no cover - defensive
            pass
        Event._abandoned(self)
        return self._finalize


class Resource:
    """A server pool with ``capacity`` units and a FIFO wait queue.

    Cancelled waiters are marked and skipped on grant (amortized O(1));
    an exact live count keeps :meth:`queue_length` and the queue
    statistics O(1), and the backlog is compacted in one sweep once
    cancelled entries outnumber live ones, so mass interruption of a
    long queue costs O(n) total rather than O(n^2).
    """

    __slots__ = ("env", "capacity", "name", "users", "_waiters", "_live",
                 "monitor")

    #: Backlog size below which compaction is not worth the sweep.
    _COMPACT_MIN = 32

    def __init__(self, env: Environment, capacity: int = 1,
                 name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: int = 0
        self._waiters: deque = deque()
        self._live = 0
        self.monitor = ResourceMonitor(env, capacity)

    # -- queue discipline hooks (overridden by PriorityResource) ---------
    def _enqueue(self, request: Request) -> None:
        self._waiters.append(request)
        self._live += 1

    def _dequeue(self) -> Optional[Request]:
        waiters = self._waiters
        while waiters:
            request = waiters.popleft()
            if not request.cancelled:
                self._live -= 1
                return request
        return None

    def _purge(self, request: Request) -> None:
        """Account a cancelled request; compact when cancelled dominate."""
        self._live -= 1
        waiters = self._waiters
        if len(waiters) >= self._COMPACT_MIN and 2 * self._live <= len(waiters):
            alive = [r for r in waiters if not r.cancelled]
            waiters.clear()
            waiters.extend(alive)

    def _queue_len(self) -> int:
        return self._live

    # -- public API ------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        """Claim one unit; the returned event fires when granted.

        With a free unit and no other event pending at the current
        instant, the returned request is already *processed*
        (``callbacks is None``): the grant costs no heap insertion and
        the requester resumes synchronously at the ``yield``.  See the
        module docstring for why the same-instant guard keeps the
        ``(time, seq)`` dispatch order bit-identical.
        """
        self.monitor.requests += 1
        env = self.env
        if self.users < self.capacity:
            self.users += 1
            self.monitor.busy.record(self.users)
            if not env._pending_now():
                # Synchronous grant: skip the Event.__init__ chain and
                # the succeed/schedule/step round trip entirely.
                request = Request.__new__(Request)
                request.env = env
                request.callbacks = None
                request._state = _PROCESSED
                request._ok = True
                request._defused = False
                request.resource = self
                request.priority = priority
                request.key = None
                request.cancelled = False
                request._value = request
                return request
            # Another event is pending at this very instant: defer the
            # grant behind it via the scheduler, exactly as before.
            request = Request(self, priority)
            request.succeed(request)
            return request
        request = Request(self, priority)
        self._enqueue(request)
        self.monitor.queue.record(self._queue_len())
        return request

    def cancel(self, request: Request) -> None:
        """Withdraw a not-yet-granted request (e.g. on interrupt)."""
        if request.cancelled:
            return
        if request.triggered:
            # Already granted: treat as release.
            self.release(request)
            return
        request.cancelled = True
        self._purge(request)
        self.monitor.queue.record(self._queue_len())

    def release(self, request: Request) -> None:
        """Return one unit and grant the next waiter, if any."""
        if not request.triggered:
            raise SimulationError("releasing a request that was never granted")
        if request.cancelled:
            raise SimulationError("releasing a cancelled request")
        request.cancelled = True  # guard against double release
        self.monitor.completions += 1
        nxt = self._dequeue()
        if nxt is not None:
            self.monitor.queue.record(self._queue_len())
            nxt.succeed(nxt)
        else:
            self.users -= 1
            self.monitor.busy.record(self.users)

    def serve_event(self, draw_delay) -> Event:
        """Acquire one unit, hold it for a drawn service time, release —
        fused into a single yieldable event (see :class:`_ServiceEvent`).

        ``draw_delay`` is a zero-argument callable evaluated *after* the
        grant: service-time draw order relative to the queueing wait is
        part of the simulation's determinism contract, so it must not
        move to call time.  The cycle is interrupt-safe — if the waiting
        process is torn down, the claim is cancelled (withdrawing a
        queued request, releasing a held one) instead of leaking a
        capacity unit.
        """
        env = self.env
        request = self.request()
        ev = _ServiceEvent.__new__(_ServiceEvent)
        ev.env = env
        ev._ok = True
        ev._value = None
        ev._defused = False
        ev._resource = self
        ev._request = request
        if request.callbacks is None:
            # Uncontended fast grant: draw now (the same RNG position
            # the generator version drew at) and schedule completion.
            delay = draw_delay()
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay!r}")
            ev.delay = delay
            ev._draw = None
            ev._state = _TRIGGERED
            ev.callbacks = [ev._finish]
            if env._pending == 0 and env._solo is None and env._solo_on:
                env._solo = ev
                env._solo_at = env._now + delay
            else:
                env._insert(env._now + delay, ev)
            return ev
        # Deferred or queued grant: draw at grant dispatch.
        ev.delay = 0.0
        ev._draw = draw_delay
        ev._state = _PENDING
        ev.callbacks = [ev._finish]
        request.callbacks.append(ev._on_grant)
        return ev

    def serve(self, draw_delay) -> Generator:
        """Generator form of :meth:`serve_event` (compatibility shim for
        ``yield from`` call sites; hot paths yield the event directly)."""
        yield self.serve_event(draw_delay)

    @property
    def queue_length(self) -> int:
        """Number of live (non-cancelled) requests currently waiting."""
        return self._queue_len()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name!r} "
                f"{self.users}/{self.capacity} busy, "
                f"{self._queue_len()} queued>")


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-priority-value first.

    Ties are FIFO (stable via a sequence number).  Cancellation follows
    the same mark-and-compact scheme as the base class, adapted to the
    heap (which cannot drop an arbitrary entry in O(log n)).
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        super().__init__(env, capacity, name)
        self._heap: list = []
        self._seq = 0

    def _enqueue(self, request: Request) -> None:
        self._seq += 1
        request.key = (request.priority, self._seq)
        heappush(self._heap, (request.key, request))
        self._live += 1

    def _dequeue(self) -> Optional[Request]:
        heap = self._heap
        while heap:
            _, request = heappop(heap)
            if not request.cancelled:
                self._live -= 1
                return request
        return None

    def _purge(self, request: Request) -> None:
        self._live -= 1
        heap = self._heap
        if len(heap) >= self._COMPACT_MIN and 2 * self._live <= len(heap):
            heap[:] = [e for e in heap if not e[1].cancelled]
            heapify(heap)


class _StoreGet(Event):
    """A pending ``get`` on a :class:`Store`."""

    __slots__ = ("store",)

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        self.store = store

    def _abandoned(self) -> None:
        """Kernel hook: the getter was interrupted — leave the queue so a
        later ``put`` does not hand its item to a dead process."""
        try:
            self.store._getters.remove(self)
        except ValueError:  # pragma: no cover - already served
            pass
        Event._abandoned(self)


class Store:
    """Unbounded FIFO queue of items with blocking ``get``.

    Used for the transaction input queue of the transaction manager:
    the SOURCE ``put``s arrivals; MPL slots ``get`` them.
    """

    __slots__ = ("env", "name", "_items", "_getters", "monitor")

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: deque = deque()
        self._getters: deque = deque()
        self.monitor = ResourceMonitor(env, 1)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes one blocked getter if present."""
        self.monitor.requests += 1
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                self.monitor.completions += 1
                return
        self._items.append(item)
        self.monitor.queue.record(len(self._items))

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = _StoreGet(self)
        if self._items:
            item = self._items.popleft()
            self.monitor.queue.record(len(self._items))
            self.monitor.completions += 1
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
