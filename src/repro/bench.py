"""Kernel benchmark workloads, importable by tooling.

The workloads live inside the package (rather than in
``benchmarks/kernel_bench.py``) so both the tracked benchmark harness
and the ``repro bench`` CLI subcommand (including its ``--profile``
cProfile mode) can run the exact same code.  Each workload is a
zero-argument-callable-friendly function returning an operation count;
timing is the harness's job.

Workloads:

* ``event_chain`` — a single process yielding 20k timeouts: the pure
  ``yield env.timeout`` hot path (solo slot + timeout pooling).
* ``scheduler_insert_pop`` — 20k bare events at scattered times pushed
  through ``Environment.schedule`` and drained: isolates the scheduler
  structure (insert + pop), no generator machinery at all.
* ``same_instant_batch`` — 20k events in 200 same-instant cohorts of
  100: the calendar queue's batched cohort dispatch versus one
  heap-pop per event.
* ``resource_contention`` — 2k customers through a three-stage FIFO
  queueing network: request/grant/release plus timeout mix.
* ``priority_cancel`` — a priority queue under heavy cancellation:
  exercises the eager-purge/compaction path.
* ``debit_credit`` — one simulated second of 200 TPS Debit-Credit:
  the end-to-end simulator.
* ``page_reference`` — one CM hammering the per-reference pipeline
  (CPU burst + buffer-manager fix) on a main-memory-hit working set.
* ``restart_replay`` — crash-recovery restart replay (log scan + redo).
* ``fig4_1_fast_sweep`` — the registry-driven fig4_1 fast sweep end to
  end: what an experiment author actually waits for.
* ``fig4_1_cached_rerun`` — the same sweep served entirely from a warm
  content-addressed result store: fingerprinting + store reads +
  deserialization, i.e. what an unchanged ``--cache`` rerun costs.
* ``calibration`` — fixed pure-Python spin loop; the machine-speed
  yardstick used to normalize all of the above.
"""

from __future__ import annotations

import random

from repro.sim import Environment, PriorityResource, RandomStreams, Resource

__all__ = [
    "WORKLOADS",
    "bench_debit_credit",
    "bench_event_chain",
    "bench_fig4_1_cached_rerun",
    "bench_fig4_1_fast_sweep",
    "bench_media_redo",
    "bench_page_reference",
    "bench_priority_cancel",
    "bench_resource_contention",
    "bench_restart_replay",
    "bench_same_instant_batch",
    "bench_scheduler_insert_pop",
    "bench_trace_overhead",
    "calibration",
]


def bench_event_chain(n: int = 20_000) -> int:
    env = Environment()

    def proc(env):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert env.now == float(n)
    return n


def bench_scheduler_insert_pop(n: int = 20_000) -> int:
    """Bare scheduler traffic: n events at scattered times, no
    processes — isolates structure insert + ordered drain."""
    env = Environment()
    rng = random.Random(123)
    schedule = env.schedule
    event = env.event
    for _ in range(n):
        ev = event()
        ev._ok = True
        schedule(ev, rng.random() * 100.0)
    env.run()
    assert env._pending == 0
    return n


def bench_same_instant_batch(instants: int = 200,
                             per_instant: int = 100) -> int:
    """Batched same-instant dispatch: dense cohorts of simultaneous
    events, the shape commit bursts and broadcast invalidations have."""
    env = Environment()
    schedule = env.schedule
    event = env.event
    for t in range(1, instants + 1):
        when = float(t)
        for _ in range(per_instant):
            ev = event()
            ev._ok = True
            schedule(ev, when)
    env.run()
    assert env.now == float(instants)
    return instants * per_instant


def bench_resource_contention(customers: int = 2_000) -> int:
    env = Environment()
    streams = RandomStreams(1)
    servers = [Resource(env, capacity=2) for _ in range(3)]

    def customer(env):
        for server in servers:
            req = server.request()
            yield req
            yield env.timeout(streams.exponential("svc", 1.0))
            server.release(req)

    def source(env):
        for _ in range(customers):
            yield env.timeout(streams.exponential("arr", 0.5))
            env.process(customer(env))

    env.process(source(env))
    env.run()
    return customers


def bench_priority_cancel(customers: int = 2_000) -> int:
    """Contended priority resource with a third of the waiters aborted."""
    env = Environment()
    streams = RandomStreams(2)
    server = PriorityResource(env, capacity=2)

    def customer(env, i):
        req = server.request(priority=i % 7)
        if i % 3 == 0:
            # Give up quickly: exercises cancel/purge under load.
            result = yield env.any_of([req, env.timeout(0.4)])
            if req not in result.values():
                server.cancel(req)
                return
        else:
            yield req
        yield env.timeout(streams.exponential("svc", 1.0))
        server.release(req)

    def source(env):
        for i in range(customers):
            yield env.timeout(streams.exponential("arr", 0.3))
            env.process(customer(env, i))

    env.process(source(env))
    env.run()
    return customers


def bench_debit_credit() -> int:
    from repro.core.model import TransactionSystem
    from repro.experiments.defaults import debit_credit_config, disk_only
    from repro.workload.debit_credit import DebitCreditWorkload

    config = debit_credit_config(disk_only())
    system = TransactionSystem(config, DebitCreditWorkload(arrival_rate=200))
    results = system.run(warmup=0.5, duration=1.0)
    assert results.committed > 100
    return results.committed


def bench_page_reference(n: int = 20_000) -> int:
    """One CM driving the per-reference pipeline on a hot working set.

    64 warm-up misses fill the frames, then every reference is a main
    memory hit: per-object CPU burst + buffer fix + hit accounting —
    the exact loop the transaction managers run per object reference.
    Uses the counters-only metrics mode like the other micro-benchmarks.
    """
    from repro.core.bm import BufferManager
    from repro.core.cpu import CPUPool
    from repro.core.metrics import MetricsCollector
    from repro.core.transaction import ObjectRef, Transaction
    from repro.experiments.defaults import debit_credit_config, disk_only
    from repro.storage.hierarchy import StorageSubsystem

    config = debit_credit_config(disk_only())
    env = Environment()
    streams = RandomStreams(7)
    metrics = (MetricsCollector.lite(env)
               if hasattr(MetricsCollector, "lite")
               else MetricsCollector(env, reservoir=0))
    storage = StorageSubsystem(env, streams, config)
    cpu = CPUPool(env, streams, config.cm)
    bm = BufferManager(env, streams, config, cpu, storage, metrics)
    instr_or = config.cm.instr_or
    refs = [ObjectRef(1, i, i % 64, False, tag="BRANCH") for i in range(n)]
    tx = Transaction(1, "bench", refs[:1])
    # Runnable against pre-fast-path checkouts (reference measurements).
    fix_fast = getattr(bm, "fix_page_fast", None)

    def driver(env):
        if fix_fast is None:  # pragma: no cover - old-checkout fallback
            for ref in refs:
                yield from cpu.execute(tx, instr_or)
                yield from bm.fix_page(tx, ref)
            return
        for ref in refs:
            burst = cpu.execute_event(tx, instr_or)
            if burst is not None:
                yield burst
            if fix_fast(tx, ref) is None:
                yield from bm.fix_page_miss(tx, ref)

    env.run(until=env.process(driver(env)))
    assert metrics.page_access.total() == n
    return n


def bench_restart_replay(redo_pages: int = 1200,
                         log_pages: int = 600) -> int:
    """Crash-recovery restart replay (log scan + redo) on disk units.

    Populates the recovery tracker with a synthetic dirty page table
    and log tail, then replays the restart through the real device
    registry — the path every fig_restart / ablation_availability
    point pays once per injected crash.
    """
    from repro.core.model import TransactionSystem
    from repro.experiments.defaults import debit_credit_config, disk_only

    config = debit_credit_config(disk_only())
    config.recovery.enabled = True

    class _IdleWorkload:
        def start(self, system):
            pass

    system = TransactionSystem(config, _IdleWorkload(), seed=11)
    tracker = system.recovery.tracker
    for i in range(redo_pages):
        tracker.note_dirty((0, i))
    system.storage._log_page = log_pages
    snapshot = tracker.on_crash(time=0.0, log_tail=log_pages, in_flight=0)
    replayer = system.recovery.crash_controller.replayer
    done = system.env.process(replayer.replay(snapshot))
    system.env.run(until=done)
    assert system.env.now > 0
    return redo_pages + log_pages


def bench_media_redo(written_pages: int = 1500,
                     log_pages: int = 600) -> int:
    """Media rebuild of a lost database unit through the device registry.

    Primes the written-page tracker and log tail, marks ``db0`` lost,
    and drives the :class:`~repro.recovery.media.MediaRecoverer`
    directly: batched archive restore of the full unit, the
    post-archive log scan, and the per-stale-page redo — the path every
    fig_media_recovery point pays once per injected loss.
    """
    from repro.core.config import DeviceFault
    from repro.core.model import TransactionSystem
    from repro.experiments.defaults import debit_credit_config, disk_only
    from repro.recovery.media import MediaRecoveryStats

    config = debit_credit_config(disk_only())
    config.media.enabled = True
    # The scheduled instant never fires inside the benchmark run; it
    # only arms the subsystem (gate, tracker, archive device).
    config.media.faults = (
        DeviceFault(device="db0", time=1e9, kind="loss"),
    )
    config.media.archive_batch_pages = 8192

    class _IdleWorkload:
        def start(self, system):
            pass

    system = TransactionSystem(config, _IdleWorkload(), seed=11)
    tracker = system.storage.media_tracker
    for i in range(written_pages):
        tracker.note_write("db0", (0, i))
    system.storage._log_page = log_pages
    system.storage.media_state.mark_lost("db0")
    stats = MediaRecoveryStats("db0", system.env.now)
    done = system.env.process(
        system.media.recoverer.recover_device("db0", stats))
    system.env.run(until=done)
    assert stats.restore_pages > 0
    assert stats.redo_pages == written_pages
    assert stats.log_pages == log_pages
    return stats.restore_batches + stats.redo_pages + stats.log_pages


def bench_cluster_2pc_commit() -> int:
    """A 2-node sharded cluster committing through presumed-abort 2PC.

    Half the transactions touch a remote account, so every timed call
    exercises the full distributed path: work shipping over the
    message bus, participant prepare forces, GEM decision mirroring
    and the decision/commit fan-out — on top of the per-node
    single-system stack the other benchmarks cover.
    """
    from repro.cluster import cluster_config, node_scheme
    from repro.cluster.workload import ShardedDebitCreditWorkload

    config = cluster_config(scheme=node_scheme(log="nvem"), num_nodes=2)
    workload = ShardedDebitCreditWorkload.for_cluster(
        config, arrival_rate_per_node=100.0, distributed_fraction=0.5)
    system = config.build_system(workload, seed=1)
    results = system.run(warmup=0.5, duration=1.0)
    assert results.committed > 100
    assert results.cluster["distributed_commits"] > 20
    return results.committed


def bench_trace_overhead() -> int:
    """The traced Debit-Credit second: tracer off, sampled 1/10, full.

    Three back-to-back runs of the ``debit_credit`` kernel second with
    tracing disabled, sampling every 10th transaction, and tracing
    every transaction.  The reported time bounds the *worst-case* cost
    of leaving span tracing on; the off-run inside the same measurement
    keeps the ratio honest against machine drift.
    """
    import dataclasses

    from repro.core.model import TransactionSystem
    from repro.experiments.defaults import debit_credit_config, disk_only
    from repro.workload.debit_credit import DebitCreditWorkload

    spans = 0
    committed = 0
    for sample, enabled in ((1, False), (10, True), (1, True)):
        config = debit_credit_config(disk_only())
        config.trace = dataclasses.replace(
            config.trace, enabled=enabled, sample=sample)
        system = TransactionSystem(
            config, DebitCreditWorkload(arrival_rate=200))
        results = system.run(warmup=0.5, duration=1.0)
        assert results.committed > 100
        committed += results.committed
        if enabled:
            assert system.tracer is not None and system.tracer.spans
            spans += len(system.tracer.spans)
    assert spans > 0
    return committed


def bench_fig4_1_fast_sweep() -> int:
    """The registry-driven fig4_1 fast sweep, serial, end to end."""
    from repro.experiments.api import ExperimentRunner, get_experiment

    result = ExperimentRunner().run_one(get_experiment("fig4_1"),
                                        profile="fast")
    points = sum(len(series.points) for series in result.series)
    assert points >= 8
    return points


#: Per-process store backing ``bench_fig4_1_cached_rerun``; lives in a
#: temporary directory so benchmark runs never touch the user's cache.
_CACHED_RERUN_STORE = None


def bench_fig4_1_cached_rerun() -> int:
    """The fig4_1 fast sweep served from a warm point cache.

    The first call of the process populates a temporary
    :class:`~repro.experiments.store.ResultStore` (the harness's
    warm-up call absorbs that cost); every timed call then runs with
    100% cache hits, measuring the incremental-rerun path: point
    fingerprinting, store reads and Results deserialization.
    """
    import tempfile

    from repro.experiments.api import ExperimentRunner, get_experiment
    from repro.experiments.store import ResultStore

    global _CACHED_RERUN_STORE
    if _CACHED_RERUN_STORE is None:
        _CACHED_RERUN_STORE = ResultStore(
            tempfile.mkdtemp(prefix="repro-bench-cache-"))
    runner = ExperimentRunner(store=_CACHED_RERUN_STORE)
    result = runner.run_one(get_experiment("fig4_1"), profile="fast")
    points = sum(len(series.points) for series in result.series)
    assert points >= 8
    return points


def calibration(loops: int = 2_000_000) -> int:
    """Fixed pure-Python spin loop; the machine-speed yardstick."""
    acc = 0
    for i in range(loops):
        acc += i & 7
    return acc


#: name -> (workload, description).  The registry the harness and the
#: CLI iterate; order is report order.
WORKLOADS = {
    "event_chain": (bench_event_chain, "20k-timeout chain"),
    "scheduler_insert_pop": (
        bench_scheduler_insert_pop,
        "20k bare events, scattered times (structure insert+pop)"),
    "same_instant_batch": (
        bench_same_instant_batch,
        "200 cohorts x 100 simultaneous events (batched dispatch)"),
    "resource_contention": (
        bench_resource_contention, "2k customers, 3-stage FIFO network"),
    "priority_cancel": (
        bench_priority_cancel, "2k customers, priority queue, 1/3 cancelled"),
    "debit_credit": (
        bench_debit_credit, "1 s of 200 TPS Debit-Credit end-to-end"),
    "page_reference": (
        bench_page_reference, "20k-reference MM-hit pipeline (1 CM)"),
    "restart_replay": (
        bench_restart_replay,
        "crash restart: 600-page log scan + 1200-page redo on disks"),
    "media_redo": (
        bench_media_redo,
        "media rebuild: 5.5M-page archive restore + 600-page log scan "
        "+ 1.5k-page redo"),
    "cluster_2pc_commit": (
        bench_cluster_2pc_commit,
        "1 s of 2-node sharded Debit-Credit, 50% distributed via 2PC"),
    "trace_overhead": (
        bench_trace_overhead,
        "3x 1 s 200 TPS Debit-Credit: tracer off / sampled 1/10 / full"),
    "fig4_1_fast_sweep": (
        bench_fig4_1_fast_sweep,
        "fig4_1 fast profile through the experiment registry"),
    "fig4_1_cached_rerun": (
        bench_fig4_1_cached_rerun,
        "fig4_1 fast profile from a warm point cache (100% hits)"),
}
