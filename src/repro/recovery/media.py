"""Archive-based media recovery and dual-copy log resilvering (§4.4).

Crash recovery (:mod:`repro.recovery.crash`) assumes the permanent
database survives; this module covers the other failure class of
[HR83] §4.4 — **media failure**, where a device's permanent copy is
gone.  The model follows the classic archive-copy + log design:

* A background **archiver** (one per system, pure bookkeeping) takes an
  incremental online archive copy every ``MediaConfig.archive_interval``
  seconds: it advances the archive horizon LSN and forgets which pages
  were written since the previous copy.  Its cost is not charged — the
  paper's systems take archives during normal operation and the
  experiments vary the *age* of the archive, not its production cost.
* On a **device loss** the :class:`MediaRecoverer` rebuilds the device
  through the real device registry: Phase A restores every page of the
  device's partitions from the archive device in batched parallel
  streams; Phase B scans the log written since the archive horizon and
  re-applies the updates of pages written since that horizon.  Pages
  become readable one by one (per-page gating in
  :class:`~repro.storage.faults.MediaState`), so transactions keep
  running degraded instead of stalling for the full rebuild.
* A lost copy of a **mirrored NVEM log** is resilvered from the
  surviving copy; commits keep running on the single survivor in the
  meantime.  Loss of an *unmirrored* log copy (or of both copies, or of
  the disk log unit) is unrecoverable by design and raises
  :class:`~repro.storage.faults.MediaUnrecoverableError` — the model
  states the exposure instead of papering over it.

Everything is deterministic: fault instants come from the config
schedule, restore batches are enumerated in sorted order, and no step
draws from the RNG streams beyond the devices' own service draws.
"""

from __future__ import annotations

from typing import Generator, List, Set, Tuple

from repro.core.config import (
    LOG_COPY_MIRROR,
    LOG_COPY_PRIMARY,
    MEMORY,
    NVEM,
)
from repro.sim.core import Event
from repro.storage.faults import MediaUnrecoverableError

__all__ = ["MediaManager", "MediaRecoverer", "MediaRecoveryStats",
           "MediaTracker"]

PageKey = Tuple[int, int]


class MediaRecoveryStats:
    """Breakdown of one media rebuild (device or log copy)."""

    __slots__ = ("device", "started", "finished", "restore_pages",
                 "restore_batches", "redo_pages", "log_pages",
                 "restore_time", "redo_time")

    def __init__(self, device: str, started: float):
        self.device = device
        self.started = started
        self.finished = 0.0
        #: Pages restored from the archive copy (Phase A).
        self.restore_pages = 0
        self.restore_batches = 0
        #: Pages re-applied from post-archive log records (Phase B).
        self.redo_pages = 0
        #: Log pages scanned (Phase B) / copied (log resilver).
        self.log_pages = 0
        self.restore_time = 0.0
        self.redo_time = 0.0

    @property
    def duration(self) -> float:
        return self.finished - self.started

    def summary(self) -> str:
        return (f"media rebuild {self.device}: {self.duration:8.2f} s "
                f"(archive restore {self.restore_pages} pages / "
                f"{self.restore_time:.2f} s, log redo {self.redo_pages} "
                f"pages + {self.log_pages} log pages / "
                f"{self.redo_time:.2f} s)")


class MediaTracker:
    """Archive horizon + written-page sets since the last archive copy.

    Pure state on the buffer manager's write path (one set-add per
    permanent-device write), so installing it never perturbs the event
    trajectory.  The per-device sets are exactly what Phase B of a
    rebuild must redo from the log: pages whose archive copy is stale.
    """

    __slots__ = ("archive_lsn", "archive_time", "archives_taken",
                 "_written")

    def __init__(self):
        #: Highest log page number covered by the archive copy.
        self.archive_lsn = 0
        self.archive_time = 0.0
        self.archives_taken = 0
        self._written = {}

    def note_write(self, device: str, key: PageKey) -> None:
        """A permanent-device page write began (hierarchy/bm hook)."""
        written = self._written.get(device)
        if written is None:
            written = self._written[device] = set()
        written.add(key)

    def written_for(self, device: str) -> Set[PageKey]:
        return self._written.get(device, set())

    def refresh_archive(self, lsn: int, time: float) -> None:
        """A new incremental archive copy completed: every page written
        before ``lsn`` is now covered, so the stale sets reset."""
        self.archive_lsn = lsn
        self.archive_time = time
        self.archives_taken += 1
        for written in self._written.values():
            written.clear()


class MediaRecoverer:
    """Rebuilds a lost device (or log copy) through the device registry."""

    def __init__(self, system):
        self.system = system
        self.env = system.env

    # -- helpers -----------------------------------------------------------
    def _cpu(self, instr: float) -> Generator:
        burst = self.system.cpu.execute_event(None, instr,
                                              exponential=False)
        if burst is not None:
            yield burst

    def _write_restored(self, device: str, key: PageKey) -> Generator:
        """Write one rebuilt page to the raw device behind the gate."""
        system = self.system
        cm = system.config.cm
        if device == NVEM:
            yield from system.cpu.execute_with_sync_access(
                None, cm.instr_nvem, system.storage.inner_nvem.access("write"))
        else:
            yield from self._cpu(cm.instr_io)
            yield from system.storage.inner_unit(device).write(key)

    def _read_restored(self, device: str, key: PageKey) -> Generator:
        system = self.system
        cm = system.config.cm
        if device == NVEM:
            yield from system.cpu.execute_with_sync_access(
                None, cm.instr_nvem, system.storage.inner_nvem.access("read"))
        else:
            yield from self._cpu(cm.instr_io)
            yield from system.storage.inner_unit(device).read(key)

    # -- device rebuild ----------------------------------------------------
    def recover_device(self, device: str,
                       stats: MediaRecoveryStats) -> Generator:
        """Archive restore (Phase A) + post-archive log redo (Phase B).

        The pending-redo set is snapshotted at entry: pages written to
        the device *after* the loss go through the gate's per-page
        availability check and land on already-restored media.
        """
        system = self.system
        state = system.storage.media_state
        tracker = system.storage.media_tracker
        cfg = system.config.media
        restored = state.begin_restore(device)
        # Pages whose archive copy is stale: they restore last, from the
        # log, after their base images come back from the archive.
        pending = set(tracker.written_for(device))
        scan_from = tracker.archive_lsn

        # Phase A: batched parallel restore from the archive device.
        phase_start = self.env.now
        batches = self._batches(device, cfg.archive_batch_pages)
        yield from self._run_restore_workers(
            device, batches, pending, restored, stats,
            max(1, cfg.archive_workers))
        stats.restore_time = self.env.now - phase_start

        # Phase B: scan the log since the archive horizon, then re-apply
        # the stale pages in deterministic order.
        phase_start = self.env.now
        yield from self._redo_from_log(device, scan_from, sorted(pending),
                                       stats)
        stats.redo_time = self.env.now - phase_start

        state.finish_restore(device)
        stats.finished = self.env.now
        tracer = getattr(system, "tracer", None)
        if tracer is not None:
            tracer.span("media.restore", None, stats.started,
                        self.env.now, device)
        system.metrics.record_io("media_rebuild_done")

    def _batches(self, device: str,
                 batch_pages: int) -> List[Tuple[int, int, int]]:
        """(partition index, first page, last page + 1) restore units for
        every partition allocated to ``device``, in deterministic order."""
        batches: List[Tuple[int, int, int]] = []
        for pidx, part in enumerate(self.system.config.partitions):
            if part.allocation != device:
                continue
            pages = part.num_pages
            for first in range(0, pages, batch_pages):
                batches.append((pidx, first,
                                min(first + batch_pages, pages)))
        return batches

    def _run_restore_workers(self, device: str, batches, pending,
                             restored, stats, workers: int) -> Generator:
        """Phase A engine: ``workers`` concurrent streams drain the batch
        list (archive read -> device write per batch)."""
        if not batches:
            return
        done = Event(self.env)
        remaining = [min(workers, len(batches))]
        cursor = [0]

        def worker() -> Generator:
            system = self.system
            cm = system.config.cm
            archive = system.storage.archive_device
            while cursor[0] < len(batches):
                index = cursor[0]
                cursor[0] = index + 1
                pidx, first, stop = batches[index]
                # One archive extent read + one device extent write,
                # with the usual per-I/O CPU overhead on each side.
                yield from self._cpu(cm.instr_io)
                yield from archive.read((pidx, first))
                yield from self._write_restored(device, (pidx, first))
                keys = [(pidx, page) for page in range(first, stop)]
                restored.update(
                    key for key in keys if key not in pending)
                system.storage.media_state.bump()
                stats.restore_pages += stop - first
                stats.restore_batches += 1
                system.metrics.record_io("media_restore_read")
                system.metrics.record_io("media_restore_write")
            remaining[0] -= 1
            if remaining[0] == 0:
                done.succeed()

        for _ in range(remaining[0]):
            self.env.process(worker())
        yield done

    def _redo_from_log(self, device: str, scan_from: int, pending,
                       stats) -> Generator:
        system = self.system
        state = system.storage.media_state
        cm = system.config.cm
        redo_instr = system.config.media.redo_instr
        # The log pages written since the archive copy hold every update
        # the archive missed; scan them through the normal log path.
        tail = system.storage.log_page_count
        for page_no in range(scan_from + 1, tail + 1):
            if system.storage.log_on_nvem:
                yield from system.cpu.execute_with_sync_access(
                    None, cm.instr_nvem,
                    system.storage.nvem_device.access("log"))
            else:
                yield from self._cpu(cm.instr_io)
                yield from system.storage.read_log_from_unit(page_no)
            stats.log_pages += 1
            system.metrics.record_io("media_log_read")
        # Re-apply each stale page: read the restored base image, apply
        # its log records, write it back current.
        for key in pending:
            yield from self._read_restored(device, key)
            yield from self._cpu(redo_instr)
            yield from self._write_restored(device, key)
            state.page_restored(device, key)
            stats.redo_pages += 1
            system.metrics.record_io("media_redo_read")
            system.metrics.record_io("media_redo_write")

    # -- log-copy resilver -------------------------------------------------
    def recover_log_copy(self, copy_index: int,
                         stats: MediaRecoveryStats) -> Generator:
        """Rebuild one copy of a mirrored NVEM log from the survivor.

        The resilver chases the tail: commits keep appending to the
        single surviving copy while pages are copied over (one survivor
        read + one restored-copy write each); once the copy has caught
        the tail, mirroring is re-enabled in the same instant — there is
        no yield between the catch-up check and the re-enable, so no
        append can slip through single-copy.  Log older than the archive
        horizon is not copied: no recovery path reads it any more (media
        redo scans from the horizon; the archiver never advances the
        horizon past records a rebuild could still need).
        """
        system = self.system
        state = system.storage.media_state
        cm = system.config.cm
        nvem = system.storage.inner_nvem
        copied = system.storage.media_tracker.archive_lsn
        while True:
            tail = system.storage.log_page_count
            if tail == copied:
                break
            for _page in range(copied + 1, tail + 1):
                yield from system.cpu.execute_with_sync_access(
                    None, cm.instr_nvem, nvem.access("log"))
                yield from system.cpu.execute_with_sync_access(
                    None, cm.instr_nvem, nvem.access("log"))
                stats.log_pages += 1
                system.metrics.record_io("media_resilver_copy")
            copied = tail
        state.lost_log_copies.discard(copy_index)
        stats.finished = self.env.now


class MediaManager:
    """Drives the fault schedule: arms losses, spawns rebuilds, keeps
    the archiver ticking, and feeds the degraded-mode metrics."""

    def __init__(self, system):
        self.system = system
        self.env = system.env
        self.config = system.config
        self.state = system.storage.media_state
        self.tracker = MediaTracker()
        self.recoverer = MediaRecoverer(system)
        #: Completed rebuild breakdowns, earliest first.
        self.recoveries: List[MediaRecoveryStats] = []
        self._started = False
        # The degraded-metrics block is emitted whenever the media
        # subsystem is on (all-zero for an empty schedule).
        system.metrics.media_enabled = True
        self.state.metrics = system.metrics
        self._loss_faults = sorted(
            (fault for fault in self.config.media.faults
             if fault.kind == "loss"),
            key=lambda fault: (fault.time, fault.device))
        if self._loss_faults:
            # Write tracking + archiver only matter when something can
            # actually be lost; otherwise the hot path stays untouched.
            system.storage.media_tracker = self.tracker

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self._loss_faults:
            self.env.process(self._archiver())
            self.env.process(self._run())

    # -- internals ---------------------------------------------------------
    def _archiver(self) -> Generator:
        interval = self.config.media.archive_interval
        while True:
            yield self.env.timeout(interval)
            if self.state.lost or self.state.lost_log_copies:
                # An incremental copy cannot cover a device that is
                # mid-rebuild; skip the tick and retry next interval.
                continue
            self.tracker.refresh_archive(
                self.system.storage.log_page_count, self.env.now)

    def _run(self) -> Generator:
        for fault in self._loss_faults:
            delay = fault.time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._apply_loss(fault.device)

    def _apply_loss(self, device: str) -> None:
        metrics = self.system.metrics
        if device in (LOG_COPY_PRIMARY, LOG_COPY_MIRROR):
            copy_index = 0 if device == LOG_COPY_PRIMARY else 1
            if not self.config.recovery.log_mirror:
                raise MediaUnrecoverableError(
                    "log copy lost with mirroring off: the log has no "
                    "surviving copy (enable RecoveryConfig.log_mirror)")
            if self.state.lost_log_copies:
                raise MediaUnrecoverableError(
                    "both copies of the mirrored log are lost")
            self.state.lost_log_copies.add(copy_index)
            metrics.note_degraded_start()
            stats = MediaRecoveryStats(device, self.env.now)
            self.env.process(self._rebuild_log_copy(copy_index, stats))
            return
        if device == self.config.log.device:
            raise MediaUnrecoverableError(
                f"log device {device!r} lost: a single-copy disk log "
                "has no media-recovery path")
        self.state.mark_lost(device)
        metrics.note_degraded_start()
        stats = MediaRecoveryStats(device, self.env.now)
        self.env.process(self._rebuild_device(device, stats))

    def _rebuild_device(self, device: str,
                        stats: MediaRecoveryStats) -> Generator:
        metrics = self.system.metrics
        try:
            yield from self.recoverer.recover_device(device, stats)
        finally:
            metrics.note_degraded_end()
        metrics.record_media_recovery(stats.duration, stats)
        self.recoveries.append(stats)

    def _rebuild_log_copy(self, copy_index: int,
                          stats: MediaRecoveryStats) -> Generator:
        metrics = self.system.metrics
        try:
            yield from self.recoverer.recover_log_copy(copy_index, stats)
        finally:
            metrics.note_degraded_end()
        metrics.record_media_recovery(stats.duration, stats)
        self.recoveries.append(stats)
