"""Dirty-page table and log-sequence tracking for crash recovery.

NOFORCE "requires special checkpointing techniques and redo recovery
after a system crash" (§4.4, [HR83]): after a failure of the computing
module, the permanent database misses every update that was still only
in the volatile main-memory buffer.  :class:`RecoveryTracker` maintains
the two structures a restart needs to quantify that exposure:

* the **dirty page table** (DPT) — the pages whose only current copy is
  the volatile buffer, each with the time it was first dirtied and its
  *recLSN* (the log position from which its redo records can start).
  The buffer manager notes pages as they are dirtied in main memory and
  as their write-backs reach a non-volatile destination (disk, disk
  cache, NVEM cache, NVEM write buffer); the DPT therefore mirrors the
  buffer's volatile dirty state at all times.
* **log-sequence tracking** — the monotonically growing log page number
  (the storage hierarchy's sequential log file) doubles as the LSN
  space; checkpoints record the LSN of their checkpoint record, and a
  restart scans from the *older* of that LSN and the DPT's minimum
  recLSN (the ARIES rule: a fuzzy checkpoint does not flush, so pages
  dirtied before it may need records from the unscanned prefix).

Pages dirtied by the pre-measurement prewarm replay predate the log
horizon (no log records exist for them) and are deliberately *not*
tracked: they are treated as propagated for recovery purposes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["CrashSnapshot", "RecoveryTracker"]

PageKey = Tuple[int, int]


class CrashSnapshot:
    """Frozen recovery state at the instant of a crash."""

    __slots__ = ("time", "log_tail", "checkpoint_lsn", "scan_from_lsn",
                 "dirty_pages", "in_flight")

    def __init__(self, time: float, log_tail: int, checkpoint_lsn: int,
                 scan_from_lsn: int, dirty_pages: List[PageKey],
                 in_flight: int):
        #: Simulated instant of the crash.
        self.time = time
        #: Highest log page number written before the crash.
        self.log_tail = log_tail
        #: LSN of the last *completed* checkpoint record (0 = none yet).
        self.checkpoint_lsn = checkpoint_lsn
        #: Exclusive scan start: min(checkpoint LSN, oldest recLSN - 1).
        self.scan_from_lsn = scan_from_lsn
        #: Pages needing redo, in deterministic (sorted) order.
        self.dirty_pages = dirty_pages
        #: Transactions that were *admitted* (executing) at the crash —
        #: input-queue waiters hold no locks and wrote no log records.
        self.in_flight = in_flight

    @property
    def log_pages_to_scan(self) -> int:
        return max(0, self.log_tail - self.scan_from_lsn)


class RecoveryTracker:
    """Bookkeeping shared by the buffer manager, checkpointer and
    restart replayer.  Pure state — it never touches simulated time, so
    installing it cannot perturb the event trajectory.

    ``now`` and ``log_tail`` are zero-argument providers for the
    current simulated time and log page number (the installer passes
    ``env.now`` / ``storage.log_page_count``); bare trackers in unit
    tests default to constant stubs.
    """

    def __init__(self, now: Optional[Callable[[], float]] = None,
                 log_tail: Optional[Callable[[], int]] = None):
        #: page key -> (first-dirty time, recLSN).  The recLSN is the
        #: next log page at dirtying time: the page's redo records
        #: cannot precede it (its transaction logs at commit).
        self.dirty_pages: Dict[PageKey, Tuple[float, int]] = {}
        #: LSN (log page number) of the last completed checkpoint record.
        self.checkpoint_lsn = 0
        #: Simulated time of the last completed checkpoint.
        self.checkpoint_time = 0.0
        self.checkpoints_taken = 0
        self._now = now if now is not None else (lambda: 0.0)
        self._log_tail = log_tail if log_tail is not None else (lambda: 0)

    # -- buffer-manager hooks (hot path: plain dict operations) ---------
    def note_dirty(self, key: PageKey) -> None:
        """A page became dirty in the volatile buffer."""
        if key not in self.dirty_pages:
            self.dirty_pages[key] = (self._now(), self._log_tail() + 1)

    def note_clean(self, key: PageKey) -> None:
        """A page's write-back to non-volatile storage began.

        The DPT mirrors the buffer's dirty bits, which the buffer
        manager clears at write-back *start*; a page re-dirtied during
        the write re-enters through :meth:`note_dirty` (with a fresh
        recLSN).
        """
        self.dirty_pages.pop(key, None)

    # -- checkpointer ----------------------------------------------------
    def complete_checkpoint(self, lsn: int, time: float) -> None:
        self.checkpoint_lsn = lsn
        self.checkpoint_time = time
        self.checkpoints_taken += 1

    def flush_candidates(self) -> List[PageKey]:
        """Dirty pages at checkpoint time, in deterministic order."""
        return sorted(self.dirty_pages)

    # -- crash -----------------------------------------------------------
    def scan_from_lsn(self) -> int:
        """Exclusive LSN a NOFORCE restart scan must start after.

        The older of the last checkpoint record and the DPT's minimum
        recLSN: with the background flush disabled (or unfinished), a
        page dirtied before the checkpoint still needs records from
        before the checkpoint record.
        """
        scan_from = self.checkpoint_lsn
        if self.dirty_pages:
            oldest_rec = min(lsn for _, lsn in self.dirty_pages.values())
            scan_from = min(scan_from, oldest_rec - 1)
        return max(0, scan_from)

    def on_crash(self, time: float, log_tail: int, in_flight: int,
                 extra_redo=()) -> CrashSnapshot:
        """Freeze the restart input and drop the (lost) volatile DPT.

        ``extra_redo`` adds pages beyond the DPT to the redo set —
        pages held in *volatile* disk-controller caches at the crash.
        The restart cannot trust those copies, so it conservatively
        re-reads and re-applies them; their permanent copies are current
        (volatile caches are write-through), so the scan start is
        unaffected.  The redo set is therefore always a superset of the
        dirty-page table (property-tested).
        """
        redo = set(self.dirty_pages)
        redo.update(extra_redo)
        snapshot = CrashSnapshot(
            time=time,
            log_tail=log_tail,
            checkpoint_lsn=self.checkpoint_lsn,
            scan_from_lsn=self.scan_from_lsn(),
            dirty_pages=sorted(redo),
            in_flight=in_flight,
        )
        self.dirty_pages.clear()
        return snapshot

    # -- introspection ---------------------------------------------------
    def dirty_page_count(self) -> int:
        return len(self.dirty_pages)

    def oldest_dirty_time(self) -> Optional[float]:
        if not self.dirty_pages:
            return None
        return min(t for t, _ in self.dirty_pages.values())
