"""Fault injection and simulated restart (log scan + redo replay).

:class:`CrashController` crashes the computing module at the instants of
``RecoveryConfig.crash_times``: admission gates shut, every in-flight
transaction is interrupted (its undo is assumed instantaneous — the
paper's model has no partial-update visibility), the volatile buffer is
discarded, and :class:`RestartReplayer` then replays recovery through
the *actual* device registry before the gate reopens:

* **log scan** — every log page after the ARIES-style scan start (the
  older of the last completed checkpoint record and the dirty-page
  table's minimum recLSN) is read from the configured log device (NVEM
  access, SSD, cached or plain disk) with the ordinary per-I/O CPU
  overheads.  Under FORCE the scan collapses to the commit-window
  tail: committed updates are already in the permanent database, so
  history needs no redo [HR83].
* **redo** — every page of the crash-time dirty page table is read from
  its home device, the log records are applied (``redo_instr`` CPU),
  and the page is written back.  NVEM-resident partitions redo at NVEM
  speed; memory-resident partitions have no permanent device, so their
  redo charges CPU only (their content is rebuilt from the scanned
  log).

Down-time (crash to gate-reopen) feeds the availability counters in
:class:`repro.core.metrics.MetricsCollector`.  Simplifications, chosen
to keep the device-level timing exact while avoiding kernel surgery:
background destages that were in flight at the crash are treated as
surviving (their destinations are non-volatile), and a write-back
counts as propagated from its start (a crash mid-write-back
under-counts redo by the in-flight writes).
"""

from __future__ import annotations

from typing import Generator

from repro.core.config import MEMORY, NVEM, UpdateStrategy
from repro.recovery.tracker import CrashSnapshot, RecoveryTracker
from repro.sim.core import Event

__all__ = ["CrashController", "RedoGate", "RestartReplayer", "RestartStats"]


class RedoGate:
    """Per-page admission gate for online (ARIES-style) redo.

    While the redo pass runs, the buffer manager blocks any access to a
    page still in ``pending`` until :meth:`page_done` releases it;
    everything else proceeds at full speed.  Wait events are created
    lazily per blocked page, so unblocked traffic pays one set lookup.
    """

    __slots__ = ("env", "pending", "_events")

    def __init__(self, env, pending_keys):
        self.env = env
        self.pending = set(pending_keys)
        self._events = {}

    def wait(self, key) -> Generator:
        """Block until ``key`` has been redone."""
        while key in self.pending:
            event = self._events.get(key)
            if event is None:
                event = self._events[key] = Event(self.env)
            yield event

    def page_done(self, key) -> None:
        self.pending.discard(key)
        event = self._events.pop(key, None)
        if event is not None:
            event.succeed()

    def close(self) -> None:
        """Release every remaining page (end of the redo pass)."""
        for key in list(self.pending):
            self.page_done(key)


class RestartStats:
    """Timing breakdown of one simulated restart."""

    __slots__ = ("log_pages", "redo_pages", "log_scan_time", "redo_time")

    def __init__(self, log_pages: int = 0, redo_pages: int = 0,
                 log_scan_time: float = 0.0, redo_time: float = 0.0):
        self.log_pages = log_pages
        self.redo_pages = redo_pages
        self.log_scan_time = log_scan_time
        self.redo_time = redo_time

    @property
    def total(self) -> float:
        return self.log_scan_time + self.redo_time

    def summary(self) -> str:
        return (f"restart {self.total:8.2f} s "
                f"(log scan {self.log_scan_time:7.2f} s / "
                f"{self.log_pages} pages, "
                f"redo {self.redo_time:7.2f} s / "
                f"{self.redo_pages} pages)")


class RestartReplayer:
    """Replays crash recovery through the configured storage devices."""

    def __init__(self, system, tracker: RecoveryTracker):
        self.system = system
        self.env = system.env
        self.tracker = tracker

    def replay(self, snapshot: CrashSnapshot) -> Generator:
        """Run the restart; returns a :class:`RestartStats`."""
        stats = RestartStats()
        tracer = getattr(self.system, "tracer", None)
        scan_start = self.env.now
        yield from self._scan_log(snapshot, stats)
        stats.log_scan_time = self.env.now - scan_start
        if tracer is not None:
            tracer.span("restart.scan", None, scan_start, self.env.now)
        redo_start = self.env.now
        yield from self._redo(snapshot, stats)
        stats.redo_time = self.env.now - redo_start
        if tracer is not None:
            tracer.span("restart.redo", None, redo_start, self.env.now)
        return stats

    # -- log scan --------------------------------------------------------
    def _scan_pages(self, snapshot: CrashSnapshot) -> int:
        """How far back the log scan reaches.

        NOFORCE scans everything after the snapshot's scan-start LSN
        (the older of the last checkpoint record and the DPT's minimum
        recLSN).  FORCE only needs the commit-window tail — one log
        page per transaction that was admitted at the crash — because
        every committed update was already forced to the permanent
        database.
        """
        to_scan = snapshot.log_pages_to_scan
        cm = self.system.config.cm
        if cm.update_strategy is UpdateStrategy.FORCE:
            return min(to_scan, snapshot.in_flight + 1)
        return to_scan

    def _scan_log(self, snapshot: CrashSnapshot,
                  stats: RestartStats) -> Generator:
        system = self.system
        cm = system.config.cm
        pages = self._scan_pages(snapshot)
        first = snapshot.log_tail - pages + 1
        for page_no in range(first, snapshot.log_tail + 1):
            if system.storage.log_on_nvem:
                yield from system.cpu.execute_with_sync_access(
                    None, cm.instr_nvem,
                    system.storage.nvem_device.access("read"),
                )
            else:
                burst = system.cpu.execute_event(None, cm.instr_io,
                                                 exponential=False)
                if burst is not None:
                    yield burst
                yield from system.storage.read_log_from_unit(page_no)
            stats.log_pages += 1
            system.metrics.record_io("restart_log_read")

    # -- redo ------------------------------------------------------------
    def _redo_one(self, key, cm, redo_instr: float) -> Generator:
        system = self.system
        pidx = key[0]
        part = system.config.partitions[pidx]
        if part.allocation == MEMORY:
            # No permanent device: the page is rebuilt in memory
            # from the already-scanned log records.
            burst = system.cpu.execute_event(None, redo_instr,
                                             exponential=False)
            if burst is not None:
                yield burst
        elif part.allocation == NVEM:
            yield from system.cpu.execute_with_sync_access(
                None, cm.instr_nvem,
                system.storage.nvem_device.access("read"),
            )
            burst = system.cpu.execute_event(None, redo_instr,
                                             exponential=False)
            if burst is not None:
                yield burst
            yield from system.cpu.execute_with_sync_access(
                None, cm.instr_nvem,
                system.storage.nvem_device.access("write"),
            )
            system.metrics.record_io("restart_redo_read")
            system.metrics.record_io("restart_redo_write")
        else:
            burst = system.cpu.execute_event(None, cm.instr_io,
                                             exponential=False)
            if burst is not None:
                yield burst
            yield from system.storage.read_page(pidx, part.name,
                                                key[1])
            burst = system.cpu.execute_event(None, redo_instr,
                                             exponential=False)
            if burst is not None:
                yield burst
            burst = system.cpu.execute_event(None, cm.instr_io,
                                             exponential=False)
            if burst is not None:
                yield burst
            yield from system.storage.write_page(pidx, part.name,
                                                 key[1])
            system.metrics.record_io("restart_redo_read")
            system.metrics.record_io("restart_redo_write")

    def _redo(self, snapshot: CrashSnapshot,
              stats: RestartStats) -> Generator:
        cm = self.system.config.cm
        redo_instr = self.system.config.recovery.redo_instr
        for key in snapshot.dirty_pages:
            yield from self._redo_one(key, cm, redo_instr)
            stats.redo_pages += 1

    def redo_online(self, snapshot: CrashSnapshot, stats: RestartStats,
                    gate: RedoGate) -> Generator:
        """The redo pass with admission open: each page is released to
        waiting transactions the moment its records are re-applied."""
        cm = self.system.config.cm
        redo_instr = self.system.config.recovery.redo_instr
        for key in snapshot.dirty_pages:
            yield from self._redo_one(key, cm, redo_instr)
            stats.redo_pages += 1
            gate.page_done(key)


class CrashController:
    """Crashes the CM on the configured deterministic schedule."""

    def __init__(self, system, tracker: RecoveryTracker,
                 checkpointer=None):
        self.system = system
        self.env = system.env
        self.tracker = tracker
        #: Told about crashes so an in-flight checkpoint dies with the
        #: CM instead of contending with the restart replay.
        self.checkpointer = checkpointer
        self.replayer = RestartReplayer(system, tracker)
        #: Restart breakdowns, most recent last (introspection/tests).
        self.restarts = []

    def start(self) -> None:
        if self.system.config.recovery.crash_times:
            self.env.process(self._run())

    # -- internals -------------------------------------------------------
    def _run(self) -> Generator:
        for instant in self.system.config.recovery.crash_times:
            delay = instant - self.env.now
            if delay <= 0:
                # The scheduled crash fell inside a previous outage:
                # the module was already down, nothing extra fails.
                continue
            yield self.env.timeout(delay)
            yield from self._crash_and_restart()

    def _crash_and_restart(self) -> Generator:
        system = self.system
        crashed_at = self.env.now
        # 1. The gate shuts: nothing new is admitted until restart ends.
        system.metrics.note_outage_start()
        system.tm.take_offline()
        # 2. Volatile state is lost: in-flight transactions (and any
        #    checkpoint in progress) die, the buffer is discarded.
        #    Only *admitted* transactions count toward the FORCE
        #    commit-window — input-queue waiters wrote no log records.
        admitted = system.tm.active
        system.tm.interrupt_active("crash")
        if self.checkpointer is not None:
            self.checkpointer.on_crash()
        recovery_cfg = system.config.recovery
        extra_redo = ()
        if recovery_cfg.volatile_cache_loss:
            # Volatile disk-controller caches die with the power: their
            # contents are dropped (post-restart reads miss) and their
            # pages conservatively re-enter the redo set.
            extra_redo = system.bm.drop_volatile_caches()
        snapshot = self.tracker.on_crash(
            time=crashed_at,
            log_tail=system.storage.log_page_count,
            in_flight=admitted,
            extra_redo=extra_redo,
        )
        system.bm.crash_reset()
        # Let the interrupt carriers deliver so the victims unwind
        # (returning CPUs, withdrawing lock waits) before replay starts.
        yield self.env.timeout(0.0)
        if not recovery_cfg.online_redo:
            # 3. Restart replay through the real devices.
            stats = yield from self.replayer.replay(snapshot)
            self.restarts.append(stats)
            system.metrics.record_crash(self.env.now - crashed_at, stats)
            # 4. Reopen for business.
            system.tm.go_online()
            return
        # 3. Online redo: the log scan still runs offline, but admission
        #    reopens as soon as it completes — the redo pass runs with
        #    transactions in flight, gated per page.  Down-time is the
        #    crash-to-admission window only.
        stats = RestartStats()
        tracer = getattr(system, "tracer", None)
        scan_start = self.env.now
        yield from self.replayer._scan_log(snapshot, stats)
        stats.log_scan_time = self.env.now - scan_start
        if tracer is not None:
            tracer.span("restart.scan", None, scan_start, self.env.now)
        gate = RedoGate(self.env, snapshot.dirty_pages)
        system.bm.redo_gate = gate
        system.metrics.note_outage_end()
        downtime = self.env.now - crashed_at
        system.tm.go_online()
        system.metrics.note_degraded_start()
        redo_start = self.env.now
        try:
            yield from self.replayer.redo_online(snapshot, stats, gate)
        finally:
            system.bm.redo_gate = None
            gate.close()
            system.metrics.note_degraded_end()
        stats.redo_time = self.env.now - redo_start
        if tracer is not None:
            tracer.span("restart.redo", None, redo_start, self.env.now)
        self.restarts.append(stats)
        system.metrics.record_crash(downtime, stats, outage_open=False)
