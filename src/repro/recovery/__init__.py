"""Simulated crash-recovery & availability subsystem (§4.4, [HR83]).

The paper argues nonvolatile extended storage pays off twice: in
normal-operation throughput *and* in recovery.  This package makes the
second half first-class simulation instead of a disconnected analytic
side-note: crashes, fuzzy checkpoints and restarts are events on the
same kernel, and restart I/O goes through the same device registry as
everything else (disk / SSD / NVEM / flash / battery-DRAM).

Components (all default-off; ``RecoveryConfig.enabled`` opts in):

* :class:`~repro.recovery.tracker.RecoveryTracker` — dirty page table +
  log-sequence tracking, fed by hooks in the buffer manager's
  write/log paths.
* :class:`~repro.recovery.checkpoint.Checkpointer` — interval-driven
  fuzzy checkpoints through the real log device, with background
  destage of the dirty page table.
* :class:`~repro.recovery.crash.CrashController` /
  :class:`~repro.recovery.crash.RestartReplayer` — deterministic fault
  injection, volatile-state loss, and a restart phase (log scan +
  redo reads/writes) replayed against the configured devices.
* :func:`~repro.recovery.analytic.matched_recovery_model` — derives the
  parameters of :class:`repro.analysis.recovery.RecoveryModel` from a
  ``SystemConfig`` so simulation and analysis can be cross-validated
  on matched configurations.

:class:`RecoveryManager` wires all of it onto a
:class:`~repro.core.model.TransactionSystem`.
"""

from __future__ import annotations

from repro.recovery.analytic import matched_recovery_model, page_time_estimates
from repro.recovery.checkpoint import Checkpointer
from repro.recovery.crash import (
    CrashController,
    RedoGate,
    RestartReplayer,
    RestartStats,
)
from repro.recovery.media import (
    MediaManager,
    MediaRecoverer,
    MediaRecoveryStats,
    MediaTracker,
)
from repro.recovery.tracker import CrashSnapshot, RecoveryTracker

__all__ = [
    "Checkpointer",
    "CrashController",
    "CrashSnapshot",
    "MediaManager",
    "MediaRecoverer",
    "MediaRecoveryStats",
    "MediaTracker",
    "RecoveryManager",
    "RecoveryTracker",
    "RedoGate",
    "RestartReplayer",
    "RestartStats",
    "matched_recovery_model",
    "page_time_estimates",
]


class RecoveryManager:
    """Installs and starts the recovery components for one system."""

    def __init__(self, system):
        self.system = system
        self.tracker = RecoveryTracker(
            now=lambda: system.env.now,
            log_tail=lambda: system.storage.log_page_count,
        )
        self.checkpointer = Checkpointer(system, self.tracker)
        self.crash_controller = CrashController(
            system, self.tracker, checkpointer=self.checkpointer)
        # Hook the buffer manager's dirty/clean transitions and tell the
        # metrics collector to report availability counters.
        system.bm.recovery_tracker = self.tracker
        system.metrics.recovery_enabled = True
        if system.config.recovery.online_redo:
            # Online redo runs degraded windows even without media
            # faults; make finalize emit the degraded block.
            system.metrics.media_enabled = True
        self._started = False

    def start(self) -> None:
        """Spawn the checkpointer and fault-injector processes."""
        if self._started:
            return
        self._started = True
        self.checkpointer.start()
        self.crash_controller.start()
