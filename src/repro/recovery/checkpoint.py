"""The fuzzy checkpointer: periodic checkpoint records + background flush.

NOFORCE needs "special checkpointing techniques" (§4.4) to bound redo
work after a crash.  :class:`Checkpointer` implements the classic fuzzy
scheme: every ``checkpoint_interval`` simulated seconds it

1. writes one checkpoint record through the *real* configured log
   device (NVEM, SSD, cached or plain disk — the same path transaction
   commits use), recording the resulting log page number as the
   checkpoint LSN a restart scans from; and
2. starts destaging the dirty page table in the background: a small
   pool of flush processes writes the snapshot's still-dirty pages to
   their non-volatile homes through the buffer manager's ordinary
   write-back path, charging real CPU and device time.

The checkpoint is *fuzzy*: transaction processing never stops, and a
page re-dirtied between snapshot and flush simply stays in the DPT for
the next round.  Under FORCE the DPT holds only in-flight transactions'
pages, so checkpoints are cheap and restart stays flat regardless of
the interval — the asymmetry §4.4 argues from.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from repro.recovery.tracker import RecoveryTracker
from repro.sim import Interrupt

__all__ = ["Checkpointer"]

#: Background flush processes per checkpoint.  Sized so destage keeps
#: up with the Debit-Credit dirty-page production rate on Table 4.1
#: disks; the flush is bandwidth, not a tuning knob of the paper.
FLUSH_WORKERS = 8


class Checkpointer:
    """Interval-driven fuzzy checkpoints for one computing module."""

    def __init__(self, system, tracker: RecoveryTracker):
        self.system = system
        self.env = system.env
        self.tracker = tracker
        self.interval = system.config.recovery.checkpoint_interval
        self.flush = system.config.recovery.checkpoint_flush
        self._ticker = None
        #: True while the ticker is inside _checkpoint (record write).
        self._in_checkpoint = False
        #: Live flush-worker processes, so a crash can kill them.
        self._flush_procs: list = []

    def start(self) -> None:
        self._ticker = self.env.process(self._run())

    def on_crash(self) -> None:
        """The CM failed: any checkpoint work in flight dies with it.

        A checkpoint record mid-write must not complete during the
        outage (it would advance the checkpoint LSN from a dead CM and
        contend with the restart replay), and flush workers stop — the
        buffer they were destaging no longer exists.
        """
        if self._in_checkpoint and self._ticker is not None and \
                not self._ticker.triggered:
            self._ticker.interrupt("crash")
        for proc in self._flush_procs:
            if not proc.triggered:
                proc.interrupt("crash")
        self._flush_procs.clear()

    # -- internals -------------------------------------------------------
    def _run(self) -> Generator:
        while True:
            yield self.env.timeout(self.interval)
            if not self.system.tm.is_online:
                # The CM is down: a crashed module takes no checkpoints,
                # and the record would otherwise interleave with (and
                # inflate) the single-threaded restart replay.  The
                # next on-schedule tick checkpoints as usual.
                continue
            self._in_checkpoint = True
            try:
                yield from self._checkpoint()
            except Interrupt:
                # Crash mid-checkpoint: the record never completed; the
                # ticker resumes its cadence after the restart.
                pass
            finally:
                self._in_checkpoint = False

    def _checkpoint(self) -> Generator:
        """Write the checkpoint record; kick off the background flush."""
        bm = self.system.bm
        lsn = yield from bm.write_checkpoint_record()
        self.tracker.complete_checkpoint(lsn, self.env.now)
        self.system.metrics.record_checkpoint()
        if not self.flush:
            return
        candidates = self.tracker.flush_candidates()
        if not candidates:
            return
        # Workers from a previous round may still be draining (interval
        # shorter than the destage time): keep their handles so a crash
        # interrupts them too, and only prune the finished ones.
        self._flush_procs = [p for p in self._flush_procs
                             if not p.triggered]
        self._flush_procs.extend(
            self.env.process(
                self._flush_worker(candidates[worker::FLUSH_WORKERS])
            )
            for worker in range(min(FLUSH_WORKERS, len(candidates)))
        )

    def _flush_worker(self, keys: List[Tuple[int, int]]) -> Generator:
        """Destage one stripe of the checkpoint's DPT snapshot."""
        bm = self.system.bm
        try:
            for key in keys:
                entry = bm.mm.peek(key)
                if entry is None or not entry.dirty:
                    # Propagated since the snapshot (replacement, write
                    # buffer) or lost to a crash — nothing to destage.
                    continue
                part = bm.partitions[key[0]]
                yield from bm._write_back(None, key, part,
                                          replacement=False)
                self.system.metrics.record_io("checkpoint_flush")
        except Interrupt:
            return
