"""Bridge between the simulated restart and the analytic RecoveryModel.

:mod:`repro.analysis.recovery` predicts restart times from per-page
device access times; the simulation replays the same recovery through
queueing device models.  This module derives the analytic model's
parameters *from a SystemConfig*, so the two can be compared on matched
configurations (the ``repro recovery`` CLI command and the
cross-validation tests do exactly that).

The derived per-page times are the uncontended service times of the
configured devices plus the CPU overhead the restart replayer charges —
the restart is single-threaded, so queueing delays are absent and the
analytic estimate should agree closely wherever the workload-side
parameters (update rate, pages modified, propagated fraction) match.
"""

from __future__ import annotations

import inspect
from typing import Tuple

from repro.analysis.recovery import RecoveryModel
from repro.core.config import (
    DiskUnitType,
    MEMORY,
    NVEM,
    SystemConfig,
)
from repro.storage.device import BatteryDRAMDevice, FlashSSDDevice

__all__ = ["matched_recovery_model", "page_time_estimates"]


def _ctor_defaults(cls, names):
    """Constructor defaults of a device class, so the analytic bridge
    can never drift from the simulated devices' parameters."""
    params = inspect.signature(cls.__init__).parameters
    return {name: params[name].default for name in names}


_FLASH_DEFAULTS = _ctor_defaults(
    FlashSSDDevice,
    ("controller_delay", "trans_delay", "read_delay", "write_delay"),
)
_BBDRAM_DEFAULTS = _ctor_defaults(
    BatteryDRAMDevice,
    ("controller_delay", "trans_delay", "access_delay"),
)


def _device_times(config: SystemConfig, name: str) -> Tuple[float, float]:
    """Uncontended (read, write) service time of device ``name``."""
    for unit in config.disk_units:
        if unit.name == name:
            base = unit.controller_delay + unit.trans_delay
            if unit.unit_type is not DiskUnitType.SSD:
                base += unit.disk_delay
            return base, base
    for spec in config.devices:
        if spec.name == name:
            if spec.kind == "flash_ssd":
                p = {**_FLASH_DEFAULTS, **spec.params}
                base = p["controller_delay"] + p["trans_delay"]
                return base + p["read_delay"], base + p["write_delay"]
            if spec.kind == "battery_dram":
                p = {**_BBDRAM_DEFAULTS, **spec.params}
                base = (p["controller_delay"] + p["trans_delay"]
                        + p["access_delay"])
                return base, base
            raise ValueError(
                f"no analytic service-time model for device kind "
                f"{spec.kind!r} (device {name!r})"
            )
    raise KeyError(f"unknown device {name!r}")


def _target_times(config: SystemConfig, target: str,
                  io_cpu: float, nvem_cpu: float) -> Tuple[float, float]:
    """Per-page (read, write) time of an allocation target, CPU included."""
    if target == MEMORY:
        return 0.0, 0.0
    if target == NVEM:
        per_page = config.nvem.delay + nvem_cpu
        return per_page, per_page
    read, write = _device_times(config, target)
    return read + io_cpu, write + io_cpu


def page_time_estimates(config: SystemConfig
                        ) -> Tuple[float, float, float]:
    """(log read, db read, db write) per-page times for ``config``.

    The database times are taken from the first partition's allocation
    target (the Debit-Credit experiments place ACCOUNT and HISTORY on
    the same unit); the log time from the log allocation.
    """
    cm = config.cm
    io_cpu = cm.cpu_seconds(cm.instr_io)
    nvem_cpu = cm.cpu_seconds(cm.instr_nvem)
    log_read, _ = _target_times(config, config.log.device, io_cpu,
                                nvem_cpu)
    if not config.partitions:
        raise ValueError("config has no partitions")
    db_read, db_write = _target_times(config,
                                      config.partitions[0].allocation,
                                      io_cpu, nvem_cpu)
    redo_cpu = cm.cpu_seconds(config.recovery.redo_instr)
    return log_read, db_read + redo_cpu, db_write


def matched_recovery_model(config: SystemConfig, update_tps: float,
                           **overrides) -> RecoveryModel:
    """Analytic :class:`RecoveryModel` matching ``config``'s devices.

    Device per-page times (including the replayer's CPU charges) and
    the checkpoint interval come from the config; workload-side
    parameters (``pages_modified_per_tx``,
    ``already_propagated_fraction``, ...) keep the analytic defaults
    unless overridden.
    """
    log_read, db_read, db_write = page_time_estimates(config)
    params = dict(
        update_tps=update_tps,
        checkpoint_interval=config.recovery.checkpoint_interval,
        log_page_read_time=log_read,
        db_page_read_time=db_read,
        db_page_write_time=db_write,
    )
    params.update(overrides)
    return RecoveryModel(**params)
