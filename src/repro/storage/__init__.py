"""External storage devices of the extended storage hierarchy (§2–3.3).

Sub-modules:

* :mod:`repro.storage.registry` — name-based device & policy registries.
* :mod:`repro.storage.lru` — the LRU mechanism shared by all cache levels.
* :mod:`repro.storage.policies` — the :class:`ReplacementPolicy`
  abstraction plus CLOCK and 2Q implementations.
* :mod:`repro.storage.cache` — disk-cache policies (volatile,
  non-volatile, write-buffer-only).
* :mod:`repro.storage.device` — the :class:`StorageDevice` protocol and
  the semiconductor device models (flash SSD, battery-backed DRAM).
* :mod:`repro.storage.disk` — disk units (regular / cached / SSD).
* :mod:`repro.storage.nvem` — the non-volatile extended memory device.
* :mod:`repro.storage.hierarchy` — registry-driven device wiring +
  allocation resolution.

Importing this package registers every built-in device kind and
replacement policy (see :mod:`repro.storage.registry`).
"""

from repro.storage.registry import (
    device_kinds,
    make_device,
    make_policy,
    policy_kinds,
    register_device,
    register_policy,
)
from repro.storage.lru import LRUCache, LRUEntry
from repro.storage.policies import (
    ClockPolicy,
    ReplacementPolicy,
    TwoQPolicy,
)
from repro.storage.cache import (
    CacheDecision,
    NonVolatileCachePolicy,
    VolatileCachePolicy,
    WriteBufferPolicy,
    make_cache_policy,
)
from repro.storage.device import (
    BatteryDRAMDevice,
    FlashSSDDevice,
    IOResult,
    StorageDevice,
)
from repro.storage.disk import DiskUnit
from repro.storage.nvem import NVEMDevice
from repro.storage.hierarchy import StorageSubsystem

__all__ = [
    "BatteryDRAMDevice",
    "CacheDecision",
    "ClockPolicy",
    "DiskUnit",
    "FlashSSDDevice",
    "IOResult",
    "LRUCache",
    "LRUEntry",
    "NVEMDevice",
    "NonVolatileCachePolicy",
    "ReplacementPolicy",
    "StorageDevice",
    "StorageSubsystem",
    "TwoQPolicy",
    "VolatileCachePolicy",
    "WriteBufferPolicy",
    "device_kinds",
    "make_cache_policy",
    "make_device",
    "make_policy",
    "policy_kinds",
    "register_device",
    "register_policy",
]
