"""External storage devices of the extended storage hierarchy (§2–3.3).

Sub-modules:

* :mod:`repro.storage.lru` — the LRU mechanism shared by all cache levels.
* :mod:`repro.storage.cache` — disk-cache policies (volatile,
  non-volatile, write-buffer-only).
* :mod:`repro.storage.disk` — disk units (regular / cached / SSD).
* :mod:`repro.storage.nvem` — the non-volatile extended memory device.
* :mod:`repro.storage.hierarchy` — device wiring + allocation resolution.
"""

from repro.storage.cache import (
    CacheDecision,
    NonVolatileCachePolicy,
    VolatileCachePolicy,
    WriteBufferPolicy,
    make_cache_policy,
)
from repro.storage.disk import DiskUnit, IOResult
from repro.storage.hierarchy import StorageSubsystem
from repro.storage.lru import LRUCache, LRUEntry
from repro.storage.nvem import NVEMDevice

__all__ = [
    "CacheDecision",
    "DiskUnit",
    "IOResult",
    "LRUCache",
    "LRUEntry",
    "NVEMDevice",
    "NonVolatileCachePolicy",
    "StorageSubsystem",
    "VolatileCachePolicy",
    "WriteBufferPolicy",
    "make_cache_policy",
]
