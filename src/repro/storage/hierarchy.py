"""Storage-hierarchy wiring: devices + partition/log allocation (Fig. 3.2).

:class:`StorageSubsystem` resolves every device of a
:class:`~repro.core.config.SystemConfig` through the device registry —
it holds no knowledge of concrete device classes — and resolves, per
partition, where its permanent pages live.  The buffer manager asks it
three questions:

* *Where is partition P?*  (memory-resident / NVEM-resident / unit U)
* *Read or write page X of P on its home device.*
* *Read or write the log.*

The software-managed intermediate levels (NVEM database cache, NVEM
write buffer) are the buffer manager's business (§3.2); the hierarchy
only covers the devices themselves, including the controller-managed
disk caches that are transparent to the DBMS (§3.3).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.core.config import (
    MEMORY,
    NVEM,
    DeviceSpec,
    SystemConfig,
)
from repro.sim import Environment, RandomStreams
from repro.storage.device import StorageDevice
from repro.storage.faults import DeviceFaultGate, MediaState, NVEMFaultGate
from repro.storage.registry import make_device

__all__ = ["StorageSubsystem"]

#: Synthetic latency result for memory-resident partitions.
LEVEL_MEMORY = "memory"
LEVEL_NVEM = "nvem"


class StorageSubsystem:
    """All external devices of one simulated transaction system."""

    def __init__(self, env: Environment, streams: RandomStreams,
                 config: SystemConfig):
        self.env = env
        self.config = config
        self.nvem_device = make_device(config.nvem_spec(), env, streams)
        self.units: Dict[str, StorageDevice] = {
            spec.name: make_device(spec, env, streams)
            for spec in config.device_specs()
        }
        #: Media-fault state and archive device (None when media is off).
        self.media_state: Optional[MediaState] = None
        self.archive_device: Optional[StorageDevice] = None
        #: Written-page tracker for archive-based media recovery, attached
        #: by the MediaManager (stays None otherwise).
        self.media_tracker = None
        if config.media.enabled:
            self.media_state = MediaState(env, config.media)
            # Gate only the devices the fault schedule names: every other
            # device keeps its raw object, so an empty schedule leaves
            # the run bit-identical to a media-disabled build.
            for name in list(self.units):
                if self.media_state.is_faulted(name):
                    self.units[name] = DeviceFaultGate(
                        self.units[name], self.media_state)
            if self.media_state.is_faulted(NVEM):
                self.nvem_device = NVEMFaultGate(
                    self.nvem_device, self.media_state)
            # The archive device exists only when a loss is actually
            # scheduled (or a spec explicitly given): an empty schedule
            # then differs from a media-disabled run by nothing at all.
            spec = config.media.archive_device
            if spec is None and any(fault.kind == "loss"
                                    for fault in config.media.faults):
                spec = DeviceSpec(
                    kind="regular", name="archive0",
                    params={"num_controllers": 2, "num_disks": 8,
                            "disk_delay": 0.005})
            if spec is not None:
                self.archive_device = make_device(spec, env, streams)
        #: partition name -> allocation target string
        self._alloc: Dict[str, str] = {
            part.name: part.allocation for part in config.partitions
        }
        # Residency is fixed at construction time, so the per-reference
        # queries below are set membership tests, not string compares.
        self._memory_resident = frozenset(
            name for name, target in self._alloc.items() if target == MEMORY
        )
        self._nvem_resident = frozenset(
            name for name, target in self._alloc.items() if target == NVEM
        )
        self._log_target = config.log.device
        #: Monotonic page number for the sequential log file.
        self._log_page = 0

    # -- allocation queries ------------------------------------------------
    def allocation_of(self, partition: str) -> str:
        return self._alloc[partition]

    def is_memory_resident(self, partition: str) -> bool:
        return partition in self._memory_resident

    def is_nvem_resident(self, partition: str) -> bool:
        return partition in self._nvem_resident

    def unit_of(self, partition: str) -> Optional[StorageDevice]:
        target = self._alloc[partition]
        if target in (MEMORY, NVEM):
            return None
        return self.units[target]

    @property
    def log_on_nvem(self) -> bool:
        return self._log_target == NVEM

    @property
    def log_unit(self) -> Optional[StorageDevice]:
        if self._log_target == NVEM:
            return None
        return self.units[self._log_target]

    def next_log_page(self) -> int:
        """Allocate the next page of the sequential log file."""
        self._log_page += 1
        return self._log_page

    @property
    def log_page_count(self) -> int:
        """Highest log page number written so far (the log tail LSN)."""
        return self._log_page

    # -- device access ------------------------------------------------------
    def read_page(self, partition_index: int, partition: str,
                  page_no: int) -> Generator:
        """Read a page from the partition's home device.

        Memory- and NVEM-resident partitions are handled by the buffer
        manager before this point; calling this for them is a logic
        error, guarded here to fail fast.
        """
        unit = self.unit_of(partition)
        if unit is None:
            raise RuntimeError(
                f"read_page called for resident partition {partition!r}"
            )
        result = yield from unit.read((partition_index, page_no))
        return result

    def write_page(self, partition_index: int, partition: str,
                   page_no: int) -> Generator:
        unit = self.unit_of(partition)
        if unit is None:
            raise RuntimeError(
                f"write_page called for resident partition {partition!r}"
            )
        if self.media_tracker is not None:
            self.media_tracker.note_write(
                self._alloc[partition], (partition_index, page_no))
        result = yield from unit.write((partition_index, page_no))
        return result

    def inner_unit(self, name: str) -> StorageDevice:
        """The raw device behind ``name``, bypassing any fault gate (the
        media recoverer writes restored pages through this)."""
        unit = self.units[name]
        return getattr(unit, "inner", unit)

    @property
    def inner_nvem(self):
        """The raw NVEM device, bypassing any fault gate."""
        return getattr(self.nvem_device, "inner", self.nvem_device)

    def write_log_to_unit(self, page_no: int) -> Generator:
        """Write one log page to the log's disk unit."""
        unit = self.log_unit
        if unit is None:
            raise RuntimeError("log is NVEM-resident; no unit write")
        # Partition index -1 identifies the log file in page keys.
        result = yield from unit.write((-1, page_no))
        return result

    def read_log_from_unit(self, page_no: int) -> Generator:
        """Read one log page back (the restart replayer's log scan)."""
        unit = self.log_unit
        if unit is None:
            raise RuntimeError("log is NVEM-resident; no unit read")
        result = yield from unit.read((-1, page_no))
        return result

    # -- statistics ------------------------------------------------------
    def reset_stats(self) -> None:
        self.nvem_device.reset_stats()
        for unit in self.units.values():
            unit.reset_stats()
        if self.archive_device is not None:
            self.archive_device.reset_stats()

    def utilization_report(self) -> Dict[str, Dict[str, float]]:
        report: Dict[str, Dict[str, float]] = {
            "nvem": self.nvem_device.utilization_report(),
        }
        for name, unit in self.units.items():
            report[name] = unit.utilization_report()
        if self.archive_device is not None:
            report[self.archive_device.name] = \
                self.archive_device.utilization_report()
        return report
