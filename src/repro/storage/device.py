"""The storage-device protocol and the semiconductor device models.

Everything behind the channel-oriented device interface of §3.3 — plain
disks, cached disks, SSDs, and the device models added beyond the
paper's menu — implements :class:`StorageDevice`: page-keyed ``read`` /
``write`` generators returning an :class:`IOResult`, plus statistics
hooks.  :class:`~repro.storage.hierarchy.StorageSubsystem` only ever
talks to this interface; concrete classes are resolved by kind through
:mod:`repro.storage.registry`.

Two device models extend the paper's menu:

* :class:`FlashSSDDevice` — a flash solid-state disk with *asymmetric*
  read/write latency (page reads are fast; programs are several times
  slower) and a fixed number of flash channels serving pages FIFO.
  The paper's "SSD" is DRAM-based (symmetric, controller-bound); flash
  is what replaced it, and the asymmetry shifts the FORCE/NOFORCE
  trade-off noticeably.
* :class:`BatteryDRAMDevice` — battery-backed DRAM behind the disk
  interface: symmetric accesses at near-memory speed, bounded only by
  the controller pool.  This models the "non-volatile semiconductor
  store as a disk" end point of §2's cost spectrum.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Generator, Hashable

from repro.sim import Environment, RandomStreams, Resource
from repro.sim.stats import CategoryCounter
from repro.storage.registry import register_device

__all__ = [
    "BatteryDRAMDevice",
    "FlashSSDDevice",
    "IOResult",
    "StorageDevice",
]

#: Service levels reported back to the buffer manager for statistics.
LEVEL_CACHE = "disk_cache"
LEVEL_DISK = "disk"
LEVEL_SSD = "ssd"
LEVEL_FLASH = "flash"
LEVEL_BATTERY_DRAM = "battery_dram"


class IOResult:
    """Outcome of one I/O against a storage device."""

    __slots__ = ("level", "latency")

    def __init__(self, level: str, latency: float):
        #: Where the I/O was satisfied ("disk", "disk_cache", "ssd", ...).
        self.level = level
        #: Elapsed simulated time for the synchronous part of the I/O.
        self.latency = latency


class StorageDevice(ABC):
    """Anything behind the disk interface of the storage hierarchy."""

    name: str
    #: Controller-managed cache policy, when the device has one (the
    #: buffer manager's prewarm path probes this on every device).
    cache = None

    @abstractmethod
    def read(self, key: Hashable) -> Generator:
        """Read one page; returns an :class:`IOResult`."""

    @abstractmethod
    def write(self, key: Hashable) -> Generator:
        """Write one page; returns an :class:`IOResult`."""

    @abstractmethod
    def reset_stats(self) -> None: ...

    @abstractmethod
    def utilization_report(self) -> Dict[str, float]:
        """Per-server-pool utilizations for the experiment reports."""


class _SemiconductorDevice(StorageDevice):
    """Shared plumbing: a controller pool plus a transmission delay."""

    def __init__(self, env: Environment, streams: RandomStreams, name: str,
                 num_controllers: int, controller_delay: float,
                 trans_delay: float):
        if num_controllers < 1:
            raise ValueError(f"device {name}: num_controllers must be >= 1")
        if controller_delay < 0 or trans_delay < 0:
            raise ValueError(f"device {name}: negative delay")
        self.env = env
        self.name = name
        self._streams = streams
        self.controller_delay = controller_delay
        self.trans_delay = trans_delay
        self.controllers = Resource(env, num_controllers,
                                    name=f"{name}.ctrl")
        self.stats = CategoryCounter()

    def _controller_service(self) -> Generator:
        yield self.controllers.serve_event(lambda: self.controller_delay)

    def _transmission(self) -> Generator:
        if self.trans_delay > 0:
            yield self.env.timeout(self.trans_delay)

    def controller_utilization(self) -> float:
        return self.controllers.monitor.utilization(self.controllers.capacity)

    def reset_stats(self) -> None:
        self.stats.reset()
        self.controllers.monitor.reset()

    def utilization_report(self) -> Dict[str, float]:
        return {"controllers": self.controller_utilization()}


class FlashSSDDevice(_SemiconductorDevice):
    """Flash SSD: asymmetric page read/program times, FIFO channels.

    Default service times model a period-appropriate NAND device: a
    0.1 ms page read and a 0.5 ms page program behind 8 independent
    channels (pages striped by page number), with the same 1 ms
    controller / 0.4 ms transmission costs as the paper's disk units.
    """

    def __init__(self, env: Environment, streams: RandomStreams,
                 name: str = "flash0", num_controllers: int = 4,
                 controller_delay: float = 0.001,
                 trans_delay: float = 0.0004, num_channels: int = 8,
                 read_delay: float = 0.0001, write_delay: float = 0.0005):
        super().__init__(env, streams, name, num_controllers,
                         controller_delay, trans_delay)
        if num_channels < 1:
            raise ValueError(f"device {name}: num_channels must be >= 1")
        if read_delay < 0 or write_delay < 0:
            raise ValueError(f"device {name}: negative flash delay")
        self.read_delay = read_delay
        self.write_delay = write_delay
        self.channels = [
            Resource(env, 1, name=f"{name}.chan{i}")
            for i in range(num_channels)
        ]

    def _channel_for(self, key: Hashable) -> Resource:
        page_no = key[-1] if isinstance(key, tuple) else key
        return self.channels[int(page_no) % len(self.channels)]

    def _channel_service(self, key: Hashable, delay: float) -> Generator:
        yield self._channel_for(key).serve_event(lambda: delay)

    def read(self, key: Hashable) -> Generator:
        start = self.env.now
        self.stats.add("read")
        yield from self._controller_service()
        yield from self._channel_service(key, self.read_delay)
        yield from self._transmission()
        return IOResult(LEVEL_FLASH, self.env.now - start)

    def write(self, key: Hashable) -> Generator:
        start = self.env.now
        self.stats.add("write")
        yield from self._controller_service()
        yield from self._transmission()
        yield from self._channel_service(key, self.write_delay)
        return IOResult(LEVEL_FLASH, self.env.now - start)

    def mean_channel_utilization(self) -> float:
        total = sum(c.monitor.utilization(1) for c in self.channels)
        return total / len(self.channels)

    def reset_stats(self) -> None:
        super().reset_stats()
        for channel in self.channels:
            channel.monitor.reset()

    def utilization_report(self) -> Dict[str, float]:
        return {
            "controllers": self.controller_utilization(),
            "channels": self.mean_channel_utilization(),
        }


class BatteryDRAMDevice(_SemiconductorDevice):
    """Battery-backed DRAM behind the disk interface.

    Accesses are symmetric and near-instant (default 20 µs per page);
    throughput is bounded by the controller pool, like the paper's
    DRAM-based SSD but an order of magnitude faster per page.
    """

    def __init__(self, env: Environment, streams: RandomStreams,
                 name: str = "bbdram0", num_controllers: int = 4,
                 controller_delay: float = 0.0002,
                 trans_delay: float = 0.0004, access_delay: float = 0.00002):
        super().__init__(env, streams, name, num_controllers,
                         controller_delay, trans_delay)
        if access_delay < 0:
            raise ValueError(f"device {name}: negative access delay")
        self.access_delay = access_delay

    def _access(self, kind: str) -> Generator:
        start = self.env.now
        self.stats.add(kind)
        yield from self._controller_service()
        if self.access_delay > 0:
            yield self.env.timeout(self.access_delay)
        yield from self._transmission()
        return IOResult(LEVEL_BATTERY_DRAM, self.env.now - start)

    def read(self, key: Hashable) -> Generator:
        result = yield from self._access("read")
        return result

    def write(self, key: Hashable) -> Generator:
        result = yield from self._access("write")
        return result


@register_device("flash_ssd")
def _make_flash_ssd(env, streams, spec) -> FlashSSDDevice:
    return FlashSSDDevice(env, streams, name=spec.name, **spec.params)


@register_device("battery_dram")
def _make_battery_dram(env, streams, spec) -> BatteryDRAMDevice:
    return BatteryDRAMDevice(env, streams, name=spec.name, **spec.params)
