"""Device-level media-fault injection (§4.4's media half).

Two deterministic fault kinds are scheduled per device through
:class:`~repro.core.config.MediaConfig`:

* **transient** — for a configured window the device returns I/O
  errors; the access path survives them with a deterministic
  retry/backoff loop (detection latency + exponential backoff, no RNG,
  no attempt cap: the window is finite, so retries always converge).
* **loss** — at an instant the device's media is gone.  Accesses block
  per page until the :class:`~repro.recovery.media.MediaRecoverer`
  rebuilds that page from the archive copy (plus a log scan for pages
  written since the archive horizon) through the real device registry.

The gates are installed by :class:`~repro.storage.hierarchy.
StorageSubsystem` **only around devices named in the fault schedule**;
every other device keeps its raw object.  On the success path a gated
access is a plain delegation — no extra events, no RNG draws — so a
media-enabled run with an empty schedule is bit-identical to a run
without the subsystem (property-tested).
"""

from __future__ import annotations

from typing import Dict, Generator, Hashable, Optional, Set, Tuple

from repro.core.config import MediaConfig
from repro.sim import Environment
from repro.sim.core import Event
from repro.storage.device import StorageDevice

__all__ = [
    "DeviceFaultGate",
    "MediaState",
    "MediaUnrecoverableError",
    "NVEMFaultGate",
]


class MediaUnrecoverableError(RuntimeError):
    """Media loss that no surviving copy can repair (e.g. an unmirrored
    log copy, or both copies of a mirrored log)."""


class MediaState:
    """Shared fault state: schedules, lost devices, restore progress.

    One instance per :class:`~repro.storage.hierarchy.StorageSubsystem`;
    the gates consult it on every access, the
    :class:`~repro.recovery.media.MediaManager` drives loss instants and
    restore progress through it.
    """

    def __init__(self, env: Environment, cfg: MediaConfig):
        self.env = env
        self.cfg = cfg
        #: device -> sorted transient windows [(start, end), ...]
        self._windows: Dict[str, Tuple[Tuple[float, float], ...]] = {}
        #: device -> first scheduled loss instant
        self.loss_times: Dict[str, float] = {}
        for fault in cfg.faults:
            if fault.kind == "transient":
                windows = list(self._windows.get(fault.device, ()))
                windows.append((fault.time, fault.time + fault.duration))
                windows.sort()
                self._windows[fault.device] = tuple(windows)
            elif fault.device not in self.loss_times:
                self.loss_times[fault.device] = fault.time
        #: devices whose media is currently gone
        self.lost: Set[str] = set()
        #: lost log copies of a mirrored NVEM log (0 = primary, 1 = mirror)
        self.lost_log_copies: Set[int] = set()
        #: device -> keys already brought current by an in-flight rebuild
        self.restoring: Dict[str, Set[Hashable]] = {}
        #: retry counters (total and per device)
        self.io_retries = 0
        self.retries_by_device: Dict[str, int] = {}
        #: metrics sink, attached by the model wiring (may stay None)
        self.metrics = None
        self._progress: Optional[Event] = None

    # -- schedule queries --------------------------------------------------
    def is_faulted(self, device: str) -> bool:
        """Does the schedule name this device at all (gate needed)?"""
        return device in self._windows or device in self.loss_times

    def windows_for(self, device: str) -> Tuple[Tuple[float, float], ...]:
        return self._windows.get(device, ())

    # -- availability ------------------------------------------------------
    def available(self, device: str, key: Hashable) -> bool:
        if device not in self.lost:
            return True
        restored = self.restoring.get(device)
        return restored is not None and key in restored

    def wait_available(self, device: str, key: Hashable) -> Generator:
        """Block until ``key`` on ``device`` is readable again."""
        while not self.available(device, key):
            event = self._progress
            if event is None:
                event = self._progress = Event(self.env)
            yield event

    def bump(self) -> None:
        """Wake every blocked access to re-check availability."""
        event = self._progress
        if event is not None:
            self._progress = None
            event.succeed()

    # -- fault lifecycle (driven by the MediaManager) ----------------------
    def mark_lost(self, device: str) -> None:
        self.lost.add(device)

    def begin_restore(self, device: str) -> Set[Hashable]:
        restored: Set[Hashable] = set()
        self.restoring[device] = restored
        return restored

    def page_restored(self, device: str, key: Hashable) -> None:
        self.restoring[device].add(key)
        self.bump()

    def finish_restore(self, device: str) -> None:
        self.lost.discard(device)
        self.restoring.pop(device, None)
        self.bump()

    # -- counters ----------------------------------------------------------
    def note_retry(self, device: str) -> None:
        self.io_retries += 1
        self.retries_by_device[device] = \
            self.retries_by_device.get(device, 0) + 1
        if self.metrics is not None:
            self.metrics.record_io_retry()


class _RetryMixin:
    """Deterministic retry/backoff against a transient-fault schedule."""

    env: Environment
    name: str
    _state: MediaState
    _windows: Tuple[Tuple[float, float], ...]

    def _transient_end(self) -> Optional[float]:
        now = self.env.now
        for start, end in self._windows:
            if start <= now < end:
                return end
            if now < start:
                return None
        return None

    def _admit(self, key: Hashable,
               block_on_loss: bool = True) -> Generator:
        """Wait out loss windows and retry through transient windows.

        ``block_on_loss=False`` skips the loss waits: used by the NVEM
        gate, whose accesses run with a CPU held — the loss wait happens
        CPU-free at the buffer manager instead (see ``loss_wait``).
        """
        state = self._state
        if block_on_loss and self.name in state.lost:
            yield from state.wait_available(self.name, key)
        if not self._windows or self._transient_end() is None:
            return
        cfg = state.cfg
        backoff = cfg.retry_backoff
        while True:
            # One failed attempt: pay the detection latency, back off,
            # try again.  All delays are fixed config values — the RNG
            # streams are never touched.
            if cfg.error_latency > 0:
                yield self.env.timeout(cfg.error_latency)
            yield self.env.timeout(backoff)
            state.note_retry(self.name)
            backoff = min(backoff * cfg.retry_backoff_factor,
                          cfg.retry_backoff_max)
            if block_on_loss and self.name in state.lost:
                yield from state.wait_available(self.name, key)
            if self._transient_end() is None:
                return


class DeviceFaultGate(_RetryMixin, StorageDevice):
    """Fault gate around one registered disk-interface device."""

    def __init__(self, inner: StorageDevice, state: MediaState):
        self.inner = inner
        self.name = inner.name
        self.env = inner.env
        self._state = state
        self._windows = state.windows_for(inner.name)

    @property
    def cache(self):
        return self.inner.cache

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    def loss_wait(self, key: Hashable) -> Generator:
        """CPU-free per-page loss wait for SYNC-mode callers, who would
        otherwise sit out the whole rebuild holding a CPU server."""
        if self.name in self._state.lost:
            yield from self._state.wait_available(self.name, key)

    def read(self, key: Hashable) -> Generator:
        yield from self._admit(key)
        result = yield from self.inner.read(key)
        return result

    def write(self, key: Hashable) -> Generator:
        yield from self._admit(key)
        result = yield from self.inner.write(key)
        return result

    def reset_stats(self) -> None:
        self.inner.reset_stats()

    def utilization_report(self) -> Dict[str, float]:
        return self.inner.utilization_report()


class NVEMFaultGate(_RetryMixin):
    """Fault gate around the NVEM device's ``access`` path.

    ``access`` carries no page key, so loss of the NVEM bank blocks
    database transfers coarsely until the rebuild completes.  Log
    transfers (``kind == "log"``) keep flowing: the two copies of an
    NVEM-resident log are separate logical fault targets
    (``"log:0"``/``"log:1"``) modelling independent banks, and their
    loss is handled at the log-write path itself.

    NVEM transfers run with a CPU held
    (:meth:`~repro.core.cpu.CPUPool.execute_with_sync_access`), so the
    loss block must NOT happen inside ``access`` — every blocked
    transfer would pin a CPU server for the whole rebuild and starve
    the rebuild's own CPU bursts into deadlock.  The buffer manager
    calls :meth:`loss_wait` CPU-free *before* acquiring the CPU;
    ``access`` itself only models the (short, finite) transient
    retries.  A transfer that passed the wait just before the loss
    instant completes against the bank — it was already queued there.
    """

    def __init__(self, inner, state: MediaState):
        self.inner = inner
        self.name = "nvem"
        self.env = inner.env
        self._state = state
        self._windows = state.windows_for("nvem")

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    def loss_wait(self, kind: str = "access") -> Generator:
        if kind != "log" and self.name in self._state.lost:
            yield from self._state.wait_available(self.name, None)

    def access(self, kind: str = "access") -> Generator:
        if kind != "log":
            yield from self._admit(None, block_on_loss=False)
        yield from self.inner.access(kind)
