"""Name-based registries for storage devices and replacement policies.

The paper evaluates a *menu* of extended storage architectures; growing
that menu must not require editing the wiring code.  Two registries make
the storage layer pluggable:

* the **device registry** maps a device *kind* (``"regular"``,
  ``"ssd"``, ``"nvem"``, ``"flash_ssd"``, ...) to a factory building the
  simulated device from a :class:`~repro.core.config.DeviceSpec`;
* the **policy registry** maps a replacement-policy kind (``"lru"``,
  ``"clock"``, ``"2q"``) to a factory building the eviction structure
  used by the buffer manager and the disk-cache policies.

Configuration objects (:mod:`repro.core.config`) stay pure data: they
carry ``(kind, params)`` specs and never import concrete device or
policy classes.  :class:`~repro.storage.hierarchy.StorageSubsystem`,
:class:`~repro.core.bm.BufferManager` and the disk-cache policies
resolve those specs here, so registering a new device or policy (see
``README.md``, *Architecture & extension points*) is one decorator —
no other module changes.

Built-in kinds register themselves when :mod:`repro.storage` is
imported (importing any ``repro.storage.*`` submodule triggers the
package ``__init__``, so registration is always complete before use).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

__all__ = [
    "Registry",
    "device_kinds",
    "make_device",
    "make_policy",
    "policy_kinds",
    "register_device",
    "register_policy",
]


class Registry:
    """A named factory table with decorator-style registration."""

    def __init__(self, label: str):
        self.label = label
        self._factories: Dict[str, Callable] = {}

    def register(self, kind: str, factory: Optional[Callable] = None):
        """Register ``factory`` under ``kind``; usable as a decorator.

        Re-registering a kind replaces the previous factory (so tests
        and user code can override built-ins).
        """
        if factory is None:
            def decorator(fn: Callable) -> Callable:
                self._factories[kind] = fn
                return fn
            return decorator
        self._factories[kind] = factory
        return factory

    def create(self, kind: str, *args, **kwargs):
        try:
            factory = self._factories[kind]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "<none>"
            raise KeyError(
                f"unknown {self.label} kind {kind!r}; registered: {known}"
            ) from None
        return factory(*args, **kwargs)

    def kinds(self) -> Iterable[str]:
        return sorted(self._factories)

    def __contains__(self, kind: str) -> bool:
        return kind in self._factories


#: Device kind -> factory(env, streams, spec) -> device instance.
DEVICE_REGISTRY = Registry("storage device")
#: Policy kind -> factory(capacity, **params) -> ReplacementPolicy.
POLICY_REGISTRY = Registry("replacement policy")


def register_device(kind: str, factory: Optional[Callable] = None):
    """Register a storage-device factory ``(env, streams, spec)``."""
    return DEVICE_REGISTRY.register(kind, factory)


def register_policy(kind: str, factory: Optional[Callable] = None):
    """Register a replacement-policy factory ``(capacity, **params)``."""
    return POLICY_REGISTRY.register(kind, factory)


def make_device(spec, env, streams):
    """Build the device described by a ``(kind, params)`` spec."""
    return DEVICE_REGISTRY.create(spec.kind, env, streams, spec)


def make_policy(spec, capacity: int):
    """Build a replacement policy from a spec, ``(kind, params)`` tuple
    or plain kind string."""
    if isinstance(spec, str):
        kind, params = spec, {}
    elif isinstance(spec, tuple):
        kind, params = spec
    else:  # PolicySpec or anything spec-shaped
        kind, params = spec.kind, spec.params
    return POLICY_REGISTRY.create(kind, capacity, **(params or {}))


def device_kinds() -> Iterable[str]:
    return DEVICE_REGISTRY.kinds()


def policy_kinds() -> Iterable[str]:
    return POLICY_REGISTRY.kinds()
