"""O(1) LRU structures shared by all caching levels.

The main-memory buffer, the NVEM cache and both kinds of disk caches are
LRU-managed (§3.2, §3.3).  :class:`LRUCache` provides the common
mechanism: a hash map into an intrusive doubly-linked list ordered from
most- to least-recently used, with per-entry ``dirty`` and ``fix_count``
bookkeeping so the buffer manager and disk-cache policies can express
their replacement rules ("least recently accessed unmodified page",
"LRU unfixed frame") as victim predicates.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator, Optional

__all__ = ["LRUCache", "LRUEntry"]


class LRUEntry:
    """One cached page; links are managed by the owning :class:`LRUCache`."""

    __slots__ = ("key", "dirty", "fix_count", "pending_write", "_prev", "_next")

    def __init__(self, key: Hashable):
        self.key = key
        self.dirty = False
        self.fix_count = 0
        #: Event for an in-flight asynchronous disk write, if any.
        self.pending_write = None
        self._prev: Optional["LRUEntry"] = None
        self._next: Optional["LRUEntry"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.dirty:
            flags.append("dirty")
        if self.fix_count:
            flags.append(f"fixed={self.fix_count}")
        return f"<LRUEntry {self.key!r} {' '.join(flags)}>"


class LRUCache:
    """Hash map + intrusive MRU->LRU list with victim selection.

    The cache never evicts on its own: callers check :meth:`is_full` and
    pick a victim explicitly, because every caching level in TPSIM has
    its own replacement constraints (write-backs, migration to the next
    level, unmodified-only victims, ...).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._map: dict = {}
        # Sentinel nodes: _head.next is MRU, _tail.prev is LRU.
        self._head = LRUEntry("__head__")
        self._tail = LRUEntry("__tail__")
        self._head._next = self._tail
        self._tail._prev = self._head

    # -- linked-list plumbing ---------------------------------------------
    def _unlink(self, entry: LRUEntry) -> None:
        entry._prev._next = entry._next
        entry._next._prev = entry._prev
        entry._prev = entry._next = None

    def _link_front(self, entry: LRUEntry) -> None:
        entry._next = self._head._next
        entry._prev = self._head
        self._head._next._prev = entry
        self._head._next = entry

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._map

    @property
    def is_full(self) -> bool:
        return len(self._map) >= self.capacity

    def peek(self, key: Hashable) -> Optional[LRUEntry]:
        """Look up without touching recency."""
        return self._map.get(key)

    def get(self, key: Hashable) -> Optional[LRUEntry]:
        """Look up and move to MRU position."""
        entry = self._map.get(key)
        if entry is not None:
            self._unlink(entry)
            self._link_front(entry)
        return entry

    def touch(self, entry: LRUEntry) -> None:
        """Move an entry to the MRU position."""
        self._unlink(entry)
        self._link_front(entry)

    # -- mutation ------------------------------------------------------------
    def insert(self, key: Hashable, dirty: bool = False) -> LRUEntry:
        """Insert a new page at the MRU position.

        The caller must have made room first; inserting beyond capacity
        or inserting a duplicate is a logic error in the caller.
        """
        if key in self._map:
            raise KeyError(f"page {key!r} already cached")
        if len(self._map) >= self.capacity:
            raise OverflowError(
                f"cache full ({self.capacity}); evict before inserting"
            )
        entry = LRUEntry(key)
        entry.dirty = dirty
        self._map[key] = entry
        self._link_front(entry)
        return entry

    def remove(self, key: Hashable) -> LRUEntry:
        """Remove and return the entry for ``key``."""
        entry = self._map.pop(key)
        self._unlink(entry)
        return entry

    def victim(
        self,
        predicate: Optional[Callable[[LRUEntry], bool]] = None,
    ) -> Optional[LRUEntry]:
        """The least recently used entry satisfying ``predicate``.

        With no predicate this is plain LRU.  The entry is *not*
        removed; callers decide what to do with it (write back, migrate,
        then :meth:`remove`).  Returns None when nothing qualifies.
        """
        entry = self._tail._prev
        while entry is not self._head:
            if predicate is None or predicate(entry):
                return entry
            entry = entry._prev
        return None

    # -- iteration ------------------------------------------------------------
    def items_mru_to_lru(self) -> Iterator[LRUEntry]:
        entry = self._head._next
        while entry is not self._tail:
            nxt = entry._next
            yield entry
            entry = nxt

    def items_lru_to_mru(self) -> Iterator[LRUEntry]:
        entry = self._tail._prev
        while entry is not self._head:
            prv = entry._prev
            yield entry
            entry = prv

    def keys(self) -> list:
        return list(self._map.keys())

    def clear(self) -> None:
        self._map.clear()
        self._head._next = self._tail
        self._tail._prev = self._head
