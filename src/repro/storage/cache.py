"""Disk-cache replacement policies (IBM 3990 style, §3.3).

The policies are pure state machines over an :class:`~repro.storage.lru.LRUCache`;
the owning :class:`~repro.storage.disk.DiskUnit` drives all timing.  Three
behaviours from the paper:

* **Volatile cache** — read hits avoid the disk; read misses allocate
  (plain LRU eviction); *every* write goes to disk; a write hit merely
  refreshes the cached copy, a write miss leaves the cache unchanged.
* **Non-volatile cache** — writes are satisfied in the cache whenever
  possible and the disk copy is updated asynchronously.  A write miss
  replaces the least recently used *unmodified* page; if every cached
  page still has its disk update outstanding, the write bypasses the
  cache and goes synchronously to disk.
* **Write-buffer only** — a non-volatile cache used purely to absorb
  writes (the paper's log-disk configuration): no read caching, no LRU;
  a write is absorbed while a buffer slot is free, i.e. while fewer
  than ``capacity`` disk updates are outstanding.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.sim.stats import CategoryCounter
from repro.storage.lru import LRUEntry
from repro.storage.policies import ReplacementPolicy  # registers built-ins
from repro.storage.registry import make_policy

__all__ = [
    "CacheDecision",
    "NonVolatileCachePolicy",
    "VolatileCachePolicy",
    "WriteBufferPolicy",
]


class CacheDecision:
    """Outcome of a cache lookup, telling the disk unit what to do."""

    __slots__ = ("hit", "needs_disk", "async_disk_write", "entry")

    def __init__(self, hit: bool, needs_disk: bool,
                 async_disk_write: bool = False,
                 entry: Optional[LRUEntry] = None):
        #: Page found in cache (read) or absorbed by cache (write).
        self.hit = hit
        #: The caller must perform a synchronous disk access.
        self.needs_disk = needs_disk
        #: The caller must start an asynchronous disk update.
        self.async_disk_write = async_disk_write
        #: Cache entry involved (for completion bookkeeping).
        self.entry = entry


class VolatileCachePolicy:
    """Read cache; write-through with no write-allocate.

    ``policy`` selects the replacement structure from the registry
    ("lru" matches the paper's IBM 3990 behaviour).
    """

    nonvolatile = False

    def __init__(self, capacity: int, policy="lru"):
        self.lru: ReplacementPolicy = make_policy(policy, capacity)
        self.stats = CategoryCounter()

    def on_read(self, key: Hashable) -> CacheDecision:
        entry = self.lru.get(key)
        if entry is not None:
            self.stats.add("read_hit")
            return CacheDecision(hit=True, needs_disk=False, entry=entry)
        self.stats.add("read_miss")
        return CacheDecision(hit=False, needs_disk=True)

    def on_read_fill(self, key: Hashable) -> None:
        """Install a page after a read miss (evicting plain LRU)."""
        if key in self.lru:
            return
        if self.lru.is_full:
            victim = self.lru.victim()
            self.lru.remove(victim.key)
            self.stats.add("evict")
        self.lru.insert(key)

    def on_write(self, key: Hashable) -> CacheDecision:
        entry = self.lru.get(key)
        if entry is not None:
            # Write hit: the cached copy is refreshed, LRU updated; the
            # disk access still happens (volatile = no write absorption).
            self.stats.add("write_hit")
        else:
            self.stats.add("write_miss")
        return CacheDecision(hit=False, needs_disk=True, entry=entry)

    def on_disk_write_complete(self, entry: Optional[LRUEntry]) -> None:
        """No-op: volatile caches hold no modified pages."""

    def __len__(self) -> int:
        return len(self.lru)


class NonVolatileCachePolicy:
    """Write-absorbing cache; disk updated asynchronously."""

    nonvolatile = True

    def __init__(self, capacity: int, policy="lru"):
        self.lru: ReplacementPolicy = make_policy(policy, capacity)
        self.stats = CategoryCounter()

    # -- reads -------------------------------------------------------------
    def on_read(self, key: Hashable) -> CacheDecision:
        entry = self.lru.get(key)
        if entry is not None:
            self.stats.add("read_hit")
            return CacheDecision(hit=True, needs_disk=False, entry=entry)
        self.stats.add("read_miss")
        return CacheDecision(hit=False, needs_disk=True)

    def on_read_fill(self, key: Hashable) -> None:
        """Install after a read miss; only clean pages may be evicted."""
        if key in self.lru:
            return
        if self.lru.is_full:
            victim = self.lru.victim(lambda e: not e.dirty)
            if victim is None:
                # Everything awaits its disk update: skip caching.
                self.stats.add("fill_skipped")
                return
            self.lru.remove(victim.key)
            self.stats.add("evict")
        self.lru.insert(key)

    # -- writes ------------------------------------------------------------
    def on_write(self, key: Hashable) -> CacheDecision:
        entry = self.lru.get(key)
        if entry is not None:
            self.stats.add("write_hit")
            if entry.dirty:
                # A disk update for this page is already on its way; the
                # cache absorbs the new version without a second update.
                return CacheDecision(hit=True, needs_disk=False,
                                     async_disk_write=False, entry=entry)
            entry.dirty = True
            return CacheDecision(hit=True, needs_disk=False,
                                 async_disk_write=True, entry=entry)

        # Write miss: take the least recently used unmodified page.
        if self.lru.is_full:
            victim = self.lru.victim(lambda e: not e.dirty)
            if victim is None:
                self.stats.add("write_bypass")
                return CacheDecision(hit=False, needs_disk=True)
            self.lru.remove(victim.key)
            self.stats.add("evict")
        self.stats.add("write_miss_allocated")
        entry = self.lru.insert(key, dirty=True)
        return CacheDecision(hit=True, needs_disk=False,
                             async_disk_write=True, entry=entry)

    def on_disk_write_complete(self, entry: Optional[LRUEntry]) -> None:
        """The disk copy is current: the page becomes replaceable."""
        if entry is None:
            return
        current = self.lru.peek(entry.key)
        if current is entry:
            entry.dirty = False

    def dirty_count(self) -> int:
        return sum(1 for e in self.lru.entries() if e.dirty)

    def __len__(self) -> int:
        return len(self.lru)


class WriteBufferPolicy:
    """Non-volatile cache used purely as a write buffer (log units)."""

    nonvolatile = True

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("write buffer needs capacity >= 1")
        self.capacity = capacity
        self.pending = 0
        self.stats = CategoryCounter()

    def on_read(self, key: Hashable) -> CacheDecision:
        # The buffer holds only in-flight writes; reads go to disk.
        self.stats.add("read_miss")
        return CacheDecision(hit=False, needs_disk=True)

    def on_read_fill(self, key: Hashable) -> None:
        """Write buffers do not cache reads."""

    def on_write(self, key: Hashable) -> CacheDecision:
        if self.pending < self.capacity:
            self.pending += 1
            self.stats.add("write_absorbed")
            return CacheDecision(hit=True, needs_disk=False,
                                 async_disk_write=True)
        # Buffer saturated: all slots hold pages whose disk update is
        # still queued (the Fig. 4.1 saturation regime).
        self.stats.add("write_bypass")
        return CacheDecision(hit=False, needs_disk=True)

    def on_disk_write_complete(self, entry: Optional[LRUEntry]) -> None:
        self.pending -= 1

    def __len__(self) -> int:
        return self.pending


def make_cache_policy(capacity: int, nonvolatile: bool,
                      write_buffer_only: bool,
                      policy="lru") -> "VolatileCachePolicy | NonVolatileCachePolicy | WriteBufferPolicy":
    """Factory used by :class:`repro.storage.disk.DiskUnit`.

    ``policy`` (a registry kind, ``(kind, params)`` tuple or
    :class:`~repro.core.config.PolicySpec`) selects the replacement
    structure of the caching variants; the write buffer holds no
    read-cached pages and ignores it.
    """
    if write_buffer_only:
        if not nonvolatile:
            raise ValueError("a write buffer must be non-volatile")
        return WriteBufferPolicy(capacity)
    if nonvolatile:
        return NonVolatileCachePolicy(capacity, policy=policy)
    return VolatileCachePolicy(capacity, policy=policy)
