"""Disk units: regular disks, cached disks and solid-state disks (§3.3).

A *disk unit* is anything behind the channel-oriented disk interface:

* ``REGULAR`` — controller + transmission + disk access for every I/O.
* ``VOLATILE_CACHE`` / ``NONVOLATILE_CACHE`` — a controller-managed
  cache (policies in :mod:`repro.storage.cache`) in front of the disks.
* ``SSD`` — all data in semiconductor memory: controller + transmission
  only.

Timing model (matching §4.1's "without queuing delays" arithmetic:
SSD/cache hit 1.4 ms = 1 ms controller + 0.4 ms transfer; disk
16.4 ms = + 15 ms disk access):

* The controller is a server pool (``NumControllers``) held for the
  controller service time; it disconnects during disk positioning.
* Each of the ``NumDisks`` disks is its own FIFO server; pages are
  spread uniformly by page number (striping, §3.3).
* Transmission is a pure delay (the paper assumes the channel subsystem
  is never the bottleneck).

Asynchronous cache-to-disk updates run as background processes inside
the unit (they model the disk controller's destage activity and consume
no host CPU).
"""

from __future__ import annotations

from typing import Dict, Generator, Hashable

from repro.core.config import DiskUnitConfig, DiskUnitType, Distribution
from repro.sim import Environment, RandomStreams, Resource
from repro.sim.core import Event
from repro.sim.stats import CategoryCounter
from repro.storage.cache import CacheDecision, make_cache_policy
from repro.storage.device import (
    IOResult,
    LEVEL_CACHE,
    LEVEL_DISK,
    LEVEL_SSD,
    StorageDevice,
)
from repro.storage.registry import register_device

__all__ = ["DiskUnit", "IOResult"]


class DiskUnit(StorageDevice):
    """One disk unit with its controllers, disks and optional cache."""

    def __init__(self, env: Environment, streams: RandomStreams,
                 config: DiskUnitConfig):
        config.validate()
        self.env = env
        self.config = config
        self.name = config.name
        self._streams = streams
        self.controllers = Resource(
            env, config.num_controllers, name=f"{config.name}.ctrl"
        )
        if config.unit_type == DiskUnitType.SSD:
            self.disks: list = []
        else:
            self.disks = [
                Resource(env, 1, name=f"{config.name}.disk{i}")
                for i in range(config.num_disks)
            ]
        if config.unit_type in (DiskUnitType.VOLATILE_CACHE,
                                DiskUnitType.NONVOLATILE_CACHE):
            self.cache = make_cache_policy(
                config.cache_size,
                nonvolatile=config.unit_type == DiskUnitType.NONVOLATILE_CACHE,
                write_buffer_only=config.write_buffer_only,
                policy=config.cache_policy,
            )
        else:
            self.cache = None
        self.stats = CategoryCounter()
        #: Completion events of in-flight asynchronous destage writes;
        #: exposed so tests and drain logic can wait for quiescence.
        self._inflight: set = set()

    # -- service-time draws --------------------------------------------------
    def _controller_time(self) -> float:
        if self.config.controller_distribution is Distribution.EXPONENTIAL:
            return self._streams.exponential(
                f"{self.name}-ctrl", self.config.controller_delay
            )
        return self.config.controller_delay

    def _disk_time(self) -> float:
        if self.config.disk_distribution is Distribution.EXPONENTIAL:
            return self._streams.exponential(
                f"{self.name}-disk", self.config.disk_delay
            )
        return self.config.disk_delay

    def _disk_for(self, key: Hashable) -> Resource:
        """Select the disk server for an I/O (see config.striping)."""
        if len(self.disks) == 1:
            return self.disks[0]
        if self.config.striping == "random":
            index = self._streams.uniform_int(
                f"{self.name}-stripe", 0, len(self.disks) - 1
            )
            return self.disks[index]
        if isinstance(key, tuple):
            page_no = key[-1]
        else:
            page_no = key
        return self.disks[int(page_no) % len(self.disks)]

    # -- primitive stages ------------------------------------------------------
    def _controller_service(self) -> Generator:
        yield self.controllers.serve_event(self._controller_time)

    def _disk_service(self, key: Hashable) -> Generator:
        # Note: striping may draw randomness, so the disk is selected
        # before queueing (as before); the service time is drawn after
        # the grant inside serve_event().
        yield self._disk_for(key).serve_event(self._disk_time)

    def _transmission(self) -> Generator:
        if self.config.trans_delay > 0:
            yield self.env.timeout(self.config.trans_delay)

    # -- background destage ------------------------------------------------------
    def _destage(self, key: Hashable, entry) -> Generator:
        """Asynchronous cache-to-disk update (controller destage)."""
        self.stats.add("destage_write")
        yield from self._disk_service(key)
        self.cache.on_disk_write_complete(entry)

    def _spawn_destage(self, key: Hashable, entry) -> Event:
        proc = self.env.process(self._destage(key, entry))
        self._inflight.add(proc)
        proc.callbacks.append(self._inflight.discard)
        return proc

    def pending_destages(self) -> int:
        return len(self._inflight)

    def drain(self) -> Generator:
        """Wait until all in-flight destage writes have completed."""
        while self._inflight:
            yield next(iter(self._inflight))

    # -- public I/O API ------------------------------------------------------
    def read(self, key: Hashable) -> Generator:
        """Read one page; returns an :class:`IOResult`."""
        start = self.env.now
        self.stats.add("read")
        if self.config.unit_type == DiskUnitType.SSD:
            yield from self._controller_service()
            yield from self._transmission()
            return IOResult(LEVEL_SSD, self.env.now - start)

        if self.cache is None:
            yield from self._controller_service()
            yield from self._disk_service(key)
            yield from self._transmission()
            return IOResult(LEVEL_DISK, self.env.now - start)

        decision: CacheDecision = self.cache.on_read(key)
        yield from self._controller_service()
        if decision.hit:
            yield from self._transmission()
            return IOResult(LEVEL_CACHE, self.env.now - start)
        yield from self._disk_service(key)
        self.cache.on_read_fill(key)
        yield from self._transmission()
        return IOResult(LEVEL_DISK, self.env.now - start)

    def write(self, key: Hashable) -> Generator:
        """Write one page; returns an :class:`IOResult`.

        For non-volatile caches the result reports ``disk_cache`` when
        the write was absorbed (the disk copy is updated asynchronously
        by a destage process).
        """
        start = self.env.now
        self.stats.add("write")
        if self.config.unit_type == DiskUnitType.SSD:
            yield from self._controller_service()
            yield from self._transmission()
            return IOResult(LEVEL_SSD, self.env.now - start)

        if self.cache is None:
            yield from self._controller_service()
            yield from self._transmission()
            yield from self._disk_service(key)
            return IOResult(LEVEL_DISK, self.env.now - start)

        decision = self.cache.on_write(key)
        yield from self._controller_service()
        yield from self._transmission()
        if decision.hit and not decision.needs_disk:
            if decision.async_disk_write:
                self._spawn_destage(key, decision.entry)
            return IOResult(LEVEL_CACHE, self.env.now - start)
        # Volatile cache, or a saturated non-volatile cache: synchronous
        # disk write.
        yield from self._disk_service(key)
        return IOResult(LEVEL_DISK, self.env.now - start)

    # -- introspection ------------------------------------------------------
    def mean_disk_utilization(self) -> float:
        if not self.disks:
            return 0.0
        total = sum(d.monitor.utilization(1) for d in self.disks)
        return total / len(self.disks)

    def controller_utilization(self) -> float:
        return self.controllers.monitor.utilization(self.controllers.capacity)

    def utilization_report(self) -> Dict[str, float]:
        return {
            "controllers": self.controller_utilization(),
            "disks": self.mean_disk_utilization(),
        }

    def reset_stats(self) -> None:
        self.stats.reset()
        self.controllers.monitor.reset()
        for disk in self.disks:
            disk.monitor.reset()
        if self.cache is not None:
            self.cache.stats.reset()


def _make_disk_unit(env: Environment, streams: RandomStreams,
                    spec) -> DiskUnit:
    """Device-registry factory for the four classic unit kinds.

    A spec either carries a ready :class:`DiskUnitConfig` under
    ``params["config"]`` (how :meth:`SystemConfig.device_specs` wraps the
    legacy table) or plain ``DiskUnitConfig`` field values.
    """
    config = spec.params.get("config")
    if config is None:
        params = dict(spec.params)
        params.setdefault("unit_type", DiskUnitType(spec.kind))
        config = DiskUnitConfig(name=spec.name, **params)
    return DiskUnit(env, streams, config)


for _kind in DiskUnitType:
    register_device(_kind.value, _make_disk_unit)
