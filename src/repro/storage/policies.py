"""Replacement policies behind a common interface (§3.2, §3.3).

The paper's every caching level is LRU-managed; this module extracts the
*interface* those levels actually rely on — lookup with/without recency
update, explicit insert/remove, and predicate-guarded victim selection —
into :class:`ReplacementPolicy`, so the buffer manager, the NVEM cache
and the disk-cache policies can run under any registered policy:

* ``"lru"`` — the reference implementation
  (:class:`~repro.storage.lru.LRUCache`, unchanged semantics);
* ``"clock"`` — second-chance CLOCK: a reference bit per page and a
  sweeping hand, the classic low-overhead LRU approximation;
* ``"2q"`` — Johnson & Shasha's 2Q: a FIFO admission queue (A1in), a
  ghost queue of recently evicted keys (A1out) and a main LRU queue
  (Am); pages are promoted to Am only on re-reference after eviction,
  which keeps sequential scans from flushing the hot set.

All policies share the contract of the LRU mechanism: they never evict
on their own — callers pick victims explicitly (``victim(predicate)``)
because every caching level has its own replacement constraints
(unfixed-only frames, unmodified-only pages, write-backs, migration).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Callable, Hashable, Iterator, Optional

from repro.storage.lru import LRUCache
from repro.storage.registry import register_policy

__all__ = [
    "CacheEntry",
    "ClockPolicy",
    "ReplacementPolicy",
    "TwoQPolicy",
]


class CacheEntry:
    """One cached page with the bookkeeping every caller relies on."""

    __slots__ = ("key", "dirty", "fix_count", "pending_write")

    def __init__(self, key: Hashable, dirty: bool = False):
        self.key = key
        self.dirty = dirty
        self.fix_count = 0
        #: Event for an in-flight asynchronous disk write, if any.
        self.pending_write = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.dirty:
            flags.append("dirty")
        if self.fix_count:
            flags.append(f"fixed={self.fix_count}")
        return f"<{type(self).__name__} {self.key!r} {' '.join(flags)}>"


class ReplacementPolicy(ABC):
    """Contract shared by all page-replacement structures.

    Entries expose ``key``, ``dirty``, ``fix_count`` and
    ``pending_write``; the structure never evicts on its own.
    """

    capacity: int

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __contains__(self, key: Hashable) -> bool: ...

    @property
    def is_full(self) -> bool:
        return len(self) >= self.capacity

    @abstractmethod
    def peek(self, key: Hashable):
        """Look up without touching recency state."""

    @abstractmethod
    def get(self, key: Hashable):
        """Look up and record a reference (policy-specific)."""

    @abstractmethod
    def touch(self, entry) -> None:
        """Record a reference for an already-held entry."""

    @abstractmethod
    def insert(self, key: Hashable, dirty: bool = False):
        """Insert a new page; the caller must have made room first."""

    @abstractmethod
    def remove(self, key: Hashable):
        """Remove and return the entry for ``key``."""

    @abstractmethod
    def victim(self, predicate: Optional[Callable] = None):
        """The policy's preferred eviction candidate satisfying
        ``predicate`` (not removed), or None when nothing qualifies."""

    @abstractmethod
    def entries(self) -> Iterator:
        """All entries, preferred-to-keep first where meaningful."""

    def keys(self) -> list:
        return [e.key for e in self.entries()]

    @abstractmethod
    def clear(self) -> None: ...


# The LRU mechanism predates the abstraction and already satisfies it
# (entries() is items_mru_to_lru, added below to avoid a rename churn).
ReplacementPolicy.register(LRUCache)
if not hasattr(LRUCache, "entries"):
    LRUCache.entries = LRUCache.items_mru_to_lru


class _ClockEntry(CacheEntry):
    __slots__ = ("referenced", "_prev", "_next")

    def __init__(self, key: Hashable, dirty: bool = False):
        super().__init__(key, dirty)
        self.referenced = True
        self._prev: Optional["_ClockEntry"] = None
        self._next: Optional["_ClockEntry"] = None


class ClockPolicy(ReplacementPolicy):
    """Second-chance CLOCK over an intrusive circular ring.

    Insert, remove and hand advancement are all O(1) — the same cost
    class as the linked-list LRU this policy substitutes for in the
    buffer manager's hottest path.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._map: dict = {}
        self._hand: Optional[_ClockEntry] = None

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._map

    def peek(self, key: Hashable) -> Optional[_ClockEntry]:
        return self._map.get(key)

    def get(self, key: Hashable) -> Optional[_ClockEntry]:
        entry = self._map.get(key)
        if entry is not None:
            entry.referenced = True
        return entry

    def touch(self, entry: _ClockEntry) -> None:
        entry.referenced = True

    def insert(self, key: Hashable, dirty: bool = False) -> _ClockEntry:
        if key in self._map:
            raise KeyError(f"page {key!r} already cached")
        if len(self._map) >= self.capacity:
            raise OverflowError(
                f"cache full ({self.capacity}); evict before inserting"
            )
        entry = _ClockEntry(key, dirty)
        self._map[key] = entry
        hand = self._hand
        if hand is None:
            entry._prev = entry._next = entry
            self._hand = entry
        else:
            # New pages enter just behind the hand: a full sweep passes
            # them last, giving them the longest grace period.
            entry._prev = hand._prev
            entry._next = hand
            hand._prev._next = entry
            hand._prev = entry
        return entry

    def remove(self, key: Hashable) -> _ClockEntry:
        entry = self._map.pop(key)
        if entry._next is entry:
            self._hand = None
        else:
            if self._hand is entry:
                self._hand = entry._next
            entry._prev._next = entry._next
            entry._next._prev = entry._prev
        entry._prev = entry._next = None
        return entry

    def victim(self, predicate: Optional[Callable] = None):
        entry = self._hand
        if entry is None:
            return None
        # Two full sweeps suffice: the first clears every reference bit,
        # the second must find any qualifying entry.
        for _ in range(2 * len(self._map)):
            if entry.referenced:
                entry.referenced = False
                entry = self._hand = entry._next
            elif predicate is None or predicate(entry):
                self._hand = entry
                return entry
            else:
                entry = self._hand = entry._next
        return None

    def entries(self) -> Iterator[_ClockEntry]:
        result = []
        entry = self._hand
        for _ in range(len(self._map)):
            result.append(entry)
            entry = entry._next
        return iter(result)

    def clear(self) -> None:
        self._map.clear()
        self._hand = None


class TwoQPolicy(ReplacementPolicy):
    """Full 2Q: A1in FIFO + A1out ghost keys + Am LRU [JS94].

    ``kin`` bounds the admission queue (default capacity/4); the ghost
    queue remembers up to capacity/2 recently evicted keys.  A page is
    admitted to the hot queue Am only when it is re-inserted while its
    key is still in the ghost queue.
    """

    def __init__(self, capacity: int, kin: Optional[int] = None,
                 kout: Optional[int] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.kin = max(1, capacity // 4) if kin is None else max(1, kin)
        self.kout = max(1, capacity // 2) if kout is None else max(1, kout)
        self._a1in: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._a1out: "OrderedDict[Hashable, None]" = OrderedDict()
        self._am: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._a1in or key in self._am

    def peek(self, key: Hashable) -> Optional[CacheEntry]:
        entry = self._a1in.get(key)
        if entry is None:
            entry = self._am.get(key)
        return entry

    def get(self, key: Hashable) -> Optional[CacheEntry]:
        entry = self._am.get(key)
        if entry is not None:
            self._am.move_to_end(key)
            return entry
        # A hit in A1in does not promote: 2Q promotes only pages that
        # prove their worth by surviving eviction (via A1out).
        return self._a1in.get(key)

    def touch(self, entry: CacheEntry) -> None:
        if entry.key in self._am:
            self._am.move_to_end(entry.key)

    def insert(self, key: Hashable, dirty: bool = False) -> CacheEntry:
        if key in self:
            raise KeyError(f"page {key!r} already cached")
        if len(self) >= self.capacity:
            raise OverflowError(
                f"cache full ({self.capacity}); evict before inserting"
            )
        entry = CacheEntry(key, dirty)
        if key in self._a1out:
            del self._a1out[key]
            self._am[key] = entry
        else:
            self._a1in[key] = entry
        return entry

    def remove(self, key: Hashable) -> CacheEntry:
        entry = self._a1in.pop(key, None)
        if entry is not None:
            self._remember_ghost(key)
            return entry
        entry = self._am.pop(key)
        return entry

    def _remember_ghost(self, key: Hashable) -> None:
        self._a1out[key] = None
        self._a1out.move_to_end(key)
        while len(self._a1out) > self.kout:
            self._a1out.popitem(last=False)

    def _scan(self, queue, predicate) -> Optional[CacheEntry]:
        for entry in queue.values():  # oldest first
            if predicate is None or predicate(entry):
                return entry
        return None

    def victim(self, predicate: Optional[Callable] = None):
        if len(self._a1in) > self.kin or not self._am:
            first, second = self._a1in, self._am
        else:
            first, second = self._am, self._a1in
        entry = self._scan(first, predicate)
        if entry is None:
            entry = self._scan(second, predicate)
        return entry

    def entries(self) -> Iterator[CacheEntry]:
        hot = list(reversed(self._am.values()))
        recent = list(reversed(self._a1in.values()))
        return iter(hot + recent)

    def clear(self) -> None:
        self._a1in.clear()
        self._a1out.clear()
        self._am.clear()


register_policy("lru", LRUCache)
register_policy("clock", ClockPolicy)
register_policy("2q", TwoQPolicy)
