"""The non-volatile extended memory (NVEM) device.

NVEM (§2, §3.3) is page-addressable semiconductor memory accessed by
special machine instructions: transfers are performed by the CPU itself,
so an NVEM access keeps the accessing CPU busy (the caller models that —
see :mod:`repro.core.cpu`).  The device itself is a small server pool
(``NumNVEMservers``) with a per-page service time (``NVEMdelay``,
50 µs per 4 KB page in the paper's Table 4.1).
"""

from __future__ import annotations

from typing import Generator

from repro.core.config import Distribution, NVEMConfig
from repro.sim import Environment, RandomStreams, Resource
from repro.sim.stats import CategoryCounter
from repro.storage.registry import register_device

__all__ = ["NVEMDevice"]


class NVEMDevice:
    """Server pool for page transfers between main memory and NVEM."""

    def __init__(self, env: Environment, streams: RandomStreams,
                 config: NVEMConfig):
        config.validate()
        self.env = env
        self.config = config
        self._streams = streams
        self.servers = Resource(env, config.num_servers, name="nvem")
        self.stats = CategoryCounter()

    def _service_time(self) -> float:
        if self.config.distribution is Distribution.EXPONENTIAL:
            return self._streams.exponential("nvem-service", self.config.delay)
        return self.config.delay

    def access(self, kind: str = "access") -> Generator:
        """One page transfer; yields until the transfer completes.

        ``kind`` tags the access for statistics (read / write / migrate /
        log).  The caller decides whether the CPU is held meanwhile.
        """
        self.stats.add(kind)
        yield self.servers.serve_event(self._service_time)

    @property
    def utilization(self) -> float:
        return self.servers.monitor.utilization(self.servers.capacity)

    def utilization_report(self) -> dict:
        return {"servers": self.utilization}

    def reset_stats(self) -> None:
        self.stats.reset()
        self.servers.monitor.reset()


@register_device("nvem")
def _make_nvem(env: Environment, streams: RandomStreams,
               spec) -> NVEMDevice:
    config = spec.params.get("config")
    if config is None:
        config = NVEMConfig(**spec.params)
    return NVEMDevice(env, streams, config)
