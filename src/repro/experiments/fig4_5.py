"""Figure 4.5 — impact of the second-level buffer size
(Debit-Credit, NOFORCE, 500 TPS, main-memory buffer 500 pages).

The second-level cache size varies from 200 to 5000 pages for a
volatile disk cache, a non-volatile disk cache and an NVEM cache.  The
figure has two panels: (a) response times and (b) the hit ratio the
second-level cache adds on top of the ~59.5% main-memory hit ratio.

Expected shape (paper): NVEM caching is best at every size; volatile
disk caches achieve nothing until they exceed the main-memory buffer
size (double caching); non-volatile caches sit in between, their
response advantage coming mostly from write absorption.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.api import (
    CurveSpec,
    ExperimentRunner,
    ExperimentSpec,
    SweepProfile,
    experiment,
    get_experiment,
    legacy_run,
)
from repro.experiments.defaults import (
    debit_credit_config,
    second_level_cache_scheme,
)
from repro.experiments.runner import ExperimentResult
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["KINDS", "hit_table", "run", "spec"]

CACHE_SIZES = [200, 500, 1000, 2000, 5000]
FAST_CACHE_SIZES = [500, 2000]
MM_BUFFER = 500
ARRIVAL_RATE = 500.0

KINDS = [
    ("vol. disk cache", "volatile"),
    ("nv disk cache", "nonvolatile"),
    ("NVEM buffer", "nvem"),
]


def _curves() -> List[CurveSpec]:
    def curve(label, kind):
        def build(size: float) -> Tuple:
            config = debit_credit_config(
                second_level_cache_scheme(kind, int(size)),
                buffer_size=MM_BUFFER,
            )
            workload = DebitCreditWorkload(arrival_rate=ARRIVAL_RATE)
            return config, workload

        return CurveSpec(label=label, build=build)

    return [curve(label, kind) for label, kind in KINDS]


def hit_table(result: ExperimentResult) -> str:
    """Panel (b): hit ratio added by the second-level cache."""
    return result.to_table(
        metric=lambda r: (r.hit_ratio("nvem_cache")
                          + r.hit_ratio("disk_cache")) * 100,
        fmt="{:8.1f}",
    )


def _render(result: ExperimentResult) -> str:
    """Both panels: response times and second-level hit ratios."""
    return result.to_table() + "\n\n" + hit_table(result)


@experiment("fig4_5")
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="fig4_5",
        title="Impact of 2nd-level buffer size "
              f"(NOFORCE, 500 TPS, MM={MM_BUFFER})",
        x_label="2nd-level cache (pages)",
        y_label="mean response time (ms); panel (b) = added hit ratio",
        curves=_curves(),
        profiles={
            "full": SweepProfile(xs=tuple(CACHE_SIZES), warmup=3.0,
                                 duration=8.0),
            "fast": SweepProfile(xs=tuple(FAST_CACHE_SIZES), warmup=3.0,
                                 duration=4.0),
        },
        notes=(
            "expected: NVEM best throughout; volatile cache useless "
            "until its size exceeds the 500-page MM buffer",
        ),
        renderer=_render,
    )


def run(fast: bool = False, duration: Optional[float] = None,
        parallel: bool = False) -> ExperimentResult:
    """Deprecated: resolve ``fig4_5`` through the registry instead."""
    return legacy_run("fig4_5", fast, duration, parallel)


def main() -> None:  # pragma: no cover - convenience entry point
    result = ExperimentRunner().run_one(get_experiment("fig4_5"))
    print(_render(result))


if __name__ == "__main__":  # pragma: no cover
    main()
