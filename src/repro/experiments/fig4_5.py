"""Figure 4.5 — impact of the second-level buffer size
(Debit-Credit, NOFORCE, 500 TPS, main-memory buffer 500 pages).

The second-level cache size varies from 200 to 5000 pages for a
volatile disk cache, a non-volatile disk cache and an NVEM cache.  The
figure has two panels: (a) response times and (b) the hit ratio the
second-level cache adds on top of the ~59.5% main-memory hit ratio.

Expected shape (paper): NVEM caching is best at every size; volatile
disk caches achieve nothing until they exceed the main-memory buffer
size (double caching); non-volatile caches sit in between, their
response advantage coming mostly from write absorption.
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.defaults import (
    debit_credit_config,
    second_level_cache_scheme,
)
from repro.experiments.runner import ExperimentResult, sweep
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["KINDS", "run"]

CACHE_SIZES = [200, 500, 1000, 2000, 5000]
FAST_CACHE_SIZES = [500, 2000]
MM_BUFFER = 500
ARRIVAL_RATE = 500.0

KINDS = [
    ("vol. disk cache", "volatile"),
    ("nv disk cache", "nonvolatile"),
    ("NVEM buffer", "nvem"),
]


def run(fast: bool = False, duration: float = None,
        parallel: bool = False) -> ExperimentResult:
    sizes = FAST_CACHE_SIZES if fast else CACHE_SIZES
    duration = duration or (4.0 if fast else 8.0)
    result = ExperimentResult(
        experiment_id="Fig4.5",
        title="Impact of 2nd-level buffer size "
              f"(NOFORCE, 500 TPS, MM={MM_BUFFER})",
        x_label="2nd-level cache (pages)",
        y_label="mean response time (ms); hit ratios via hit_table()",
    )
    for label, kind in KINDS:
        def build(size: float, kind=kind) -> Tuple:
            config = debit_credit_config(
                second_level_cache_scheme(kind, int(size)),
                buffer_size=MM_BUFFER,
            )
            workload = DebitCreditWorkload(arrival_rate=ARRIVAL_RATE)
            return config, workload

        result.series.append(
            sweep(label, sizes, build, warmup=3.0, duration=duration,
                  parallel=parallel and not fast)
        )
    result.notes.append(
        "expected: NVEM best throughout; volatile cache useless until "
        "its size exceeds the 500-page MM buffer"
    )
    return result


def hit_table(result: ExperimentResult) -> str:
    """Panel (b): hit ratio added by the second-level cache."""
    return result.to_table(
        metric=lambda r: (r.hit_ratio("nvem_cache")
                          + r.hit_ratio("disk_cache")) * 100,
        fmt="{:8.1f}",
    )


def main() -> None:  # pragma: no cover - convenience entry point
    result = run()
    print(result.to_table())
    print()
    print(hit_table(result))


if __name__ == "__main__":  # pragma: no cover
    main()
