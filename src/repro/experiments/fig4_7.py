"""Figure 4.7 — impact of the second-level buffer size for the
real-life (trace) workload.

The main-memory buffer is fixed at 1000 pages; the second-level cache
varies from 0 (main-memory caching only) to 5000 pages for a volatile
disk cache, a non-volatile disk cache and an NVEM cache.

Expected shape (paper): small disk caches achieve little because the
hottest pages are double-cached in main memory; hit ratios (and
response-time gains) appear as the cache grows beyond the MM buffer.
Volatile and non-volatile disk caches perform nearly identically for
this read-dominated load; the NVEM cache is the most effective at every
size.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.api import (
    CurveSpec,
    ExperimentRunner,
    ExperimentSpec,
    SweepProfile,
    experiment,
    get_experiment,
    legacy_run,
)
from repro.experiments.runner import ExperimentResult
from repro.experiments.trace_setup import (
    ARRIVAL_RATE,
    MEAN_TX_SIZE,
    trace_config,
    trace_for,
    trace_workload,
)

__all__ = ["KINDS", "normalized_table", "run", "spec"]

CACHE_SIZES = [0, 1000, 2000, 3000, 5000]
FAST_CACHE_SIZES = [0, 2000]
MM_BUFFER = 1000

KINDS = [
    ("vol. disk cache", "volatile"),
    ("nv disk cache", "nonvolatile"),
    ("NVEM cache", "nvem"),
]


def _curves(profile: str) -> List[CurveSpec]:
    trace = trace_for(profile == "fast")

    def curve(label, kind):
        def build(size: float) -> Tuple:
            actual_kind = "none" if size == 0 else kind
            config = trace_config(trace, actual_kind, MM_BUFFER,
                                  second_level=max(int(size), 1))
            return config, trace_workload(trace)

        return CurveSpec(label=label, build=build)

    return [curve(label, kind) for label, kind in KINDS]


def normalized_table(result: ExperimentResult) -> str:
    return result.to_table(
        metric=lambda r: r.normalized_response_time(MEAN_TX_SIZE) * 1000,
        fmt="{:8.1f}",
    )


@experiment("fig4_7")
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="fig4_7",
        title="Impact of 2nd-level buffer size for the real-life "
              f"workload (MM={MM_BUFFER}, {ARRIVAL_RATE:g} TPS)",
        x_label="2nd-level cache (pages)",
        y_label=f"normalized response time (ms, {MEAN_TX_SIZE:g}-access "
                "tx)",
        curves=_curves,
        profiles={
            "full": SweepProfile(xs=tuple(CACHE_SIZES), warmup=4.0,
                                 duration=45.0),
            "fast": SweepProfile(xs=tuple(FAST_CACHE_SIZES), warmup=4.0,
                                 duration=15.0),
        },
        notes=(
            "expected: gains appear once the cache exceeds the "
            "1000-page MM buffer; NVEM most effective; volatile ~= "
            "non-volatile",
        ),
        metric=lambda r: r.normalized_response_time(MEAN_TX_SIZE) * 1000,
        metric_fmt="{:8.1f}",
    )


def run(fast: bool = False, duration: Optional[float] = None,
        parallel: bool = False) -> ExperimentResult:
    """Deprecated: resolve ``fig4_7`` through the registry instead."""
    return legacy_run("fig4_7", fast, duration, parallel)


def main() -> None:  # pragma: no cover - convenience entry point
    print(normalized_table(ExperimentRunner().run_one(
        get_experiment("fig4_7"))))


if __name__ == "__main__":  # pragma: no cover
    main()
