"""Figure 4.7 — impact of the second-level buffer size for the
real-life (trace) workload.

The main-memory buffer is fixed at 1000 pages; the second-level cache
varies from 0 (main-memory caching only) to 5000 pages for a volatile
disk cache, a non-volatile disk cache and an NVEM cache.

Expected shape (paper): small disk caches achieve little because the
hottest pages are double-cached in main memory; hit ratios (and
response-time gains) appear as the cache grows beyond the MM buffer.
Volatile and non-volatile disk caches perform nearly identically for
this read-dominated load; the NVEM cache is the most effective at every
size.
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.runner import ExperimentResult, sweep
from repro.experiments.trace_setup import (
    ARRIVAL_RATE,
    MEAN_TX_SIZE,
    trace_config,
    trace_for,
    trace_workload,
)

__all__ = ["KINDS", "run"]

CACHE_SIZES = [0, 1000, 2000, 3000, 5000]
FAST_CACHE_SIZES = [0, 2000]
MM_BUFFER = 1000

KINDS = [
    ("vol. disk cache", "volatile"),
    ("nv disk cache", "nonvolatile"),
    ("NVEM cache", "nvem"),
]


def run(fast: bool = False, duration: float = None,
        parallel: bool = False) -> ExperimentResult:
    sizes = FAST_CACHE_SIZES if fast else CACHE_SIZES
    duration = duration or (15.0 if fast else 45.0)
    trace = trace_for(fast)
    result = ExperimentResult(
        experiment_id="Fig4.7",
        title="Impact of 2nd-level buffer size for the real-life "
              f"workload (MM={MM_BUFFER}, {ARRIVAL_RATE:g} TPS)",
        x_label="2nd-level cache (pages)",
        y_label=f"normalized response time (ms, {MEAN_TX_SIZE:g}-access tx)",
    )
    for label, kind in KINDS:
        def build(size: float, kind=kind) -> Tuple:
            actual_kind = "none" if size == 0 else kind
            config = trace_config(trace, actual_kind, MM_BUFFER,
                                  second_level=max(int(size), 1))
            return config, trace_workload(trace)

        result.series.append(
            sweep(label, sizes, build, warmup=4.0, duration=duration,
                  parallel=parallel and not fast)
        )
    result.notes.append(
        "expected: gains appear once the cache exceeds the 1000-page MM "
        "buffer; NVEM most effective; volatile ~= non-volatile"
    )
    return result


def normalized_table(result: ExperimentResult) -> str:
    return result.to_table(
        metric=lambda r: r.normalized_response_time(MEAN_TX_SIZE) * 1000,
        fmt="{:8.1f}",
    )


def main() -> None:  # pragma: no cover - convenience entry point
    print(normalized_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
