"""Recovery experiments: restart time and delivered availability (§4.4).

Two registered experiments connect the crash-recovery subsystem
(:mod:`repro.recovery`) to the storage question the paper asks —
*where should log and database live?* — the way Gray's availability
argument frames it (MTTR is the metric modern TP systems are judged
on):

* ``fig_restart`` — simulated restart time vs. checkpoint interval for
  four log/database placements under FORCE and NOFORCE.  One crash is
  injected at 1.5× the checkpoint interval, so the log exposure at the
  crash is exactly half an interval — the expected exposure of the
  analytic :class:`repro.analysis.recovery.RecoveryModel`, making the
  two directly comparable.  Expected shape: NOFORCE restart grows with
  the interval while FORCE stays flat, and a non-volatile log/database
  cuts restart by orders of magnitude.
* ``ablation_availability`` — delivered throughput and availability
  under *periodic* crashes (x = crash period): the disk configuration
  spends a large fraction of its life in redo while the NVEM-resident
  system barely notices the same fault schedule.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import UpdateStrategy
from repro.experiments.api import (
    CurveSpec,
    ExperimentSpec,
    SweepProfile,
    experiment,
)
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    nvem_resident,
)
from repro.experiments.fig4_1 import log_in_nvem
from repro.experiments.runner import ExperimentResult
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["UPDATE_TPS", "availability_summary", "restart_summary"]

#: Arrival rate all recovery experiments run at — low enough that the
#: post-restart backlog drains without saturating the input queue.
UPDATE_TPS = 50.0

#: Fuzzy-checkpoint interval of the availability ablation (seconds);
#: deliberately not a divisor of the crash periods so crashes never
#: coincide with a checkpoint instant.
AVAILABILITY_CHECKPOINT_INTERVAL = 6.0


def _restart_config(scheme_fn, strategy: UpdateStrategy,
                    interval: float):
    """Debit-Credit config with one crash at 1.5 checkpoint intervals."""
    config = debit_credit_config(scheme_fn(), update_strategy=strategy)
    config.recovery.enabled = True
    config.recovery.checkpoint_interval = interval
    config.recovery.crash_times = (1.5 * interval,)
    return config


def _restart_curves() -> List[CurveSpec]:
    placements = [
        ("disk log+db", disk_only),
        ("NVEM log, disk db", log_in_nvem),
        ("NVEM log+db", nvem_resident),
    ]

    def curve(label, scheme_fn, strategy):
        def build(interval: float) -> Tuple:
            config = _restart_config(scheme_fn, strategy, interval)
            return config, DebitCreditWorkload(arrival_rate=UPDATE_TPS)

        return CurveSpec(label=label, build=build)

    curves = [curve(f"{label}, NOFORCE", fn, UpdateStrategy.NOFORCE)
              for label, fn in placements]
    curves.append(curve("disk log+db, FORCE", disk_only,
                        UpdateStrategy.FORCE))
    return curves


def restart_summary(result: ExperimentResult):
    """{label: {interval: recovery dict}} for tests and reports."""
    return {
        series.label: {
            point.x: dict(point.results.recovery or {})
            for point in series.points
        }
        for series in result.series
    }


def _restart_render(result: ExperimentResult) -> str:
    lines = [result.to_table(
        metric=lambda r: r.restart_time_mean, fmt="{:8.2f}")]
    for series in result.series:
        for point in series.points:
            rec = point.results.recovery or {}
            lines.append(
                f"  {series.label:24s} interval={point.x:g}: "
                f"scan {rec.get('restart_log_scan_time', 0.0):7.3f} s "
                f"({int(rec.get('restart_log_pages', 0))} pages), "
                f"redo {rec.get('restart_redo_time', 0.0):7.3f} s "
                f"({int(rec.get('restart_redo_pages', 0))} pages)"
            )
    return "\n".join(lines)


@experiment("fig_restart")
def restart_spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="fig_restart",
        title="Restart time after a crash: log/db placement x "
              "checkpoint interval",
        x_label="checkpoint interval (s)",
        y_label="restart time (s); crash at 1.5 intervals",
        curves=_restart_curves(),
        profiles={
            # The window must contain the crash (at 1.5x) AND the full
            # restart, or the crash never completes inside measurement.
            "full": SweepProfile(xs=(4.0, 8.0, 16.0), warmup=3.0,
                                 duration=60.0),
            "fast": SweepProfile(xs=(4.0, 8.0), warmup=2.0,
                                 duration=30.0),
        },
        notes=(
            "expected: NOFORCE restart grows ~linearly with the "
            "checkpoint interval, FORCE stays flat (only the commit "
            "window is redone), and NVEM-resident log/database cut "
            "restart by orders of magnitude (Table 4.1 speeds)",
        ),
        metric=lambda r: r.restart_time_mean,
        metric_fmt="{:8.2f}",
        renderer=_restart_render,
        truncate_on_saturation=False,
    )


# ---------------------------------------------------------------------------
# Availability under periodic crashes


def _availability_config(scheme_fn, period: float, horizon: float):
    config = debit_credit_config(scheme_fn())
    config.recovery.enabled = True
    config.recovery.checkpoint_interval = AVAILABILITY_CHECKPOINT_INTERVAL
    crashes = []
    instant = period
    while instant < horizon:
        crashes.append(instant)
        instant += period
    config.recovery.crash_times = tuple(crashes)
    return config


def _availability_curves(profile: str) -> List[CurveSpec]:
    horizon = 63.0 if profile == "full" else 32.0

    def curve(label, scheme_fn):
        def build(period: float) -> Tuple:
            config = _availability_config(scheme_fn, period, horizon)
            return config, DebitCreditWorkload(arrival_rate=UPDATE_TPS)

        return CurveSpec(label=label, build=build)

    return [curve("disk log+db", disk_only),
            curve("NVEM log+db", nvem_resident)]


def availability_summary(result: ExperimentResult):
    """{label: {period: (delivered TPS, availability)}}."""
    return {
        series.label: {
            point.x: (point.results.throughput,
                      point.results.availability)
            for point in series.points
        }
        for series in result.series
    }


def _availability_render(result: ExperimentResult) -> str:
    lines = [result.to_table(metric=lambda r: r.throughput,
                             fmt="{:8.1f}")]
    for series in result.series:
        for point in series.points:
            r = point.results
            rec = r.recovery or {}
            lines.append(
                f"  {series.label:12s} period={point.x:g}: "
                f"{r.throughput:6.1f} TPS delivered, "
                f"availability {r.availability * 100:6.2f} %, "
                f"{int(rec.get('crashes', 0))} crash(es), "
                f"MTTR {r.restart_time_mean:6.2f} s"
            )
    return "\n".join(lines)


@experiment("ablation_availability")
def availability_spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="ablation_availability",
        title="Delivered throughput & availability under periodic "
              "crashes (NOFORCE)",
        x_label="crash period (s)",
        y_label="delivered throughput (TPS)",
        curves=_availability_curves,
        profiles={
            "full": SweepProfile(xs=(10.0, 20.0, 40.0), warmup=3.0,
                                 duration=60.0),
            "fast": SweepProfile(xs=(15.0, 30.0), warmup=2.0,
                                 duration=30.0),
        },
        notes=(
            "expected: the disk configuration loses a large fraction "
            "of its delivered TPS to redo at short crash periods; the "
            "NVEM-resident system restarts in well under a second and "
            "keeps availability near 100%",
        ),
        metric=lambda r: r.throughput,
        metric_fmt="{:8.1f}",
        renderer=_availability_render,
        truncate_on_saturation=False,
    )
