"""Experiment harness primitives: result containers and point evaluation.

This module holds the layer *below* the declarative experiment API of
:mod:`repro.experiments.api`:

* :class:`ExperimentResult` / :class:`Series` / :class:`SeriesPoint` —
  the result containers every registered experiment produces, plus the
  aligned ASCII table renderer.
* :func:`point_seed` — the deterministic per-point seed derivation
  every evaluation path shares (serial, parallel, cached), which is
  what makes their outputs byte-identical.
* :func:`_evaluate_point` / :func:`evaluate_points_parallel` — one
  sweep point as a picklable task ``(x, config, workload, warmup,
  duration, seed)`` and its process-pool evaluation with a serial
  fallback.
* :func:`sweep` — the historical single-curve driver, still used by
  ad-hoc studies (``examples/``) and property tests.

Figure modules no longer expose ``run(fast=...)``; they register
:class:`~repro.experiments.api.ExperimentSpec` factories under stable
ids (``@experiment("fig4_1")``) and are discovered through the
registry.  The :class:`~repro.experiments.api.ExperimentRunner`
evaluates specs with figure-wide parallelism and, when given a
:class:`~repro.experiments.store.ResultStore`, consults the
content-addressed point cache before scheduling a task here: a task's
fingerprint (config + workload + run window + seed + code-version
salt) either hits a stored :class:`~repro.core.metrics.Results` —
byte-identical to recomputation — or is evaluated by the functions in
this module and streamed back into the store and the run's checkpoint
journal.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import Results
from repro.core.model import TransactionSystem

__all__ = ["ExperimentResult", "Series", "SeriesPoint",
           "evaluate_points_parallel", "point_seed", "sweep"]


@dataclass
class SeriesPoint:
    """One (x, results) sample of a sweep."""

    x: float
    results: Results

    @property
    def response_ms(self) -> float:
        return self.results.response_time_ms

    @property
    def saturated(self) -> bool:
        return self.results.saturated


@dataclass
class Series:
    """One labelled curve of an experiment."""

    label: str
    points: List[SeriesPoint] = field(default_factory=list)

    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    def values(self, metric: Callable[[Results], float]) -> List[float]:
        return [metric(p.results) for p in self.points]

    def response_times_ms(self) -> List[float]:
        return [p.response_ms for p in self.points]


@dataclass
class ExperimentResult:
    """All series of one figure/table, plus presentation metadata."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r}")

    def to_table(self, metric: Optional[Callable[[Results], float]] = None,
                 fmt: str = "{:8.2f}") -> str:
        """Render the experiment as an aligned ASCII table.

        Saturated points are suffixed with ``*`` (the paper stops
        plotting curves at their saturation point).
        """
        if metric is None:
            metric = lambda r: r.response_time_ms  # noqa: E731
        xs: List[float] = []
        for s in self.series:
            for p in s.points:
                if p.x not in xs:
                    xs.append(p.x)
        xs.sort()
        label_width = max(12, *(len(s.label) + 1 for s in self.series)) \
            if self.series else 12
        header = f"{self.x_label:>{label_width}} |" + "".join(
            f" {s.label:>14}" for s in self.series
        )
        lines = [
            f"{self.experiment_id}: {self.title}",
            f"(y = {self.y_label})",
            header,
            "-" * len(header),
        ]
        by_series: List[Dict[float, SeriesPoint]] = [
            {p.x: p for p in s.points} for s in self.series
        ]
        for x in xs:
            cells = []
            for points in by_series:
                point = points.get(x)
                if point is None:
                    cells.append(f" {'-':>14}")
                else:
                    value = fmt.format(metric(point.results))
                    marker = "*" if point.saturated else " "
                    cells.append(f" {value + marker:>14}")
            lines.append(f"{x:>{label_width}g} |" + "".join(cells))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


#: Modulus of the per-point seed space (31-bit, any PRNG accepts it).
_SEED_SPACE = 2 ** 31 - 1
#: Golden-ratio increment spreading consecutive point seeds apart.
_SEED_STRIDE = 0x9E3779B1


def point_seed(seed: int, index: int) -> int:
    """Deterministic seed for sweep point ``index`` of a base ``seed``.

    Pure arithmetic (no ``hash()``), so the value is identical across
    worker processes, interpreter restarts and platforms.
    """
    return (seed * 1_000_003 + (index + 1) * _SEED_STRIDE) % _SEED_SPACE


def _evaluate_point(task: Tuple) -> Results:
    """Run one sweep point; module-level so worker processes can call it."""
    x, config, workload, warmup, duration, seed = task
    builder = getattr(config, "build_system", None)
    if builder is not None:
        # Configs owning system construction (e.g. ClusterConfig)
        # build their own runnable system for the point.
        system = builder(workload, seed=seed)
    else:
        system = TransactionSystem(config, workload, seed=seed)
    return system.run(warmup=warmup, duration=duration)


def evaluate_points_parallel(tasks: Sequence[Tuple],
                             max_workers: Optional[int] = None,
                             stacklevel: int = 3
                             ) -> Optional[List[Results]]:
    """Evaluate point tasks across worker processes, in task order.

    Returns ``None`` when no worker pool could be used (restricted
    sandbox, dead children, unpicklable workload) so the caller can
    degrade to serial evaluation: a genuine simulation error then
    re-raises from the serial path with a clean single-process
    traceback.
    """
    workers = max_workers or min(len(tasks), os.cpu_count() or 1)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_evaluate_point, tasks))
    except (OSError, pickle.PicklingError, AttributeError, TypeError,
            BrokenProcessPool) as exc:
        warnings.warn(
            f"parallel sweep fell back to serial evaluation: {exc!r}",
            RuntimeWarning, stacklevel=stacklevel,
        )
        return None


def _append_point(series: Series, x: float, results: Results) -> bool:
    """Add one evaluated point; True when the curve ends (saturation)."""
    if results.saturated and results.committed == 0:
        # Beyond saturation nothing completes inside the window;
        # there is no meaningful response time to report.
        return True
    series.points.append(SeriesPoint(x=x, results=results))
    return results.saturated


def sweep(label: str,
          xs: Sequence[float],
          build: Callable[[float], Tuple],
          warmup: float = 3.0,
          duration: float = 8.0,
          seed: int = 1,
          parallel: bool = False,
          max_workers: Optional[int] = None) -> Series:
    """Run one curve: ``build(x)`` returns ``(config, workload)``.

    A saturated point (diverging input queue) ends the curve — points
    past saturation are not meaningful in an open system, and the paper
    likewise truncates such curves (e.g. the single-log-disk line of
    Fig. 4.1).

    ``build`` runs in this process for every point (it may close over
    arbitrary state); only the resulting ``(config, workload)`` pairs —
    plain picklable data — are shipped to workers when ``parallel``.
    Each point gets a :func:`point_seed` derived from ``seed``, so the
    parallel and serial paths produce identical series: the parallel
    path evaluates all points concurrently and truncates at the first
    saturated one, where the serial path stops evaluating.
    """
    tasks = [
        (x, *build(x), warmup, duration, point_seed(seed, i))
        for i, x in enumerate(xs)
    ]
    series = Series(label=label)
    if parallel and len(tasks) > 1:
        all_results = evaluate_points_parallel(tasks, max_workers,
                                               stacklevel=3)
        if all_results is not None:
            for task, results in zip(tasks, all_results):
                if _append_point(series, task[0], results):
                    break
            return series
    for task in tasks:
        if _append_point(series, task[0], _evaluate_point(task)):
            break
    return series
