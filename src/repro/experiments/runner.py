"""Experiment harness: sweeps, series collection and result containers.

Every figure/table module under :mod:`repro.experiments` exposes::

    run(fast=False) -> ExperimentResult

``fast=True`` trims sweep points and run lengths for use in benchmarks
and CI; the default settings regenerate the full curves reported in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import Results
from repro.core.model import TransactionSystem

__all__ = ["ExperimentResult", "Series", "SeriesPoint", "sweep"]


@dataclass
class SeriesPoint:
    """One (x, results) sample of a sweep."""

    x: float
    results: Results

    @property
    def response_ms(self) -> float:
        return self.results.response_time_ms

    @property
    def saturated(self) -> bool:
        return self.results.saturated


@dataclass
class Series:
    """One labelled curve of an experiment."""

    label: str
    points: List[SeriesPoint] = field(default_factory=list)

    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    def values(self, metric: Callable[[Results], float]) -> List[float]:
        return [metric(p.results) for p in self.points]

    def response_times_ms(self) -> List[float]:
        return [p.response_ms for p in self.points]


@dataclass
class ExperimentResult:
    """All series of one figure/table, plus presentation metadata."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r}")

    def to_table(self, metric: Optional[Callable[[Results], float]] = None,
                 fmt: str = "{:8.2f}") -> str:
        """Render the experiment as an aligned ASCII table.

        Saturated points are suffixed with ``*`` (the paper stops
        plotting curves at their saturation point).
        """
        if metric is None:
            metric = lambda r: r.response_time_ms  # noqa: E731
        xs: List[float] = []
        for s in self.series:
            for p in s.points:
                if p.x not in xs:
                    xs.append(p.x)
        xs.sort()
        label_width = max(12, *(len(s.label) + 1 for s in self.series)) \
            if self.series else 12
        header = f"{self.x_label:>{label_width}} |" + "".join(
            f" {s.label:>14}" for s in self.series
        )
        lines = [
            f"{self.experiment_id}: {self.title}",
            f"(y = {self.y_label})",
            header,
            "-" * len(header),
        ]
        by_series: List[Dict[float, SeriesPoint]] = [
            {p.x: p for p in s.points} for s in self.series
        ]
        for x in xs:
            cells = []
            for points in by_series:
                point = points.get(x)
                if point is None:
                    cells.append(f" {'-':>14}")
                else:
                    value = fmt.format(metric(point.results))
                    marker = "*" if point.saturated else " "
                    cells.append(f" {value + marker:>14}")
            lines.append(f"{x:>{label_width}g} |" + "".join(cells))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def sweep(label: str,
          xs: Sequence[float],
          build: Callable[[float], Tuple],
          warmup: float = 3.0,
          duration: float = 8.0,
          seed: int = 1) -> Series:
    """Run one curve: ``build(x)`` returns ``(config, workload)``.

    A saturated point (diverging input queue) ends the curve — points
    past saturation are not meaningful in an open system, and the paper
    likewise truncates such curves (e.g. the single-log-disk line of
    Fig. 4.1).
    """
    series = Series(label=label)
    for x in xs:
        config, workload = build(x)
        system = TransactionSystem(config, workload, seed=seed)
        results = system.run(warmup=warmup, duration=duration)
        if results.saturated and results.committed == 0:
            # Beyond saturation nothing completes inside the window;
            # there is no meaningful response time to report.
            break
        series.points.append(SeriesPoint(x=x, results=results))
        if results.saturated:
            break
    return series
