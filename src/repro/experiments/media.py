"""Media-failure experiments: rebuild time, degraded TPS, mirroring cost.

Two registered experiments connect the media subsystem
(:mod:`repro.recovery.media`) to the storage question of §4.4 — what
does extended storage buy when the *permanent* copy dies, not just the
volatile one?

* ``fig_media_recovery`` — the database unit ``db0`` is lost mid-run
  and rebuilt from the archive copy plus a post-archive log scan; x is
  the archiver's interval (the age of the newest archive copy at the
  loss), curves are the log placements.  The loss instant sits just
  *before* an archiver tick, so older intervals really mean older
  archives.  Expected shape: rebuild time grows with the archive age
  (more log to scan, more stale pages to re-apply), and an NVEM log
  collapses the log-scan share of the rebuild the same way it
  collapses restart (Table 4.1 speeds); delivered TPS stays positive
  throughout — the rebuild gates pages, not the system.
* ``ablation_mirroring`` — the commit-latency price of forcing every
  log page to *two* NVEM copies (``RecoveryConfig.log_mirror``) vs a
  single copy, across arrival rates.  No faults are injected: this
  isolates the normal-operation cost that buys single-copy-loss
  survival.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import DeviceFault
from repro.experiments.api import (
    CurveSpec,
    ExperimentSpec,
    SweepProfile,
    experiment,
)
from repro.experiments.defaults import debit_credit_config, disk_only
from repro.experiments.fig4_1 import log_in_nvem
from repro.experiments.runner import ExperimentResult
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["MEDIA_TPS", "media_recovery_summary", "mirroring_summary"]

#: Arrival rate of the media-recovery sweep — moderate, so the
#: degraded window shows delivered (not saturated) throughput.
MEDIA_TPS = 40.0

#: Loss instants sit just before an archiver tick: with intervals from
#: the sweep grid, the newest archive at the loss is ~one interval old
#: for the smallest x and the run start for the largest.
FAST_LOSS_AT = 7.9
FULL_LOSS_AT = 15.9

#: Coarser restore extents than the config default keep the 5.5M-page
#: rebuild inside the sweep windows without changing its shape.
ARCHIVE_BATCH_PAGES = 4096


def _media_config(scheme_fn, archive_interval: float, loss_at: float,
                  log_mirror: bool = False):
    config = debit_credit_config(scheme_fn())
    config.media.enabled = True
    config.media.faults = (
        DeviceFault(device="db0", time=loss_at, kind="loss"),
    )
    config.media.archive_interval = archive_interval
    config.media.archive_batch_pages = ARCHIVE_BATCH_PAGES
    config.recovery.log_mirror = log_mirror
    return config


def _media_curves(profile: str) -> List[CurveSpec]:
    loss_at = FULL_LOSS_AT if profile == "full" else FAST_LOSS_AT
    placements = [
        ("disk log", disk_only, False),
        ("NVEM log", log_in_nvem, False),
        ("NVEM log mirrored", log_in_nvem, True),
    ]

    def curve(label, scheme_fn, mirror):
        def build(interval: float) -> Tuple:
            config = _media_config(scheme_fn, interval, loss_at,
                                   log_mirror=mirror)
            return config, DebitCreditWorkload(arrival_rate=MEDIA_TPS)

        return CurveSpec(label=label, build=build)

    return [curve(*placement) for placement in placements]


def media_recovery_summary(result: ExperimentResult):
    """{label: {interval: degraded dict}} for tests and reports."""
    return {
        series.label: {
            point.x: dict(point.results.degraded or {})
            for point in series.points
        }
        for series in result.series
    }


def _media_render(result: ExperimentResult) -> str:
    lines = [result.to_table(metric=lambda r: r.media_mttr_mean,
                             fmt="{:8.2f}")]
    for series in result.series:
        for point in series.points:
            r = point.results
            deg = r.degraded or {}
            lines.append(
                f"  {series.label:18s} interval={point.x:g}: "
                f"rebuild {r.media_mttr_mean:6.2f} s, "
                f"{r.degraded_tps:5.1f} TPS degraded "
                f"({r.throughput:5.1f} overall), "
                f"{int(deg.get('media_restore_pages', 0))} restored + "
                f"{int(deg.get('media_redo_pages', 0))} redone pages, "
                f"{int(deg.get('media_log_pages', 0))} log pages"
            )
    return "\n".join(lines)


@experiment("fig_media_recovery")
def media_recovery_spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="fig_media_recovery",
        title="Media recovery: rebuild time & degraded TPS vs "
              "archive age x log placement",
        x_label="archive interval (s); db0 lost just before a tick",
        y_label="device rebuild time (s)",
        curves=_media_curves,
        profiles={
            # The window must contain the loss AND the full rebuild.
            "full": SweepProfile(xs=(4.0, 8.0, 16.0), warmup=3.0,
                                 duration=70.0),
            "fast": SweepProfile(xs=(4.0, 8.0), warmup=2.0,
                                 duration=40.0),
        },
        notes=(
            "expected: rebuild time grows with the archive age (the "
            "post-archive log scan and stale-page redo scale with it); "
            "an NVEM log removes the log-scan share; mirroring adds "
            "its commit-latency cost but not rebuild time; delivered "
            "TPS stays positive through the whole rebuild",
        ),
        metric=lambda r: r.media_mttr_mean,
        metric_fmt="{:8.2f}",
        renderer=_media_render,
        truncate_on_saturation=False,
    )


# ---------------------------------------------------------------------------
# Dual-copy mirroring cost


def _mirroring_curves() -> List[CurveSpec]:
    def curve(label, mirror):
        def build(rate: float) -> Tuple:
            config = debit_credit_config(log_in_nvem())
            config.recovery.log_mirror = mirror
            return config, DebitCreditWorkload(arrival_rate=rate)

        return CurveSpec(label=label, build=build)

    return [curve("single log copy", False),
            curve("dual copy (mirrored)", True)]


def mirroring_summary(result: ExperimentResult):
    """{label: {rate: mean response (ms)}}."""
    return {
        series.label: {
            point.x: point.results.response_time_ms
            for point in series.points
        }
        for series in result.series
    }


def _mirroring_render(result: ExperimentResult) -> str:
    lines = [result.to_table(
        metric=lambda r: r.response_time_ms, fmt="{:8.2f}")]
    by_label = mirroring_summary(result)
    single = by_label.get("single log copy", {})
    dual = by_label.get("dual copy (mirrored)", {})
    for x in sorted(set(single) & set(dual)):
        lines.append(
            f"  rate={x:g}: mirroring penalty "
            f"{dual[x] - single[x]:+6.3f} ms per transaction"
        )
    return "\n".join(lines)


@experiment("ablation_mirroring")
def mirroring_spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="ablation_mirroring",
        title="Commit-latency cost of dual-copy NVEM log mirroring",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms)",
        curves=_mirroring_curves(),
        profiles={
            "full": SweepProfile(xs=(50.0, 150.0, 300.0), warmup=3.0,
                                 duration=40.0),
            "fast": SweepProfile(xs=(50.0, 150.0), warmup=2.0,
                                 duration=20.0),
        },
        notes=(
            "expected: a second synchronous NVEM force adds a small "
            "constant to commit latency (one extra NVEM access + its "
            "instruction cost per log page) that survives the loss of "
            "either copy; against disk-log placements the penalty is "
            "noise",
        ),
        metric=lambda r: r.response_time_ms,
        metric_fmt="{:8.2f}",
        renderer=_mirroring_render,
        truncate_on_saturation=False,
    )
