"""Figure 4.8 — page- vs. object-level locking under data contention.

The §4.7 synthetic workload: one transaction type of variable size
(mean 10 object accesses, all updates); 80% of accesses go to a small
partition of 10,000 objects, 20% to a larger one of 100,000 objects
(blocking factor 10 for both, i.e. 1,000 and 10,000 pages).  Three
storage allocations are crossed with two lock granularities:

* disk-based — both partitions and the log on disks;
* mixed — the small partition and the log in NVEM, the large partition
  on disk;
* NVEM-resident — everything in NVEM.

Expected shape (paper): with page-level locking the disk-based and
mixed allocations thrash on locks (throughput limits near 120 and 150
TPS); object-level locking removes the bottleneck; with everything
NVEM-resident even page locking sustains 700 TPS because I/O delays —
and hence lock holding times — nearly vanish.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import (
    CCMode,
    LogAllocation,
    NVEM,
    PartitionConfig,
    SystemConfig,
    TransactionTypeConfig,
)
from repro.experiments.api import (
    CurveSpec,
    ExperimentRunner,
    ExperimentSpec,
    SweepProfile,
    experiment,
    get_experiment,
    legacy_run,
)
from repro.experiments.defaults import (
    db_disk_unit,
    default_cm,
    default_nvem,
    log_disk_unit,
)
from repro.experiments.runner import ExperimentResult
from repro.workload.synthetic import SyntheticWorkload

__all__ = ["ALLOCATIONS", "build_config", "run", "spec"]

RATES = [10, 50, 100, 150, 200, 300, 500, 700]
FAST_RATES = [50, 150]

#: (label prefix, small-partition allocation, large-partition allocation,
#:  log device)
ALLOCATIONS = [
    ("disk-based", "db0", "db0", "log0"),
    ("mixed", NVEM, "db0", NVEM),
    ("NVEM-resident", NVEM, NVEM, NVEM),
]


def build_config(small_alloc: str, large_alloc: str, log_device: str,
                 cc_mode: CCMode, arrival_rate: float,
                 seed: int = 1) -> SystemConfig:
    partitions = [
        PartitionConfig(
            name="small",
            num_objects=10_000,
            block_factor=10,
            cc_mode=cc_mode,
            allocation=small_alloc,
        ),
        PartitionConfig(
            name="large",
            num_objects=100_000,
            block_factor=10,
            cc_mode=cc_mode,
            allocation=large_alloc,
        ),
    ]
    units = []
    if "db0" in (small_alloc, large_alloc):
        units.append(db_disk_unit("db0"))
    if log_device == "log0":
        units.append(log_disk_unit("log0", num_disks=8))
    tx_type = TransactionTypeConfig(
        name="update",
        arrival_rate=arrival_rate,
        tx_size=10,
        write_prob=1.0,
        reference_matrix={"small": 0.8, "large": 0.2},
        var_size=True,
    )
    cm = default_cm(buffer_size=2000)
    # "Like for Debit-Credit, an average pathlength of 250,000
    # instructions per transaction has been chosen" (§4.7): with ten
    # object references that means 16k instructions per reference
    # (40k BOT + 10 x 16k + 50k EOT = 250k), so the CPU capacity is
    # the same 800 TPS as in the Debit-Credit experiments.
    cm.instr_or = 16_000
    config = SystemConfig(
        partitions=partitions,
        disk_units=units,
        nvem=default_nvem(),
        cm=cm,
        log=LogAllocation(device=log_device),
        tx_types=[tx_type],
        seed=seed,
    )
    config.validate()
    return config


def _curves() -> List[CurveSpec]:
    curves = []
    for label, small_alloc, large_alloc, log_device in ALLOCATIONS:
        for cc_mode in (CCMode.PAGE, CCMode.OBJECT):
            if label == "NVEM-resident" and cc_mode is CCMode.OBJECT:
                # The paper plots NVEM-resident only with page locks
                # (object locks are trivially fine there too).
                continue

            def build(rate: float, small_alloc=small_alloc,
                      large_alloc=large_alloc, log_device=log_device,
                      cc_mode=cc_mode) -> Tuple:
                config = build_config(small_alloc, large_alloc,
                                      log_device, cc_mode, rate)
                return config, SyntheticWorkload(config)

            curves.append(CurveSpec(
                label=f"{label} - {cc_mode.value} locks", build=build,
            ))
    return curves


@experiment("fig4_8")
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="fig4_8",
        title="Page- vs object-locking for different allocation "
              "strategies (§4.7 workload)",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms); * = saturated (lock thrash)",
        curves=_curves(),
        profiles={
            "full": SweepProfile(xs=tuple(RATES), warmup=3.0, duration=8.0),
            "fast": SweepProfile(xs=tuple(FAST_RATES), warmup=3.0,
                                 duration=4.0),
        },
        notes=(
            "expected: page locks thrash near 120 TPS (disk) / 150 TPS "
            "(mixed); object locks remove the bottleneck; NVEM-resident "
            "never thrashes",
        ),
    )


def run(fast: bool = False, duration: Optional[float] = None,
        parallel: bool = False) -> ExperimentResult:
    """Deprecated: resolve ``fig4_8`` through the registry instead."""
    return legacy_run("fig4_8", fast, duration, parallel)


def main() -> None:  # pragma: no cover - convenience entry point
    print(ExperimentRunner().run_one(get_experiment("fig4_8")).to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
