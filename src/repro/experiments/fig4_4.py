"""Figure 4.4 — caching for different main-memory buffer sizes
(Debit-Credit, NOFORCE, 500 TPS).

The main-memory buffer varies from 200 to 5000 pages against six
second-level configurations: none, a volatile disk cache (1000 pages),
a non-volatile disk-cache write buffer, a non-volatile disk cache
(1000), and NVEM caches of 500 and 1000 pages.

Expected shape (paper): growing the MM buffer matters most below 2000
pages (the BRANCH/TELLER working set); the volatile disk cache helps
only while it is larger than the MM buffer; non-volatile memory
dominates because all synchronous writes disappear; even a 500-page
NVEM cache beats a 1000-page non-volatile disk cache.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.api import (
    CurveSpec,
    ExperimentRunner,
    ExperimentSpec,
    SweepProfile,
    experiment,
    get_experiment,
    legacy_run,
)
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    second_level_cache_scheme,
)
from repro.experiments.runner import ExperimentResult
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["CONFIGURATIONS", "build_config", "run", "spec"]

BUFFER_SIZES = [200, 500, 1000, 2000, 5000]
FAST_BUFFER_SIZES = [500, 2000]
ARRIVAL_RATE = 500.0

#: (label, second-level kind, second-level size); kind=None -> MM only.
CONFIGURATIONS = [
    ("MM caching only", None, 0),
    ("vol. disk cache 1000", "volatile", 1000),
    ("write buffer (nv cache)", "write-buffer", 500),
    ("nv disk cache 1000", "nonvolatile", 1000),
    ("NVEM buffer 500", "nvem", 500),
    ("NVEM buffer 1000", "nvem", 1000),
]


def build_config(kind, size, mm_size: int):
    scheme = disk_only() if kind is None else \
        second_level_cache_scheme(kind, size)
    return debit_credit_config(scheme, buffer_size=mm_size)


def _curves() -> List[CurveSpec]:
    def curve(label, kind, size):
        def build(mm: float) -> Tuple:
            config = build_config(kind, size, int(mm))
            workload = DebitCreditWorkload(arrival_rate=ARRIVAL_RATE)
            return config, workload

        return CurveSpec(label=label, build=build)

    return [curve(label, kind, size)
            for label, kind, size in CONFIGURATIONS]


@experiment("fig4_4")
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="fig4_4",
        title="Impact of caching for different MM buffer sizes "
              "(NOFORCE, 500 TPS)",
        x_label="MM buffer (pages)",
        y_label="mean response time (ms); * = saturated",
        curves=_curves(),
        profiles={
            "full": SweepProfile(xs=tuple(BUFFER_SIZES), warmup=3.0,
                                 duration=8.0),
            "fast": SweepProfile(xs=tuple(FAST_BUFFER_SIZES), warmup=3.0,
                                 duration=4.0),
        },
        notes=(
            "expected: vol. cache converges to MM-only once MM >= cache; "
            "nv memory variants dominate; NVEM 500 beats nv disk cache "
            "1000",
        ),
    )


def run(fast: bool = False, duration: Optional[float] = None,
        parallel: bool = False) -> ExperimentResult:
    """Deprecated: resolve ``fig4_4`` through the registry instead."""
    return legacy_run("fig4_4", fast, duration, parallel)


def main() -> None:  # pragma: no cover - convenience entry point
    print(ExperimentRunner().run_one(get_experiment("fig4_4")).to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
