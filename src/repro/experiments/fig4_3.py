"""Figure 4.3 — FORCE vs. NOFORCE update strategy (Debit-Credit).

Three storage allocations (plain disks, disks with non-volatile cache
write buffers, NVEM-resident) are run under both update strategies.

Expected shape (paper): FORCE costs ~2–3 extra page writes per commit,
a heavy penalty on disks but shrinking as the write target gets faster;
FORCE with a write buffer beats disk-based NOFORCE; with NVEM residence
the two strategies are nearly indistinguishable.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import UpdateStrategy
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    disk_with_nv_cache_write_buffer,
    nvem_resident,
)
from repro.experiments.runner import ExperimentResult, sweep
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["ALTERNATIVES", "run"]

RATES = [100, 200, 300, 400, 500, 600, 700]
FAST_RATES = [100, 500]

ALTERNATIVES = [
    ("FORCE: disk", disk_only, UpdateStrategy.FORCE),
    ("NOFORCE: disk", disk_only, UpdateStrategy.NOFORCE),
    ("FORCE: cache WB", disk_with_nv_cache_write_buffer,
     UpdateStrategy.FORCE),
    ("NOFORCE: cache WB", disk_with_nv_cache_write_buffer,
     UpdateStrategy.NOFORCE),
    ("FORCE: NVEM", nvem_resident, UpdateStrategy.FORCE),
    ("NOFORCE: NVEM", nvem_resident, UpdateStrategy.NOFORCE),
]


def run(fast: bool = False, duration: float = None,
        parallel: bool = False) -> ExperimentResult:
    rates = FAST_RATES if fast else RATES
    duration = duration or (4.0 if fast else 8.0)
    result = ExperimentResult(
        experiment_id="Fig4.3",
        title="FORCE vs NOFORCE (Debit-Credit)",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms); * = saturated",
    )
    for label, scheme_fn, strategy in ALTERNATIVES:
        def build(rate: float, scheme_fn=scheme_fn,
                  strategy=strategy) -> Tuple:
            config = debit_credit_config(scheme_fn(),
                                         update_strategy=strategy)
            workload = DebitCreditWorkload(arrival_rate=rate)
            return config, workload

        result.series.append(
            sweep(label, rates, build, warmup=3.0, duration=duration,
                  parallel=parallel and not fast)
        )
    result.notes.append(
        "expected: FORCE>>NOFORCE on disk; gap shrinks with write "
        "buffers; FORCE+WB beats disk-based NOFORCE; ~equal on NVEM"
    )
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
