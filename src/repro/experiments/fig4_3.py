"""Figure 4.3 — FORCE vs. NOFORCE update strategy (Debit-Credit).

Three storage allocations (plain disks, disks with non-volatile cache
write buffers, NVEM-resident) are run under both update strategies.

Expected shape (paper): FORCE costs ~2–3 extra page writes per commit,
a heavy penalty on disks but shrinking as the write target gets faster;
FORCE with a write buffer beats disk-based NOFORCE; with NVEM residence
the two strategies are nearly indistinguishable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import UpdateStrategy
from repro.experiments.api import (
    CurveSpec,
    ExperimentRunner,
    ExperimentSpec,
    SweepProfile,
    experiment,
    get_experiment,
    legacy_run,
)
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    disk_with_nv_cache_write_buffer,
    nvem_resident,
)
from repro.experiments.runner import ExperimentResult
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["ALTERNATIVES", "run", "spec"]

RATES = [100, 200, 300, 400, 500, 600, 700]
FAST_RATES = [100, 500]

ALTERNATIVES = [
    ("FORCE: disk", disk_only, UpdateStrategy.FORCE),
    ("NOFORCE: disk", disk_only, UpdateStrategy.NOFORCE),
    ("FORCE: cache WB", disk_with_nv_cache_write_buffer,
     UpdateStrategy.FORCE),
    ("NOFORCE: cache WB", disk_with_nv_cache_write_buffer,
     UpdateStrategy.NOFORCE),
    ("FORCE: NVEM", nvem_resident, UpdateStrategy.FORCE),
    ("NOFORCE: NVEM", nvem_resident, UpdateStrategy.NOFORCE),
]


def _curves() -> List[CurveSpec]:
    def curve(label, scheme_fn, strategy):
        def build(rate: float) -> Tuple:
            config = debit_credit_config(scheme_fn(),
                                         update_strategy=strategy)
            workload = DebitCreditWorkload(arrival_rate=rate)
            return config, workload

        return CurveSpec(label=label, build=build)

    return [curve(label, scheme_fn, strategy)
            for label, scheme_fn, strategy in ALTERNATIVES]


@experiment("fig4_3")
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="fig4_3",
        title="FORCE vs NOFORCE (Debit-Credit)",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms); * = saturated",
        curves=_curves(),
        profiles={
            "full": SweepProfile(xs=tuple(RATES), warmup=3.0, duration=8.0),
            "fast": SweepProfile(xs=tuple(FAST_RATES), warmup=3.0,
                                 duration=4.0),
        },
        notes=(
            "expected: FORCE>>NOFORCE on disk; gap shrinks with write "
            "buffers; FORCE+WB beats disk-based NOFORCE; ~equal on NVEM",
        ),
    )


def run(fast: bool = False, duration: Optional[float] = None,
        parallel: bool = False) -> ExperimentResult:
    """Deprecated: resolve ``fig4_3`` through the registry instead."""
    return legacy_run("fig4_3", fast, duration, parallel)


def main() -> None:  # pragma: no cover - convenience entry point
    print(ExperimentRunner().run_one(get_experiment("fig4_3")).to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
