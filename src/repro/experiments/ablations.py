"""Ablation studies for design choices the paper discusses but fixes.

Four ablations, each toggling one mechanism the paper names:

* **Group commit** (§3.2 footnote 3, §4.2): batching log writes of
  multiple transactions into one I/O.  The paper argues non-volatile
  semiconductor memory removes the need for it — we measure both the
  single-log-disk configuration (where group commit lifts the ~200 TPS
  throughput wall) and the NVEM log (where it changes almost nothing).
* **Asynchronous page replacement** (§4.3): writing replacement victims
  to disk without blocking the faulting transaction.  The paper notes a
  smarter buffer manager would cut the disk configuration's response
  time by one disk write; we measure exactly that.
* **Deferred NVEM propagation** (§3.2): postponing the disk update of
  modified pages in the NVEM cache until replacement, instead of
  starting it immediately.
* **NVEM migration modes** (§3.2/§4.6): which pages move from main
  memory into the NVEM cache — modified only, unmodified only, or all.
  The paper found "the best NVEM hit ratios result if all pages
  migrate" for the read-dominated trace workload.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.config import NVEMCachingMode, UpdateStrategy
from repro.core.model import TransactionSystem
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    second_level_cache_scheme,
)
from repro.experiments.fig4_1 import log_on_single_disk
from repro.experiments.runner import ExperimentResult, Series, SeriesPoint
from repro.experiments.trace_setup import (
    MEAN_TX_SIZE,
    trace_config,
    trace_for,
    trace_workload,
)
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = [
    "run_async_replacement",
    "run_deferred_propagation",
    "run_group_commit",
    "run_migration_modes",
]


def _measure(config, workload, warmup: float = 3.0,
             duration: float = 8.0):
    system = TransactionSystem(config, workload)
    return system.run(warmup=warmup, duration=duration)


def run_group_commit(fast: bool = False) -> ExperimentResult:
    """Group commit on a single log disk vs. an NVEM log."""
    duration = 4.0 if fast else 8.0
    rates = [100, 200, 300] if fast else [100, 200, 300, 400, 500]
    result = ExperimentResult(
        experiment_id="Ablation-GC",
        title="Group commit (size 8) vs single log writes",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms); * = saturated",
    )
    variants = [
        ("log disk, no GC", log_on_single_disk, 1),
        ("log disk, GC=8", log_on_single_disk, 8),
    ]
    for label, scheme_fn, gc_size in variants:
        series = Series(label=label)
        for rate in rates:
            config = debit_credit_config(scheme_fn())
            config.cm.group_commit_size = gc_size
            config.cm.group_commit_timeout = 0.002
            results = _measure(config,
                               DebitCreditWorkload(arrival_rate=rate),
                               duration=duration)
            series.points.append(SeriesPoint(x=rate, results=results))
            if results.saturated:
                break
        result.series.append(series)
    result.notes.append(
        "expected: group commit raises the single-log-disk saturation "
        "point well beyond 200 TPS"
    )
    return result


def run_async_replacement(fast: bool = False) -> ExperimentResult:
    """Asynchronous replacement write-back on the disk configuration."""
    duration = 4.0 if fast else 8.0
    rates = [100, 500] if fast else [100, 300, 500, 700]
    result = ExperimentResult(
        experiment_id="Ablation-AR",
        title="Asynchronous page replacement (disk configuration)",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms)",
    )
    for label, flag in (("sync write-back", False),
                        ("async write-back", True)):
        series = Series(label=label)
        for rate in rates:
            config = debit_credit_config(disk_only())
            config.cm.async_replacement = flag
            results = _measure(config,
                               DebitCreditWorkload(arrival_rate=rate),
                               duration=duration)
            series.points.append(SeriesPoint(x=rate, results=results))
            if results.saturated:
                break
        result.series.append(series)
    result.notes.append(
        "expected: async write-back removes ~one 16.4 ms disk write "
        "from response time, most of the write-buffer benefit"
    )
    return result


def run_deferred_propagation(fast: bool = False) -> ExperimentResult:
    """Immediate vs deferred NVEM-to-disk propagation (FORCE)."""
    duration = 4.0 if fast else 8.0
    rates = [100, 300] if fast else [100, 300, 500]
    result = ExperimentResult(
        experiment_id="Ablation-DP",
        title="Deferred NVEM->disk propagation (FORCE, NVEM cache 1000)",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms)",
    )
    for label, flag in (("immediate propagation", False),
                        ("deferred propagation", True)):
        series = Series(label=label)
        for rate in rates:
            config = debit_credit_config(
                second_level_cache_scheme("nvem", 1000),
                update_strategy=UpdateStrategy.FORCE,
            )
            config.cm.deferred_nvem_propagation = flag
            results = _measure(config,
                               DebitCreditWorkload(arrival_rate=rate),
                               duration=duration)
            series.points.append(SeriesPoint(x=rate, results=results))
            if results.saturated:
                break
        result.series.append(series)
    result.notes.append(
        "expected: deferral saves repeated disk writes for re-modified "
        "pages but adds NVEM reads at replacement (§3.2's trade-off)"
    )
    return result


def run_migration_modes(fast: bool = False) -> Dict[str, Tuple[float, float]]:
    """NVEM migration modes on the trace workload.

    Returns {mode: (nvem hit ratio %, normalized response ms)}.
    """
    duration = 15.0 if fast else 40.0
    trace = trace_for(fast)
    out: Dict[str, Tuple[float, float]] = {}
    for mode in (NVEMCachingMode.MODIFIED, NVEMCachingMode.UNMODIFIED,
                 NVEMCachingMode.ALL):
        config = trace_config(trace, "nvem", mm_size=1000,
                              second_level=2000)
        for part in config.partitions:
            part.nvem_caching = mode
        results = _measure(config, trace_workload(trace), warmup=4.0,
                           duration=duration)
        out[mode.value] = (
            results.hit_ratio("nvem_cache") * 100,
            results.normalized_response_time(MEAN_TX_SIZE) * 1000,
        )
    return out


def main() -> None:  # pragma: no cover - convenience entry point
    print(run_group_commit().to_table())
    print()
    print(run_async_replacement().to_table())
    print()
    print(run_deferred_propagation().to_table())
    print()
    print("NVEM migration modes (trace):")
    for mode, (hit, rt) in run_migration_modes().items():
        print(f"  {mode:12s} nvem_hit={hit:5.1f}%  rt={rt:7.1f} ms")


if __name__ == "__main__":  # pragma: no cover
    main()
