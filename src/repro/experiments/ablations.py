"""Ablation studies for design choices the paper discusses but fixes.

Four ablations, each toggling one mechanism the paper names:

* **Group commit** (§3.2 footnote 3, §4.2): batching log writes of
  multiple transactions into one I/O.  The paper argues non-volatile
  semiconductor memory removes the need for it — we measure the
  single-log-disk configuration, where group commit lifts the ~200 TPS
  throughput wall.
* **Asynchronous page replacement** (§4.3): writing replacement victims
  to disk without blocking the faulting transaction.  The paper notes a
  smarter buffer manager would cut the disk configuration's response
  time by one disk write; we measure exactly that.
* **Deferred NVEM propagation** (§3.2): postponing the disk update of
  modified pages in the NVEM cache until replacement, instead of
  starting it immediately.
* **NVEM migration modes** (§3.2/§4.6): which pages move from main
  memory into the NVEM cache — modified only, unmodified only, or all.
  The paper found "the best NVEM hit ratios result if all pages
  migrate" for the read-dominated trace workload.

Each ablation is a registered experiment (``ablation_group_commit``,
``ablation_async_replacement``, ``ablation_deferred_propagation``,
``ablation_migration_modes``); the historical ``run_*`` helpers remain
as deprecated wrappers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.config import NVEMCachingMode, UpdateStrategy
from repro.experiments.api import (
    CurveSpec,
    ExperimentRunner,
    ExperimentSpec,
    SweepProfile,
    experiment,
    get_experiment,
    legacy_run,
)
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    second_level_cache_scheme,
)
from repro.experiments.fig4_1 import log_on_single_disk
from repro.experiments.runner import ExperimentResult
from repro.experiments.trace_setup import (
    MEAN_TX_SIZE,
    trace_config,
    trace_for,
    trace_workload,
)
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = [
    "migration_summary",
    "run_async_replacement",
    "run_deferred_propagation",
    "run_group_commit",
    "run_migration_modes",
]


# ---------------------------------------------------------------------------
# Group commit


def _gc_curves() -> List[CurveSpec]:
    def curve(label, gc_size):
        def build(rate: float) -> Tuple:
            config = debit_credit_config(log_on_single_disk())
            config.cm.group_commit_size = gc_size
            config.cm.group_commit_timeout = 0.002
            return config, DebitCreditWorkload(arrival_rate=rate)

        return CurveSpec(label=label, build=build)

    return [curve("log disk, no GC", 1), curve("log disk, GC=8", 8)]


@experiment("ablation_group_commit")
def gc_spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="ablation_group_commit",
        title="Group commit (size 8) vs single log writes",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms); * = saturated",
        curves=_gc_curves(),
        profiles={
            "full": SweepProfile(xs=(100, 200, 300, 400, 500),
                                 warmup=3.0, duration=8.0),
            "fast": SweepProfile(xs=(100, 200, 300), warmup=3.0,
                                 duration=4.0),
        },
        notes=(
            "expected: group commit raises the single-log-disk "
            "saturation point well beyond 200 TPS",
        ),
    )


# ---------------------------------------------------------------------------
# Asynchronous page replacement


def _ar_curves() -> List[CurveSpec]:
    def curve(label, flag):
        def build(rate: float) -> Tuple:
            config = debit_credit_config(disk_only())
            config.cm.async_replacement = flag
            return config, DebitCreditWorkload(arrival_rate=rate)

        return CurveSpec(label=label, build=build)

    return [curve("sync write-back", False), curve("async write-back", True)]


@experiment("ablation_async_replacement")
def ar_spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="ablation_async_replacement",
        title="Asynchronous page replacement (disk configuration)",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms)",
        curves=_ar_curves(),
        profiles={
            "full": SweepProfile(xs=(100, 300, 500, 700), warmup=3.0,
                                 duration=8.0),
            "fast": SweepProfile(xs=(100, 500), warmup=3.0, duration=4.0),
        },
        notes=(
            "expected: async write-back removes ~one 16.4 ms disk write "
            "from response time, most of the write-buffer benefit",
        ),
    )


# ---------------------------------------------------------------------------
# Deferred NVEM propagation


def _dp_curves() -> List[CurveSpec]:
    def curve(label, flag):
        def build(rate: float) -> Tuple:
            config = debit_credit_config(
                second_level_cache_scheme("nvem", 1000),
                update_strategy=UpdateStrategy.FORCE,
            )
            config.cm.deferred_nvem_propagation = flag
            return config, DebitCreditWorkload(arrival_rate=rate)

        return CurveSpec(label=label, build=build)

    return [curve("immediate propagation", False),
            curve("deferred propagation", True)]


@experiment("ablation_deferred_propagation")
def dp_spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="ablation_deferred_propagation",
        title="Deferred NVEM->disk propagation (FORCE, NVEM cache 1000)",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms)",
        curves=_dp_curves(),
        profiles={
            "full": SweepProfile(xs=(100, 300, 500), warmup=3.0,
                                 duration=8.0),
            "fast": SweepProfile(xs=(100, 300), warmup=3.0, duration=4.0),
        },
        notes=(
            "expected: deferral saves repeated disk writes for "
            "re-modified pages but adds NVEM reads at replacement "
            "(§3.2's trade-off)",
        ),
    )


# ---------------------------------------------------------------------------
# NVEM migration modes (trace workload)

#: The second-level NVEM cache size all migration modes run against.
MIGRATION_CACHE_SIZE = 2000
MIGRATION_MODES = (NVEMCachingMode.MODIFIED, NVEMCachingMode.UNMODIFIED,
                   NVEMCachingMode.ALL)


def _mm_curves(profile: str) -> List[CurveSpec]:
    trace = trace_for(profile == "fast")

    def curve(mode):
        def build(size: float) -> Tuple:
            config = trace_config(trace, "nvem", mm_size=1000,
                                  second_level=int(size))
            for part in config.partitions:
                part.nvem_caching = mode
            return config, trace_workload(trace)

        return CurveSpec(label=mode.value, build=build)

    return [curve(mode) for mode in MIGRATION_MODES]


def migration_summary(result: ExperimentResult
                      ) -> Dict[str, Tuple[float, float]]:
    """{mode: (NVEM hit ratio %, normalized response ms)}."""
    out: Dict[str, Tuple[float, float]] = {}
    for series in result.series:
        r = series.points[0].results
        out[series.label] = (
            r.hit_ratio("nvem_cache") * 100,
            r.normalized_response_time(MEAN_TX_SIZE) * 1000,
        )
    return out


def _mm_render(result: ExperimentResult) -> str:
    lines = ["NVEM migration modes (trace workload):"]
    for mode, (hit, rt) in migration_summary(result).items():
        lines.append(f"  {mode:12s} nvem_hit={hit:5.1f}%  rt={rt:7.1f} ms")
    return "\n".join(lines)


@experiment("ablation_migration_modes")
def mm_spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="ablation_migration_modes",
        title="NVEM migration modes (trace workload, MM=1000)",
        x_label="NVEM cache (pages)",
        y_label="NVEM hit ratio / normalized response time",
        curves=_mm_curves,
        profiles={
            "full": SweepProfile(xs=(MIGRATION_CACHE_SIZE,), warmup=4.0,
                                 duration=40.0),
            "fast": SweepProfile(xs=(MIGRATION_CACHE_SIZE,), warmup=4.0,
                                 duration=15.0),
        },
        notes=(
            "expected: migrating all pages gives the best NVEM hit "
            "ratios (§4.6)",
        ),
        metric=lambda r: r.hit_ratio("nvem_cache") * 100,
        metric_fmt="{:8.1f}",
        renderer=_mm_render,
        truncate_on_saturation=False,
    )


# ---------------------------------------------------------------------------
# Deprecated wrappers


def run_group_commit(fast: bool = False) -> ExperimentResult:
    """Deprecated: use the ``ablation_group_commit`` experiment."""
    return legacy_run("ablation_group_commit", fast)


def run_async_replacement(fast: bool = False) -> ExperimentResult:
    """Deprecated: use the ``ablation_async_replacement`` experiment."""
    return legacy_run("ablation_async_replacement", fast)


def run_deferred_propagation(fast: bool = False) -> ExperimentResult:
    """Deprecated: use the ``ablation_deferred_propagation`` experiment."""
    return legacy_run("ablation_deferred_propagation", fast)


def run_migration_modes(fast: bool = False
                        ) -> Dict[str, Tuple[float, float]]:
    """Deprecated: use the ``ablation_migration_modes`` experiment.

    Returns {mode: (nvem hit ratio %, normalized response ms)}.
    """
    return migration_summary(legacy_run("ablation_migration_modes", fast))


def main() -> None:  # pragma: no cover - convenience entry point
    runner = ExperimentRunner()
    for exp_id in ("ablation_group_commit", "ablation_async_replacement",
                   "ablation_deferred_propagation",
                   "ablation_migration_modes"):
        spec = get_experiment(exp_id)
        print(spec.render(runner.run_one(spec)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
