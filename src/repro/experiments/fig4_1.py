"""Figure 4.1 — influence of log file allocation (Debit-Credit, NOFORCE).

Four log allocations are compared while all database partitions stay on
plain disks sized to avoid bottlenecks:

1. log on a single disk;
2. log on a single disk whose controller has a non-volatile cache used
   as a write buffer (500 pages);
3. log on solid-state disk;
4. log in non-volatile extended memory.

Expected shape (paper): the single log disk saturates around 180–200
TPS (5 ms service time); the write buffer keeps response times low and
flat until the same disk-rate limit; SSD and NVEM logs sustain 700 TPS,
NVEM with the lowest response times.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import (
    DiskUnitType,
    LogAllocation,
    NVEM,
)
from repro.experiments.api import (
    CurveSpec,
    ExperimentRunner,
    ExperimentSpec,
    SweepProfile,
    experiment,
    get_experiment,
    legacy_run,
)
from repro.experiments.defaults import (
    StorageScheme,
    db_disk_unit,
    debit_credit_config,
    log_disk_unit,
)
from repro.experiments.runner import ExperimentResult
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["ALTERNATIVES", "run", "spec"]

RATES = [10, 50, 100, 150, 200, 300, 500, 700]
FAST_RATES = [50, 200, 500]


def _scheme(log_units, log_alloc: LogAllocation) -> StorageScheme:
    return StorageScheme(
        name="fig4.1",
        db_allocation="db0",
        bt_allocation="bt0",
        log=log_alloc,
        disk_units=[
            db_disk_unit("db0"),
            db_disk_unit("bt0", num_disks=24, num_controllers=4),
            *log_units,
        ],
    )


def log_on_single_disk() -> StorageScheme:
    return _scheme([log_disk_unit("log0", num_disks=1)],
                   LogAllocation(device="log0"))


def log_on_disk_with_nv_cache(cache_size: int = 500) -> StorageScheme:
    return _scheme(
        [log_disk_unit("log0", num_disks=1,
                       unit_type=DiskUnitType.NONVOLATILE_CACHE,
                       cache_size=cache_size, write_buffer_only=True)],
        LogAllocation(device="log0"),
    )


def log_on_ssd() -> StorageScheme:
    return _scheme(
        [log_disk_unit("ssdlog", unit_type=DiskUnitType.SSD,
                       num_controllers=2)],
        LogAllocation(device="ssdlog"),
    )


def log_in_nvem() -> StorageScheme:
    return _scheme([], LogAllocation(device=NVEM))


ALTERNATIVES = [
    ("log on single disk", log_on_single_disk),
    ("disk + nv cache WB", log_on_disk_with_nv_cache),
    ("log on SSD", log_on_ssd),
    ("log in NVEM", log_in_nvem),
]


def _curves() -> List[CurveSpec]:
    def curve(label, scheme_fn):
        def build(rate: float) -> Tuple:
            config = debit_credit_config(scheme_fn())
            workload = DebitCreditWorkload(arrival_rate=rate)
            return config, workload

        return CurveSpec(label=label, build=build)

    return [curve(label, scheme_fn) for label, scheme_fn in ALTERNATIVES]


@experiment("fig4_1")
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="fig4_1",
        title="Influence of log file allocation (Debit-Credit, NOFORCE)",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms); * = saturated",
        curves=_curves(),
        profiles={
            "full": SweepProfile(xs=tuple(RATES), warmup=3.0, duration=8.0),
            "fast": SweepProfile(xs=tuple(FAST_RATES), warmup=3.0,
                                 duration=4.0),
        },
        notes=(
            "expected: single log disk saturates near 200 TPS; write "
            "buffer stays flat to the same limit; SSD/NVEM carry 700 "
            "TPS, NVEM best",
        ),
    )


def run(fast: bool = False, duration: Optional[float] = None,
        parallel: bool = False) -> ExperimentResult:
    """Deprecated: resolve ``fig4_1`` through the registry instead."""
    return legacy_run("fig4_1", fast, duration, parallel)


def main() -> None:  # pragma: no cover - convenience entry point
    print(ExperimentRunner().run_one(get_experiment("fig4_1")).to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
