"""Cluster experiments: throughput scaling and the cost of 2PC (§2, §4).

Two registered experiments connect the sharded multi-node subsystem
(:mod:`repro.cluster`) to the paper's workload-allocation argument —
horizontal growth only pays if node-crossing transactions stay cheap,
which is precisely what NVEM log placement buys when every distributed
commit forces *two* log records (prepare + decision):

* ``fig_scaling`` — throughput vs. node count at a fixed per-node
  arrival rate, for a purely partitionable workload (0% distributed)
  and a 15%-distributed workload under NVEM and disk log placement.
  Expected shape: the 0% curve scales linearly with nodes; the 2PC
  curves track it closely with an NVEM log but pay visible response
  time (and ``$/tps``) with a disk log, whose forced prepare/decision
  records serialize on one log disk per node.
* ``ablation_2pc_cost`` — commit-phase latency vs. distributed
  fraction on a fixed four-node cluster, NVEM vs. disk log: the 1PC
  baseline is the x=0 point, and the marginal cost of 2PC is the slope
  — milliseconds per forced-log round trip, dominated by log-device
  latency rather than message CPU.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster import cluster_config, node_scheme
from repro.cluster.workload import ShardedDebitCreditWorkload
from repro.experiments.api import (
    CurveSpec,
    ExperimentSpec,
    SweepProfile,
    experiment,
)
from repro.experiments.runner import ExperimentResult

__all__ = ["CLUSTER_TPS_PER_NODE", "scaling_summary", "twopc_summary"]

#: Per-node arrival rate of the scaling experiment: total offered load
#: grows linearly with the node count, so ideal scaling is a straight
#: line through the origin.
CLUSTER_TPS_PER_NODE = 50.0

#: Distributed fraction of the node-crossing curves (the classic "15%
#: remote account" reading of Debit-Credit's K% rule under sharding).
DISTRIBUTED_FRACTION = 0.15

#: Node count of the 2PC-cost ablation.
ABLATION_NODES = 4


def _cluster_point(num_nodes: int, log: str,
                   distributed_fraction: float) -> Tuple:
    config = cluster_config(scheme=node_scheme(log=log),
                            num_nodes=num_nodes)
    workload = ShardedDebitCreditWorkload.for_cluster(
        config, arrival_rate_per_node=CLUSTER_TPS_PER_NODE,
        distributed_fraction=distributed_fraction,
    )
    return config, workload


# ---------------------------------------------------------------------------
# fig_scaling: throughput vs node count


def _scaling_curves() -> List[CurveSpec]:
    def curve(label, log, fraction):
        def build(x: float) -> Tuple:
            return _cluster_point(int(x), log, fraction)

        return CurveSpec(label=label, build=build)

    return [
        curve("0% distributed, NVEM log", "nvem", 0.0),
        curve("15% distributed, NVEM log", "nvem", DISTRIBUTED_FRACTION),
        curve("15% distributed, disk log", "disk", DISTRIBUTED_FRACTION),
    ]


def scaling_summary(result: ExperimentResult):
    """{label: {nodes: (TPS, response ms, $/tps)}} for tests/reports."""
    return {
        series.label: {
            point.x: (point.results.throughput,
                      point.results.response_time_ms,
                      point.results.dollars_per_tps)
            for point in series.points
        }
        for series in result.series
    }


def _scaling_render(result: ExperimentResult) -> str:
    lines = [result.to_table(metric=lambda r: r.throughput,
                             fmt="{:8.1f}")]
    for series in result.series:
        for point in series.points:
            r = point.results
            lines.append(
                f"  {series.label:26s} nodes={int(point.x)}: "
                f"{r.throughput:6.1f} TPS, "
                f"resp {r.response_time_ms:7.2f} ms, "
                f"commit phase {r.commit_phase_ms:6.3f} ms, "
                f"{r.dist_fraction * 100:5.1f} % distributed, "
                f"{r.dollars_per_tps:8,.0f} $/tps"
            )
    return "\n".join(lines)


@experiment("fig_scaling")
def scaling_spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="fig_scaling",
        title="Cluster throughput scaling: node count x distributed "
              "fraction x log placement",
        x_label="nodes",
        y_label=f"throughput (TPS) at {CLUSTER_TPS_PER_NODE:g} "
                "TPS offered per node",
        curves=_scaling_curves(),
        profiles={
            "full": SweepProfile(xs=(1.0, 2.0, 4.0, 8.0), warmup=3.0,
                                 duration=10.0),
            "fast": SweepProfile(xs=(1.0, 2.0, 4.0), warmup=2.0,
                                 duration=6.0),
        },
        notes=(
            "expected: 0% distributed scales linearly with nodes; 15% "
            "2PC tracks it with an NVEM log but pays response time and "
            "$/tps with a disk log (two forced records per distributed "
            "commit on one log disk per node)",
            "a one-node cluster has no remote accounts: the 15% curves "
            "degenerate to purely local commits at x=1",
        ),
        metric=lambda r: r.throughput,
        metric_fmt="{:8.1f}",
        renderer=_scaling_render,
    )


# ---------------------------------------------------------------------------
# ablation_2pc_cost: commit-phase latency vs distributed fraction


def _twopc_curves() -> List[CurveSpec]:
    def curve(label, log):
        def build(fraction: float) -> Tuple:
            return _cluster_point(ABLATION_NODES, log, fraction)

        return CurveSpec(label=label, build=build)

    return [curve("NVEM log", "nvem"), curve("disk log", "disk")]


def twopc_summary(result: ExperimentResult):
    """{label: {fraction: (commit phase ms, in-doubt s, TPS)}}."""
    return {
        series.label: {
            point.x: (point.results.commit_phase_ms,
                      point.results.in_doubt_time,
                      point.results.throughput)
            for point in series.points
        }
        for series in result.series
    }


def _twopc_render(result: ExperimentResult) -> str:
    lines = [result.to_table(metric=lambda r: r.commit_phase_ms,
                             fmt="{:8.3f}")]
    for series in result.series:
        for point in series.points:
            r = point.results
            lines.append(
                f"  {series.label:9s} dist={point.x:4.2f}: "
                f"commit phase {r.commit_phase_ms:7.3f} ms, "
                f"in-doubt {r.in_doubt_time * 1000:7.3f} ms, "
                f"{r.throughput:6.1f} TPS, "
                f"resp {r.response_time_ms:7.2f} ms"
            )
    return "\n".join(lines)


@experiment("ablation_2pc_cost")
def twopc_spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="ablation_2pc_cost",
        title=f"Commit cost of 2PC on {ABLATION_NODES} nodes: "
              "distributed fraction x log placement",
        x_label="distributed fraction",
        y_label="mean commit phase (ms)",
        curves=_twopc_curves(),
        profiles={
            "full": SweepProfile(xs=(0.0, 0.1, 0.25, 0.5), warmup=3.0,
                                 duration=10.0),
            "fast": SweepProfile(xs=(0.0, 0.25, 0.5), warmup=2.0,
                                 duration=6.0),
        },
        notes=(
            "expected: the x=0 point is the 1PC-local baseline; the "
            "commit phase grows with the distributed fraction and the "
            "NVEM log keeps the 2PC penalty near the message cost "
            "while the disk log pays two forced-record latencies",
        ),
        metric=lambda r: r.commit_phase_ms,
        metric_fmt="{:8.3f}",
        renderer=_twopc_render,
    )
