"""Figure 4.6 — impact of the main-memory buffer size for the
real-life (trace) workload.

The main-memory buffer varies from 100 to 2000 pages; second-level
caches (volatile disk cache, non-volatile disk cache, NVEM cache) have
a fixed 2000-page size.  Complete database allocations to SSD and NVEM
are included for reference.  Response times are normalized to the
paper's "artificial transaction performing the average number of
database accesses".

Expected shape (paper): growing the MM buffer helps most when it is the
only cache; with any second-level cache, good response times are
reached already at small MM sizes.  Volatile and non-volatile disk
caches achieve nearly identical hit ratios on this read-dominated load
(non-volatile slightly faster thanks to buffered log writes); NVEM
caching stays ahead because it avoids double caching (it receives all
pages replaced from main memory, not just modified ones).
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.runner import ExperimentResult, sweep
from repro.experiments.trace_setup import (
    ARRIVAL_RATE,
    MEAN_TX_SIZE,
    trace_config,
    trace_for,
    trace_workload,
)

__all__ = ["CONFIGURATIONS", "run"]

MM_SIZES = [100, 250, 500, 1000, 2000]
FAST_MM_SIZES = [250, 1000]
SECOND_LEVEL = 2000

CONFIGURATIONS = [
    ("MM caching only", "none"),
    ("vol. disk cache 2000", "volatile"),
    ("nv disk cache 2000", "nonvolatile"),
    ("NVEM cache 2000", "nvem"),
    ("SSD", "ssd"),
    ("NVEM-resident", "nvem-resident"),
]


def run(fast: bool = False, duration: float = None,
        parallel: bool = False) -> ExperimentResult:
    sizes = FAST_MM_SIZES if fast else MM_SIZES
    duration = duration or (15.0 if fast else 45.0)
    trace = trace_for(fast)
    result = ExperimentResult(
        experiment_id="Fig4.6",
        title="Impact of MM buffer size for the real-life workload "
              f"({ARRIVAL_RATE:g} TPS, 2nd-level={SECOND_LEVEL})",
        x_label="MM buffer (pages)",
        y_label=f"normalized response time (ms, {MEAN_TX_SIZE:g}-access tx)",
    )
    for label, kind in CONFIGURATIONS:
        def build(mm: float, kind=kind) -> Tuple:
            config = trace_config(trace, kind, int(mm),
                                  second_level=SECOND_LEVEL)
            return config, trace_workload(trace)

        result.series.append(
            sweep(label, sizes, build, warmup=4.0, duration=duration,
                  parallel=parallel and not fast)
        )
    result.notes.append(
        "expected: 2nd-level caches flatten the MM-size curve; volatile "
        "~= non-volatile hit ratios (read-dominated); NVEM cache best"
    )
    return result


def normalized_table(result: ExperimentResult) -> str:
    return result.to_table(
        metric=lambda r: r.normalized_response_time(MEAN_TX_SIZE) * 1000,
        fmt="{:8.1f}",
    )


def main() -> None:  # pragma: no cover - convenience entry point
    print(normalized_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
