"""Figure 4.6 — impact of the main-memory buffer size for the
real-life (trace) workload.

The main-memory buffer varies from 100 to 2000 pages; second-level
caches (volatile disk cache, non-volatile disk cache, NVEM cache) have
a fixed 2000-page size.  Complete database allocations to SSD and NVEM
are included for reference.  Response times are normalized to the
paper's "artificial transaction performing the average number of
database accesses".

Expected shape (paper): growing the MM buffer helps most when it is the
only cache; with any second-level cache, good response times are
reached already at small MM sizes.  Volatile and non-volatile disk
caches achieve nearly identical hit ratios on this read-dominated load
(non-volatile slightly faster thanks to buffered log writes); NVEM
caching stays ahead because it avoids double caching (it receives all
pages replaced from main memory, not just modified ones).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.api import (
    CurveSpec,
    ExperimentRunner,
    ExperimentSpec,
    SweepProfile,
    experiment,
    get_experiment,
    legacy_run,
)
from repro.experiments.runner import ExperimentResult
from repro.experiments.trace_setup import (
    ARRIVAL_RATE,
    MEAN_TX_SIZE,
    trace_config,
    trace_for,
    trace_workload,
)

__all__ = ["CONFIGURATIONS", "normalized_table", "run", "spec"]

MM_SIZES = [100, 250, 500, 1000, 2000]
FAST_MM_SIZES = [250, 1000]
SECOND_LEVEL = 2000

CONFIGURATIONS = [
    ("MM caching only", "none"),
    ("vol. disk cache 2000", "volatile"),
    ("nv disk cache 2000", "nonvolatile"),
    ("NVEM cache 2000", "nvem"),
    ("SSD", "ssd"),
    ("NVEM-resident", "nvem-resident"),
]


def _curves(profile: str) -> List[CurveSpec]:
    trace = trace_for(profile == "fast")

    def curve(label, kind):
        def build(mm: float) -> Tuple:
            config = trace_config(trace, kind, int(mm),
                                  second_level=SECOND_LEVEL)
            return config, trace_workload(trace)

        return CurveSpec(label=label, build=build)

    return [curve(label, kind) for label, kind in CONFIGURATIONS]


def normalized_table(result: ExperimentResult) -> str:
    return result.to_table(
        metric=lambda r: r.normalized_response_time(MEAN_TX_SIZE) * 1000,
        fmt="{:8.1f}",
    )


@experiment("fig4_6")
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="fig4_6",
        title="Impact of MM buffer size for the real-life workload "
              f"({ARRIVAL_RATE:g} TPS, 2nd-level={SECOND_LEVEL})",
        x_label="MM buffer (pages)",
        y_label=f"normalized response time (ms, {MEAN_TX_SIZE:g}-access "
                "tx)",
        curves=_curves,
        profiles={
            "full": SweepProfile(xs=tuple(MM_SIZES), warmup=4.0,
                                 duration=45.0),
            "fast": SweepProfile(xs=tuple(FAST_MM_SIZES), warmup=4.0,
                                 duration=15.0),
        },
        notes=(
            "expected: 2nd-level caches flatten the MM-size curve; "
            "volatile ~= non-volatile hit ratios (read-dominated); NVEM "
            "cache best",
        ),
        metric=lambda r: r.normalized_response_time(MEAN_TX_SIZE) * 1000,
        metric_fmt="{:8.1f}",
    )


def run(fast: bool = False, duration: Optional[float] = None,
        parallel: bool = False) -> ExperimentResult:
    """Deprecated: resolve ``fig4_6`` through the registry instead."""
    return legacy_run("fig4_6", fast, duration, parallel)


def main() -> None:  # pragma: no cover - convenience entry point
    print(normalized_table(ExperimentRunner().run_one(
        get_experiment("fig4_6"))))


if __name__ == "__main__":  # pragma: no cover
    main()
