"""Run every experiment at full resolution and emit EXPERIMENTS.md tables.

Usage::

    python -m repro.experiments.report_all [output-file]

Runs E1–E11 (all figures, Table 4.2, ablations, cost model) with the
full sweep settings and writes the measured tables to the output file
(default: stdout).  Expect a total runtime of some tens of minutes on a
laptop — each point is an independent discrete-event simulation.
"""

from __future__ import annotations

import sys
import time

from repro.analysis.cost import five_minute_rule
from repro.experiments import (
    ablations,
    fig4_1,
    fig4_2,
    fig4_3,
    fig4_4,
    fig4_5,
    fig4_6,
    fig4_7,
    fig4_8,
    table4_2,
)


def main(argv=None) -> None:
    argv = argv if argv is not None else sys.argv[1:]
    out = open(argv[0], "w", encoding="utf-8") if argv else sys.stdout

    def emit(text=""):
        print(text, file=out, flush=True)

    def section(title):
        emit()
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    start = time.time()

    for module, label in (
        (fig4_1, "E1 / Figure 4.1"),
        (fig4_2, "E2 / Figure 4.2"),
        (fig4_3, "E3 / Figure 4.3"),
        (fig4_4, "E4 / Figure 4.4"),
    ):
        section(label)
        emit(module.run().to_table())
        emit(f"[elapsed {time.time() - start:.0f}s]")

    section("E5 / Table 4.2")
    tables = table4_2.run()
    emit(tables["a"].to_table())
    emit()
    emit(tables["b"].to_table())
    emit(f"[elapsed {time.time() - start:.0f}s]")

    section("E6 / Figure 4.5")
    result = fig4_5.run()
    emit(result.to_table())
    emit()
    emit(fig4_5.hit_table(result))
    emit(f"[elapsed {time.time() - start:.0f}s]")

    section("E7 / Figure 4.6")
    emit(fig4_6.normalized_table(fig4_6.run()))
    emit(f"[elapsed {time.time() - start:.0f}s]")

    section("E8 / Figure 4.7")
    emit(fig4_7.normalized_table(fig4_7.run()))
    emit(f"[elapsed {time.time() - start:.0f}s]")

    section("E9 / Figure 4.8")
    emit(fig4_8.run().to_table())
    emit(f"[elapsed {time.time() - start:.0f}s]")

    section("E11 / Ablations")
    emit(ablations.run_group_commit().to_table())
    emit()
    emit(ablations.run_async_replacement().to_table())
    emit()
    emit(ablations.run_deferred_propagation().to_table())
    emit()
    emit("NVEM migration modes (trace workload):")
    for mode, (hit, rt) in ablations.run_migration_modes().items():
        emit(f"  {mode:12s} nvem_hit={hit:5.1f}%  rt={rt:7.1f} ms")
    emit(f"[elapsed {time.time() - start:.0f}s]")

    section("E10 / cost model")
    emit("Gray-Putzolu break-even (1987 parameters): "
         f"{five_minute_rule(page_size_kb=1.0, disk_price=15_000.0, memory_price_per_mb=5_000.0):.0f} s")
    emit(f"[total elapsed {time.time() - start:.0f}s]")

    if out is not sys.stdout:
        out.close()


if __name__ == "__main__":
    main()
