"""Run every registered experiment at full resolution and emit
EXPERIMENTS.md tables.

Usage::

    python -m repro.experiments.report_all [--parallel] [output-file]

Resolves every experiment through the registry
(:mod:`repro.experiments.api`) — figures, Table 4.2 and the ablations —
runs the full sweep profile and writes each spec's rendered table to
the output file (default: stdout), followed by the analytic cost-model
section.  Expect a total runtime of some tens of minutes on a laptop —
each point is an independent discrete-event simulation.  ``--parallel``
schedules all points of all experiments across one worker pool and
produces identical output.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.cost import five_minute_rule
from repro.experiments.api import ExperimentRunner, all_experiments


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="report_all",
        description="regenerate every registered experiment (full sweeps)",
    )
    parser.add_argument("output", nargs="?", default=None,
                        help="output file (default: stdout)")
    parser.add_argument("--parallel", action="store_true",
                        help="evaluate all experiments through one "
                             "figure-wide worker pool")
    parser.add_argument("--profile", choices=("fast", "full"),
                        default="full")
    args = parser.parse_args(argv)
    out = open(args.output, "w", encoding="utf-8") if args.output \
        else sys.stdout

    def emit(text=""):
        print(text, file=out, flush=True)

    def section(title):
        emit()
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    start = time.time()
    runner = ExperimentRunner(parallel=args.parallel)
    specs = all_experiments()

    if args.parallel:
        # One queue across every figure: all points of all curves of
        # all experiments share the worker pool.
        results = runner.run(specs, profile=args.profile)
        for spec in specs:
            section(f"{spec.id}: {spec.title}")
            emit(spec.render(results[spec.id]))
            emit(f"[elapsed {time.time() - start:.0f}s]")
    else:
        for spec in specs:
            section(f"{spec.id}: {spec.title}")
            emit(spec.render(runner.run_one(spec, profile=args.profile)))
            emit(f"[elapsed {time.time() - start:.0f}s]")

    section("cost model")
    emit("Gray-Putzolu break-even (1987 parameters): "
         f"{five_minute_rule(page_size_kb=1.0, disk_price=15_000.0, memory_price_per_mb=5_000.0):.0f} s")
    emit(f"[total elapsed {time.time() - start:.0f}s]")

    if out is not sys.stdout:
        out.close()


if __name__ == "__main__":
    main()
