"""Live progress rendering for in-flight experiment runs (`repro watch`).

A cache-enabled ``repro experiment run`` streams every completed point
into its checkpoint journal (:mod:`repro.experiments.journal`).  This
module tails that journal and renders per-figure progress bars and the
latest point metrics to a terminal — a second shell gets a live view of
a multi-figure sweep without touching the run itself::

    $ repro experiment run --all --profile full --parallel --cache &
    $ repro watch

The renderer is pure (journal view in, string out) so tests can assert
frames without terminals or timing.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, TextIO

from repro.experiments.journal import JournalView, read_run

__all__ = ["render", "watch"]

_BAR_WIDTH = 24
_SPARK = "▁▂▃▄▅▆▇█"


def _bar(done: int, total: int) -> str:
    if total <= 0:
        return "·" * _BAR_WIDTH
    filled = int(round(_BAR_WIDTH * min(done, total) / total))
    return "#" * filled + "·" * (_BAR_WIDTH - filled)


def _sparkline(values: List[float], width: int = _BAR_WIDTH) -> str:
    """Block-character sparkline of the last ``width`` samples."""
    tail = [max(0.0, float(v)) for v in values[-width:]]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return _SPARK[0] * len(tail)
    scale = (len(_SPARK) - 1) / top
    return "".join(_SPARK[int(round(v * scale))] for v in tail)


def _rate_eta(done: int, total: int, first_t: Optional[float],
              last_t: Optional[float]) -> str:
    """``  12.3 pt/min eta 0:42`` from journal point wall-timestamps
    (empty when the journal predates them or has too few points)."""
    if done < 2 or first_t is None or last_t is None or \
            last_t <= first_t:
        return ""
    rate = (done - 1) / (last_t - first_t)
    text = f"  {rate * 60:.1f} pt/min"
    remaining = total - done
    if remaining > 0 and rate > 0:
        eta = int(round(remaining / rate))
        text += f" eta {eta // 60}:{eta % 60:02d}"
    return text


def render(view: JournalView) -> str:
    """One progress frame for a journal view.

    Per experiment: completed/planned points, a bar, and the most
    recent point's x / response time / provenance.  A final line totals
    the run and its cache economics.
    """
    if view.header is None:
        return f"waiting for a run to start ({view.path})"
    header = view.header
    per_exp: Dict[str, int] = dict(header.get("per_experiment", {}))
    done_by_exp: Dict[str, int] = {exp_id: 0 for exp_id in per_exp}
    last_by_exp: Dict[str, Dict] = {}
    first_t_by_exp: Dict[str, float] = {}
    last_t_by_exp: Dict[str, float] = {}
    sources = {"computed": 0, "cache": 0, "resume": 0}
    for point in view.points:
        exp_id = point.get("experiment", "?")
        done_by_exp[exp_id] = done_by_exp.get(exp_id, 0) + 1
        last_by_exp[exp_id] = point
        stamp = point.get("t")
        if stamp is not None:
            first_t_by_exp.setdefault(exp_id, stamp)
            last_t_by_exp[exp_id] = stamp
        source = point.get("source", "computed")
        sources[source] = sources.get(source, 0) + 1

    ids: List[str] = list(per_exp) or sorted(done_by_exp)
    width = max((len(i) for i in ids), default=8)
    lines = [
        "run {} — profile={} seed={} {} experiment(s), {} point(s)".format(
            str(header.get("run_key", "?"))[:12],
            header.get("profile", "?"),
            header.get("seed") if header.get("seed") is not None else "-",
            len(ids), view.total_points,
        )
    ]
    for exp_id in ids:
        total = per_exp.get(exp_id, 0)
        done = done_by_exp.get(exp_id, 0)
        last = last_by_exp.get(exp_id)
        tail = ""
        if last is not None:
            tail = "  last x={:g} {:.2f} ms [{}]{}".format(
                last.get("x", float("nan")),
                last.get("response_ms", float("nan")),
                last.get("source", "computed"),
                " *saturated" if last.get("saturated") else "",
            )
        tail += _rate_eta(done, total, first_t_by_exp.get(exp_id),
                          last_t_by_exp.get(exp_id))
        lines.append(f"{exp_id:<{width}} [{_bar(done, total)}] "
                     f"{done:>3}/{total:<3}{tail}")
        # Telemetry-enabled runs carry a time series per point: show
        # the latest point's TPS trajectory as a sparkline.
        series = (last or {}).get("results", {}).get("timeseries")
        if series:
            tps = [sample.get("tps", 0.0) for sample in series]
            lines.append(f"{'':<{width}}  tps {_sparkline(tps)} "
                         f"(last {tps[-1]:.0f})")
    total_done = len(view.points)
    pct = (100.0 * total_done / view.total_points) if view.total_points \
        else 0.0
    all_t = [p["t"] for p in view.points if p.get("t") is not None]
    overall = _rate_eta(total_done, view.total_points,
                        all_t[0] if all_t else None,
                        all_t[-1] if all_t else None)
    lines.append(
        f"total {total_done}/{view.total_points} ({pct:.0f}%) — "
        f"{sources['computed']} computed, {sources['cache']} cached, "
        f"{sources['resume']} resumed" + overall
    )
    if view.done is not None:
        lines.append(
            "run finished: {} hit(s), {} miss(es) in {:.1f} s".format(
                view.done.get("hits", 0), view.done.get("misses", 0),
                view.done.get("elapsed_s", 0.0),
            )
        )
    return "\n".join(lines)


def watch(path: str, interval: float = 1.0, once: bool = False,
          stream: Optional[TextIO] = None,
          max_frames: Optional[int] = None) -> int:
    """Tail ``path`` and re-render until the run records ``done``.

    ``once`` renders a single frame (scripting/CI); ``max_frames``
    bounds the loop for tests.  Returns 0 when the run completed, 1
    when watching stopped without a completed run.
    """
    out = stream if stream is not None else sys.stdout
    frames = 0
    last_frame = None
    while True:
        view = read_run(path)
        frame = render(view)
        if frame != last_frame:
            out.write(frame + "\n\n")
            out.flush()
            last_frame = frame
        frames += 1
        if view.done is not None:
            return 0
        if once or (max_frames is not None and frames >= max_frames):
            return 1
        time.sleep(interval)
