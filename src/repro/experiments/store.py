"""Content-addressed on-disk store for simulated sweep-point results.

The store is a plain directory of JSON files keyed by
:func:`repro.core.fingerprint.point_fingerprint` — the hash of exactly
the inputs one simulation point depends on (config, workload, run
window, per-point seed, code-version salt).  The
:class:`~repro.experiments.api.ExperimentRunner` consults it before
scheduling a point into the process pool and writes every freshly
computed result back, so re-running a sweep costs only the points whose
inputs changed.

Guarantees:

* **Byte-identical replay** — stored payloads are
  :func:`~repro.experiments.export.results_to_dict` dictionaries;
  :func:`~repro.experiments.export.results_from_dict` reconstructs a
  :class:`~repro.core.metrics.Results` whose export (JSON/CSV, golden
  checksums) is identical to recomputation.  JSON floats round-trip
  exactly (shortest-repr), so a cache hit can never perturb a figure.
* **Atomic writes** — entries are written to a temp file in the same
  directory and ``os.replace``\\ d into place; a crashed or concurrent
  writer can never leave a torn entry.
* **Versioned** — every entry records :data:`STORE_FORMAT`; entries of
  another format (or whose embedded fingerprint mismatches their file
  name) read as misses.
* **Evictable** — :meth:`ResultStore.gc` removes entries by age and/or
  caps total size (oldest-first); :meth:`ResultStore.clear` drops
  everything.

Default location: ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.  Layout::

    <root>/points/<fp[:2]>/<fp>.json    one entry per point fingerprint
    <root>/runs/<run_key>.jsonl         per-run checkpoint journals
    <root>/runs/LATEST                  name of the journal written last
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

from repro.core.metrics import Results
from repro.experiments.export import results_from_dict, results_to_dict

__all__ = ["ResultStore", "STORE_FORMAT", "default_cache_dir"]

#: On-disk entry format; bump on incompatible payload changes so stale
#: entries read as misses instead of mis-parsing.
STORE_FORMAT = 1


def default_cache_dir() -> str:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` >
    ``$XDG_CACHE_HOME/repro`` > ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return str(base / "repro")


class ResultStore:
    """Content-addressed point-result cache rooted at ``root``.

    ``hits``/``misses``/``writes`` count this instance's traffic (the
    runner aggregates its own per-run stats; these are for ``repro
    cache stats`` style introspection and tests).
    """

    def __init__(self, root: Optional[str] = None):
        self.root = Path(root if root is not None else default_cache_dir())
        self.points_dir = self.root / "points"
        self.runs_dir = self.root / "runs"
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r})"

    # -- point entries -----------------------------------------------------
    def _path(self, fp: str) -> Path:
        return self.points_dir / fp[:2] / f"{fp}.json"

    def get(self, fp: str) -> Optional[Results]:
        """The cached :class:`Results` for ``fp``, or ``None`` on miss.

        Any unreadable, torn, mismatched or differently-versioned entry
        is a miss — the caller recomputes and overwrites it.
        """
        try:
            with open(self._path(fp), encoding="utf-8") as fh:
                entry = json.load(fh)
            if entry.get("format") != STORE_FORMAT:
                raise ValueError("incompatible store format")
            if entry.get("fingerprint") != fp:
                raise ValueError("entry/fingerprint mismatch")
            results = results_from_dict(entry["results"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return results

    def put(self, fp: str, results: Results) -> None:
        """Atomically store ``results`` under ``fp``."""
        path = self._path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": STORE_FORMAT,
            "fingerprint": fp,
            "created": time.time(),
            "results": results_to_dict(results),
        }
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    def __contains__(self, fp: str) -> bool:
        return self._path(fp).is_file()

    # -- maintenance -------------------------------------------------------
    def _entries(self):
        if not self.points_dir.is_dir():
            return
        for path in self.points_dir.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            yield path, stat

    def stats(self) -> Dict:
        """Entry count and byte totals (plus this instance's traffic)."""
        count = 0
        total_bytes = 0
        oldest = newest = None
        for _path, stat in self._entries():
            count += 1
            total_bytes += stat.st_size
            mtime = stat.st_mtime
            oldest = mtime if oldest is None else min(oldest, mtime)
            newest = mtime if newest is None else max(newest, mtime)
        return {
            "root": str(self.root),
            "entries": count,
            "bytes": total_bytes,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
            "session": {"hits": self.hits, "misses": self.misses,
                        "writes": self.writes},
        }

    def gc(self, max_age_days: Optional[float] = None,
           max_bytes: Optional[int] = None) -> Dict:
        """Evict entries older than ``max_age_days`` and/or oldest-first
        until the store fits in ``max_bytes``.  Returns removal counts.
        """
        entries = sorted(self._entries(), key=lambda e: e[1].st_mtime)
        now = time.time()
        total = sum(stat.st_size for _p, stat in entries)
        removed = 0
        freed = 0
        for path, stat in entries:
            too_old = (max_age_days is not None and
                       now - stat.st_mtime > max_age_days * 86400.0)
            too_big = max_bytes is not None and total - freed > max_bytes
            if not (too_old or too_big):
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += stat.st_size
        return {"removed": removed, "freed_bytes": freed,
                "kept": len(entries) - removed,
                "kept_bytes": total - freed}

    def clear(self) -> int:
        """Remove every point entry; returns the number removed."""
        removed = 0
        for path, _stat in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
