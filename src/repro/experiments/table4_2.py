"""Table 4.2 — main memory and second-level cache hit ratios (%).

Part (a) uses NOFORCE, part (b) FORCE; main-memory buffer sizes 200 to
2000 pages against a volatile disk cache (1000), a non-volatile disk
cache (1000) and NVEM caches (1000, and 500 for NOFORCE).

Expected values (paper):

========================  =====  =====  =====  =====
(a) NOFORCE               200    500    1000   2000
========================  =====  =====  =====  =====
main memory               53.7   59.6   66.7   72.5
vol. disk cache 1000      12.8    5.6   0      0
nv disk cache 1000        13.0    7.4   3.8    0.8
NVEM cache 1000           14.8   11.0   5.7    1.1
NVEM cache 500             9.2    7.1   3.9    0.8
========================  =====  =====  =====  =====

========================  =====  =====  =====  =====
(b) FORCE                 200    500    1000   2000
========================  =====  =====  =====  =====
main memory               53.7   59.6   66.7   72.5
vol. disk cache 1000      12.4    6.9   0.1    0
nv disk cache 1000        12.8    7.0   0.1    0
NVEM cache 1000           13.1    7.2   3.4    0.6
========================  =====  =====  =====  =====
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.config import UpdateStrategy
from repro.core.model import TransactionSystem
from repro.experiments.defaults import (
    debit_credit_config,
    second_level_cache_scheme,
)
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["HitRatioTable", "run"]

BUFFER_SIZES = [200, 500, 1000, 2000]
FAST_BUFFER_SIZES = [200, 1000]
ARRIVAL_RATE = 500.0

ROWS_NOFORCE = [
    ("vol. disk cache 1000", "volatile", 1000),
    ("nv disk cache 1000", "nonvolatile", 1000),
    ("NVEM cache 1000", "nvem", 1000),
    ("NVEM cache 500", "nvem", 500),
]

ROWS_FORCE = [
    ("vol. disk cache 1000", "volatile", 1000),
    ("nv disk cache 1000", "nonvolatile", 1000),
    ("NVEM cache 1000", "nvem", 1000),
]


@dataclass
class HitRatioTable:
    """Measured reproduction of Table 4.2 (one update strategy)."""

    strategy: str
    buffer_sizes: List[int]
    #: row label -> {mm size -> (mm hit %, 2nd-level hit %)}
    cells: Dict[str, Dict[int, Tuple[float, float]]] = field(
        default_factory=dict
    )

    def to_table(self) -> str:
        header = f"{'':24s}" + "".join(
            f" {size:>12d}" for size in self.buffer_sizes
        )
        lines = [
            f"Table 4.2 ({self.strategy}): hit ratios (%) — "
            "mm / 2nd-level",
            header,
            "-" * len(header),
        ]
        first_row = next(iter(self.cells.values()), {})
        mm_cells = "".join(
            f" {first_row.get(size, (0.0, 0.0))[0]:>12.1f}"
            for size in self.buffer_sizes
        )
        lines.append(f"{'main memory':24s}" + mm_cells)
        for label, row in self.cells.items():
            cells = "".join(
                f" {row.get(size, (0.0, 0.0))[1]:>12.1f}"
                for size in self.buffer_sizes
            )
            lines.append(f"{label:24s}" + cells)
        return "\n".join(lines)


def _measure(kind: str, size: int, mm_size: int,
             strategy: UpdateStrategy,
             duration: float) -> Tuple[float, float]:
    config = debit_credit_config(
        second_level_cache_scheme(kind, size),
        update_strategy=strategy,
        buffer_size=mm_size,
    )
    system = TransactionSystem(config,
                               DebitCreditWorkload(arrival_rate=ARRIVAL_RATE))
    results = system.run(warmup=3.0, duration=duration)
    mm_hit = results.hit_ratio("main_memory") * 100
    second = (results.hit_ratio("nvem_cache")
              + results.hit_ratio("disk_cache")) * 100
    return mm_hit, second


def run(fast: bool = False, duration: float = None
        ) -> Dict[str, HitRatioTable]:
    """Measure both halves of Table 4.2; returns {"a": ..., "b": ...}."""
    sizes = FAST_BUFFER_SIZES if fast else BUFFER_SIZES
    duration = duration or (4.0 if fast else 8.0)
    tables: Dict[str, HitRatioTable] = {}
    for part, strategy, rows in (
        ("a", UpdateStrategy.NOFORCE, ROWS_NOFORCE),
        ("b", UpdateStrategy.FORCE, ROWS_FORCE),
    ):
        table = HitRatioTable(strategy=strategy.value.upper(),
                              buffer_sizes=list(sizes))
        for label, kind, size in rows:
            row: Dict[int, Tuple[float, float]] = {}
            for mm_size in sizes:
                row[mm_size] = _measure(kind, size, mm_size, strategy,
                                        duration)
            table.cells[label] = row
        tables[part] = table
    return tables


def main() -> None:  # pragma: no cover - convenience entry point
    tables = run()
    print(tables["a"].to_table())
    print()
    print(tables["b"].to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
