"""Table 4.2 — main memory and second-level cache hit ratios (%).

Part (a) uses NOFORCE, part (b) FORCE; main-memory buffer sizes 200 to
2000 pages against a volatile disk cache (1000), a non-volatile disk
cache (1000) and NVEM caches (1000, and 500 for NOFORCE).

Expected values (paper):

========================  =====  =====  =====  =====
(a) NOFORCE               200    500    1000   2000
========================  =====  =====  =====  =====
main memory               53.7   59.6   66.7   72.5
vol. disk cache 1000      12.8    5.6   0      0
nv disk cache 1000        13.0    7.4   3.8    0.8
NVEM cache 1000           14.8   11.0   5.7    1.1
NVEM cache 500             9.2    7.1   3.9    0.8
========================  =====  =====  =====  =====

========================  =====  =====  =====  =====
(b) FORCE                 200    500    1000   2000
========================  =====  =====  =====  =====
main memory               53.7   59.6   66.7   72.5
vol. disk cache 1000      12.4    6.9   0.1    0
nv disk cache 1000        12.8    7.0   0.1    0
NVEM cache 1000           13.1    7.2   3.4    0.6
========================  =====  =====  =====  =====
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import UpdateStrategy
from repro.experiments.api import (
    CurveSpec,
    ExperimentRunner,
    ExperimentSpec,
    SweepProfile,
    experiment,
    get_experiment,
    legacy_run,
)
from repro.experiments.defaults import (
    debit_credit_config,
    second_level_cache_scheme,
)
from repro.experiments.runner import ExperimentResult
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["HitRatioTable", "hit_tables", "run", "spec"]

BUFFER_SIZES = [200, 500, 1000, 2000]
FAST_BUFFER_SIZES = [200, 1000]
ARRIVAL_RATE = 500.0

#: (part, strategy, row label, cache kind, cache size); series labels
#: are "<STRATEGY>: <row label>".
ROWS = [
    ("a", UpdateStrategy.NOFORCE, "vol. disk cache 1000", "volatile", 1000),
    ("a", UpdateStrategy.NOFORCE, "nv disk cache 1000", "nonvolatile", 1000),
    ("a", UpdateStrategy.NOFORCE, "NVEM cache 1000", "nvem", 1000),
    ("a", UpdateStrategy.NOFORCE, "NVEM cache 500", "nvem", 500),
    ("b", UpdateStrategy.FORCE, "vol. disk cache 1000", "volatile", 1000),
    ("b", UpdateStrategy.FORCE, "nv disk cache 1000", "nonvolatile", 1000),
    ("b", UpdateStrategy.FORCE, "NVEM cache 1000", "nvem", 1000),
]


@dataclass
class HitRatioTable:
    """Measured reproduction of Table 4.2 (one update strategy)."""

    strategy: str
    buffer_sizes: List[int]
    #: row label -> {mm size -> (mm hit %, 2nd-level hit %)}
    cells: Dict[str, Dict[int, Tuple[float, float]]] = field(
        default_factory=dict
    )

    def to_table(self) -> str:
        header = f"{'':24s}" + "".join(
            f" {size:>12d}" for size in self.buffer_sizes
        )
        lines = [
            f"Table 4.2 ({self.strategy}): hit ratios (%) — "
            "mm / 2nd-level",
            header,
            "-" * len(header),
        ]
        first_row = next(iter(self.cells.values()), {})
        mm_cells = "".join(
            f" {first_row.get(size, (0.0, 0.0))[0]:>12.1f}"
            for size in self.buffer_sizes
        )
        lines.append(f"{'main memory':24s}" + mm_cells)
        for label, row in self.cells.items():
            cells = "".join(
                f" {row.get(size, (0.0, 0.0))[1]:>12.1f}"
                for size in self.buffer_sizes
            )
            lines.append(f"{label:24s}" + cells)
        return "\n".join(lines)


def _curves() -> List[CurveSpec]:
    def curve(strategy, label, kind, size):
        def build(mm: float) -> Tuple:
            config = debit_credit_config(
                second_level_cache_scheme(kind, size),
                update_strategy=strategy,
                buffer_size=int(mm),
            )
            workload = DebitCreditWorkload(arrival_rate=ARRIVAL_RATE)
            return config, workload

        return CurveSpec(
            label=f"{strategy.value.upper()}: {label}", build=build,
        )

    return [curve(strategy, label, kind, size)
            for _, strategy, label, kind, size in ROWS]


def hit_tables(result: ExperimentResult) -> Dict[str, HitRatioTable]:
    """Rebuild both halves of Table 4.2 from the uniform result."""
    tables: Dict[str, HitRatioTable] = {}
    for part, strategy in (("a", UpdateStrategy.NOFORCE),
                           ("b", UpdateStrategy.FORCE)):
        prefix = f"{strategy.value.upper()}: "
        table = HitRatioTable(strategy=strategy.value.upper(),
                              buffer_sizes=[])
        sizes: List[int] = []
        for series in result.series:
            if not series.label.startswith(prefix):
                continue
            row: Dict[int, Tuple[float, float]] = {}
            for point in series.points:
                mm = int(point.x)
                if mm not in sizes:
                    sizes.append(mm)
                r = point.results
                row[mm] = (
                    r.hit_ratio("main_memory") * 100,
                    (r.hit_ratio("nvem_cache")
                     + r.hit_ratio("disk_cache")) * 100,
                )
            table.cells[series.label[len(prefix):]] = row
        table.buffer_sizes = sorted(sizes)
        tables[part] = table
    return tables


def _render(result: ExperimentResult) -> str:
    tables = hit_tables(result)
    return tables["a"].to_table() + "\n\n" + tables["b"].to_table()


@experiment("table4_2")
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="table4_2",
        title="MM and 2nd-level cache hit ratios "
              f"(Debit-Credit, {ARRIVAL_RATE:g} TPS)",
        x_label="MM buffer (pages)",
        y_label="2nd-level hit ratio (%)",
        curves=_curves(),
        profiles={
            "full": SweepProfile(xs=tuple(BUFFER_SIZES), warmup=3.0,
                                 duration=8.0),
            "fast": SweepProfile(xs=tuple(FAST_BUFFER_SIZES), warmup=3.0,
                                 duration=4.0),
        },
        notes=(
            "expected: NVEM cache best 2nd-level hit ratios under "
            "NOFORCE; FORCE lowers them; volatile ~ nonvolatile under "
            "FORCE",
        ),
        metric=lambda r: (r.hit_ratio("nvem_cache")
                          + r.hit_ratio("disk_cache")) * 100,
        metric_fmt="{:8.1f}",
        renderer=_render,
        # Hit-ratio tables report every cell; curves are not truncated.
        truncate_on_saturation=False,
    )


def run(fast: bool = False, duration: Optional[float] = None,
        parallel: bool = False) -> Dict[str, HitRatioTable]:
    """Deprecated: resolve ``table4_2`` through the registry instead.

    Returns ``{"a": HitRatioTable, "b": HitRatioTable}`` like the
    historical interface.
    """
    return hit_tables(legacy_run("table4_2", fast, duration, parallel))


def main() -> None:  # pragma: no cover - convenience entry point
    result = ExperimentRunner().run_one(get_experiment("table4_2"))
    print(_render(result))


if __name__ == "__main__":  # pragma: no cover
    main()
