"""Per-run checkpoint journals: append-only JSONL records of a sweep.

A journal makes one ``repro experiment run`` invocation *resumable* and
*observable*:

* **Resumable** — every completed point is appended (and flushed) as
  its own line, full serialized :class:`~repro.core.metrics.Results`
  included.  An interrupted run leaves a valid journal behind;
  ``--resume`` reloads it and recomputes only the missing points.
* **Observable** — ``repro watch`` tails the file and renders live
  per-figure progress (:mod:`repro.experiments.watch`).

Format (one JSON object per line)::

    {"type": "header", "version": 1, "run_key": ..., "ids": [...],
     "profile": ..., "seed": ..., "total_points": N,
     "per_experiment": {id: n}, ...}
    {"type": "point", "experiment": ..., "series": ..., "x": ...,
     "fingerprint": ..., "source": "computed|cache|resume",
     "response_ms": ..., "throughput": ..., "saturated": ...,
     "results": {...}}
    {"type": "done", "hits": ..., "misses": ..., ...}

The ``run_key`` identifies the *command* (experiment ids, profile, seed
override, duration override, code-version salt): ``--resume`` only
reuses a journal whose run key matches, so a journal from different
code or a different selection can never leak stale points into a run.
A torn final line (the writer died mid-append) is ignored on read.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["JOURNAL_VERSION", "JournalView", "RunJournal",
           "find_latest_journal", "read_run"]

JOURNAL_VERSION = 1

#: Name of the marker file (inside a runs directory) holding the file
#: name of the journal most recently written — what ``repro watch``
#: follows by default.
LATEST_MARKER = "LATEST"


@dataclass
class JournalView:
    """A parsed journal: header, point records, optional done record."""

    path: str
    header: Optional[Dict] = None
    points: List[Dict] = field(default_factory=list)
    done: Optional[Dict] = None

    @property
    def total_points(self) -> int:
        if self.header is None:
            return 0
        return int(self.header.get("total_points", 0))


def read_run(path: str) -> JournalView:
    """Parse a journal file, tolerating a torn trailing line."""
    view = JournalView(path=str(path))
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError:
        return view
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            # A writer died mid-append; everything before is valid.
            break
        kind = record.get("type")
        if kind == "header" and view.header is None:
            view.header = record
        elif kind == "point":
            view.points.append(record)
        elif kind == "done":
            view.done = record
    return view


class RunJournal:
    """Append-only writer for one run's journal file."""

    def __init__(self, path: str):
        self.path = str(path)
        self._fh = None

    # -- lifecycle ---------------------------------------------------------
    def load_for_resume(self, run_key: str) -> Optional[JournalView]:
        """The existing journal, if it belongs to the same run.

        Returns ``None`` (caller starts fresh) when the file is missing
        or was written by a different command/run key.
        """
        view = read_run(self.path)
        if view.header is None:
            return None
        if view.header.get("version") != JOURNAL_VERSION:
            return None
        if view.header.get("run_key") != run_key:
            return None
        return view

    def start(self, header: Dict, append: bool = False) -> None:
        """Open the journal; write ``header`` unless appending to a
        resumed file (whose header is already on disk)."""
        path = Path(self.path)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a" if append else "w",
                        encoding="utf-8")
        if not append:
            self._write({"type": "header", "version": JOURNAL_VERSION,
                         "created": time.time(), **header})
        marker = path.parent / LATEST_MARKER
        try:
            marker.write_text(path.name + "\n", encoding="utf-8")
        except OSError:  # pragma: no cover - marker is best-effort
            pass

    def record_point(self, record: Dict) -> None:
        self._write({"type": "point", **record})

    def finish(self, summary: Dict) -> None:
        self._write({"type": "done", "finished": time.time(), **summary})
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- internals ---------------------------------------------------------
    def _write(self, record: Dict) -> None:
        if self._fh is None:
            raise RuntimeError("journal not started")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        # Flush per record: a tail -f / `repro watch` reader and a
        # post-crash resume both see every completed point.
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:  # pragma: no cover - fsync is best-effort
            pass


def find_latest_journal(runs_dir: str) -> Optional[str]:
    """The journal to watch by default: the LATEST marker if valid,
    else the most recently modified ``*.jsonl`` in ``runs_dir``."""
    base = Path(runs_dir)
    marker = base / LATEST_MARKER
    try:
        name = marker.read_text(encoding="utf-8").strip()
        candidate = base / name
        if name and candidate.is_file():
            return str(candidate)
    except OSError:
        pass
    journals = sorted(base.glob("*.jsonl"),
                      key=lambda p: p.stat().st_mtime, reverse=True)
    return str(journals[0]) if journals else None
