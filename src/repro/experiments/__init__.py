"""Experiment harness regenerating every figure and table of §4.

Modules:

* :mod:`repro.experiments.api` — the experiment API: declarative
  :class:`~repro.experiments.api.ExperimentSpec`\\ s, the
  ``@experiment`` registry and the figure-wide
  :class:`~repro.experiments.api.ExperimentRunner`.
* :mod:`repro.experiments.defaults` — Table 4.1 parameter settings and
  storage-scheme builders.
* :mod:`repro.experiments.runner` — sweep machinery and ASCII tables.
* ``fig4_1`` … ``fig4_8``, ``table4_2`` — one module per paper
  artifact, each registering a spec (``@experiment("fig4_1")`` …).
* :mod:`repro.experiments.ablations` — group commit, asynchronous
  replacement, deferred NVEM propagation, NVEM migration modes.
* :mod:`repro.experiments.trace_setup` — shared setup for §4.6/4.7.
* :mod:`repro.experiments.export` — JSON/CSV result exports.

Run everything and write EXPERIMENTS.md tables::

    python -m repro.experiments.report_all

or through the CLI registry surface::

    python -m repro experiment list
    python -m repro experiment run --all --profile fast --parallel
"""

from repro.experiments.api import (
    CurveSpec,
    ExperimentRunner,
    ExperimentSpec,
    SweepProfile,
    all_experiments,
    experiment,
    experiment_ids,
    get_experiment,
)
from repro.experiments.runner import (
    ExperimentResult,
    Series,
    SeriesPoint,
    sweep,
)

__all__ = [
    "CurveSpec",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "Series",
    "SeriesPoint",
    "SweepProfile",
    "all_experiments",
    "experiment",
    "experiment_ids",
    "get_experiment",
    "sweep",
]
