"""Experiment harness regenerating every figure and table of §4.

Modules:

* :mod:`repro.experiments.defaults` — Table 4.1 parameter settings and
  storage-scheme builders.
* :mod:`repro.experiments.runner` — sweep machinery and ASCII tables.
* ``fig4_1`` … ``fig4_8``, ``table4_2`` — one module per paper
  artifact, each exposing ``run(fast=False)``.
* :mod:`repro.experiments.ablations` — group commit, asynchronous
  replacement, deferred NVEM propagation, NVEM migration modes.
* :mod:`repro.experiments.trace_setup` — shared setup for §4.6/4.7.

Run everything and write EXPERIMENTS.md tables::

    python -m repro.experiments.report_all
"""

from repro.experiments.runner import ExperimentResult, Series, SeriesPoint, sweep

__all__ = ["ExperimentResult", "Series", "SeriesPoint", "sweep"]
