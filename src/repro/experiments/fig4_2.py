"""Figure 4.2 — impact of database allocation (Debit-Credit, NOFORCE).

Six alternatives for allocating database partitions and the log:

1. everything on plain disks;
2. disks with non-volatile caches used as write buffers;
3. plain disks with a write buffer in NVEM;
4. everything on solid-state disks;
5. everything NVEM-resident;
6. database main-memory-resident, log on disk.

Expected shape (paper): disk slowest; the two write-buffer variants cut
response times roughly in half (the NVEM write buffer marginally
better); SSD and NVEM-resident are fastest; memory-resident sits above
NVEM-resident by exactly the log-disk latency, and overtakes SSD only
near CPU saturation.
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    disk_with_nv_cache_write_buffer,
    memory_resident,
    nvem_resident,
    nvem_write_buffer,
    ssd_resident,
)
from repro.experiments.runner import ExperimentResult, sweep
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["ALTERNATIVES", "run"]

RATES = [10, 100, 200, 300, 400, 500, 600, 700]
FAST_RATES = [100, 500]

ALTERNATIVES = [
    ("disk", disk_only),
    ("disk cache WB", disk_with_nv_cache_write_buffer),
    ("NVEM WB", nvem_write_buffer),
    ("SSD", ssd_resident),
    ("NVEM-resident", nvem_resident),
    ("memory+log disk", memory_resident),
]


def run(fast: bool = False, duration: float = None,
        parallel: bool = False) -> ExperimentResult:
    rates = FAST_RATES if fast else RATES
    duration = duration or (4.0 if fast else 8.0)
    result = ExperimentResult(
        experiment_id="Fig4.2",
        title="Impact of database allocation (Debit-Credit, NOFORCE)",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms); * = saturated",
    )
    for label, scheme_fn in ALTERNATIVES:
        def build(rate: float, scheme_fn=scheme_fn) -> Tuple:
            config = debit_credit_config(scheme_fn())
            workload = DebitCreditWorkload(arrival_rate=rate)
            return config, workload

        result.series.append(
            sweep(label, rates, build, warmup=3.0, duration=duration,
                  parallel=parallel and not fast)
        )
    result.notes.append(
        "expected: disk > write-buffer variants (factor ~2) > memory "
        "> SSD > NVEM; memory = NVEM + one 6.4 ms log I/O"
    )
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
