"""Figure 4.2 — impact of database allocation (Debit-Credit, NOFORCE).

Six alternatives for allocating database partitions and the log:

1. everything on plain disks;
2. disks with non-volatile caches used as write buffers;
3. plain disks with a write buffer in NVEM;
4. everything on solid-state disks;
5. everything NVEM-resident;
6. database main-memory-resident, log on disk.

Expected shape (paper): disk slowest; the two write-buffer variants cut
response times roughly in half (the NVEM write buffer marginally
better); SSD and NVEM-resident are fastest; memory-resident sits above
NVEM-resident by exactly the log-disk latency, and overtakes SSD only
near CPU saturation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.api import (
    CurveSpec,
    ExperimentRunner,
    ExperimentSpec,
    SweepProfile,
    experiment,
    get_experiment,
    legacy_run,
)
from repro.experiments.defaults import (
    debit_credit_config,
    disk_only,
    disk_with_nv_cache_write_buffer,
    memory_resident,
    nvem_resident,
    nvem_write_buffer,
    ssd_resident,
)
from repro.experiments.runner import ExperimentResult
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["ALTERNATIVES", "run", "spec"]

RATES = [10, 100, 200, 300, 400, 500, 600, 700]
FAST_RATES = [100, 500]

ALTERNATIVES = [
    ("disk", disk_only),
    ("disk cache WB", disk_with_nv_cache_write_buffer),
    ("NVEM WB", nvem_write_buffer),
    ("SSD", ssd_resident),
    ("NVEM-resident", nvem_resident),
    ("memory+log disk", memory_resident),
]


def _curves() -> List[CurveSpec]:
    def curve(label, scheme_fn):
        def build(rate: float) -> Tuple:
            config = debit_credit_config(scheme_fn())
            workload = DebitCreditWorkload(arrival_rate=rate)
            return config, workload

        return CurveSpec(label=label, build=build)

    return [curve(label, scheme_fn) for label, scheme_fn in ALTERNATIVES]


@experiment("fig4_2")
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        id="fig4_2",
        title="Impact of database allocation (Debit-Credit, NOFORCE)",
        x_label="arrival rate (TPS)",
        y_label="mean response time (ms); * = saturated",
        curves=_curves(),
        profiles={
            "full": SweepProfile(xs=tuple(RATES), warmup=3.0, duration=8.0),
            "fast": SweepProfile(xs=tuple(FAST_RATES), warmup=3.0,
                                 duration=4.0),
        },
        notes=(
            "expected: disk > write-buffer variants (factor ~2) > memory "
            "> SSD > NVEM; memory = NVEM + one 6.4 ms log I/O",
        ),
    )


def run(fast: bool = False, duration: Optional[float] = None,
        parallel: bool = False) -> ExperimentResult:
    """Deprecated: resolve ``fig4_2`` through the registry instead."""
    return legacy_run("fig4_2", fast, duration, parallel)


def main() -> None:  # pragma: no cover - convenience entry point
    print(ExperimentRunner().run_one(get_experiment("fig4_2")).to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
