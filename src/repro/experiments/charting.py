"""ASCII line charts for experiment results.

The paper presents its results as x/y plots (response time over arrival
rate or buffer size).  :func:`render_chart` draws an
:class:`~repro.experiments.runner.ExperimentResult` as a terminal line
chart so the figures can be eyeballed without a plotting stack — the
only hard dependency of this package is numpy.

Example output (Fig. 4.1 shape)::

    ms
    120.0 |                                    1
          |                               1
     80.0 |                         1
          |              1
     40.0 | 4#2=3============2========3========4
          +-------------------------------------
            10        200       500        700   TPS
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from repro.core.metrics import Results
from repro.experiments.runner import ExperimentResult

__all__ = ["render_chart"]

#: Series markers, assigned in order; collisions show the later marker.
_MARKERS = "123456789"


def _nice_ticks(low: float, high: float, count: int = 4) -> List[float]:
    """A few round tick values covering [low, high]."""
    if high <= low:
        return [low]
    span = high - low
    step = 10 ** math.floor(math.log10(span / max(count, 1)))
    for factor in (1, 2, 5, 10):
        if span / (step * factor) <= count:
            step *= factor
            break
    first = math.ceil(low / step) * step
    ticks = []
    value = first
    while value <= high + 1e-12:
        ticks.append(value)
        value += step
    return ticks or [low]


def render_chart(result: ExperimentResult,
                 metric: Optional[Callable[[Results], float]] = None,
                 width: int = 64, height: int = 16,
                 log_x: bool = False) -> str:
    """Render the experiment's series as an ASCII line chart.

    ``metric`` defaults to mean response time in milliseconds.
    Saturated points are drawn as ``*`` regardless of series marker.
    """
    if metric is None:
        metric = lambda r: r.response_time_ms  # noqa: E731
    if width < 16 or height < 4:
        raise ValueError("chart needs width >= 16 and height >= 4")

    points = []  # (x, y, marker, saturated)
    for index, series in enumerate(result.series):
        marker = _MARKERS[index % len(_MARKERS)]
        for point in series.points:
            points.append((point.x, metric(point.results), marker,
                           point.saturated))
    if not points:
        return f"{result.experiment_id}: (no data)"

    def x_transform(x: float) -> float:
        return math.log10(x) if log_x and x > 0 else x

    xs = [x_transform(p[0]) for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_high == y_low:
        y_high = y_low + 1.0
    if x_high == x_low:
        x_high = x_low + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        frac = (x_transform(x) - x_low) / (x_high - x_low)
        return min(width - 1, max(0, int(round(frac * (width - 1)))))

    def to_row(y: float) -> int:
        frac = (y - y_low) / (y_high - y_low)
        return min(height - 1,
                   max(0, height - 1 - int(round(frac * (height - 1)))))

    # Connect consecutive points of each series with interpolation.
    for index, series in enumerate(result.series):
        marker = _MARKERS[index % len(_MARKERS)]
        pts = [(p.x, metric(p.results), p.saturated)
               for p in series.points]
        for (x0, y0, _), (x1, y1, _) in zip(pts, pts[1:]):
            c0, c1 = to_col(x0), to_col(x1)
            if c1 <= c0:
                continue
            for col in range(c0, c1 + 1):
                frac = (col - c0) / (c1 - c0)
                y = y0 + (y1 - y0) * frac
                row = to_row(y)
                if grid[row][col] == " ":
                    grid[row][col] = "."
        for x, y, saturated in pts:
            grid[to_row(y)][to_col(x)] = "*" if saturated else marker

    # Assemble with a y-axis.
    y_ticks = {to_row(t): t for t in _nice_ticks(y_low, y_high, height // 4)
               if y_low <= t <= y_high}
    lines = [f"{result.experiment_id}: {result.title}"]
    for index, series in enumerate(result.series):
        marker = _MARKERS[index % len(_MARKERS)]
        lines.append(f"  {marker} = {series.label}")
    lines.append(f"({result.y_label})")
    for row in range(height):
        tick = y_ticks.get(row)
        label = f"{tick:10.1f} |" if tick is not None else " " * 10 + " |"
        lines.append(label + "".join(grid[row]))
    lines.append(" " * 11 + "+" + "-" * width)
    x_tick_line = [" "] * (width + 12)
    for tick in _nice_ticks(x_low, x_high, 5):
        raw = 10 ** tick if log_x else tick
        col = 12 + min(width - 1, max(0, int(round(
            (tick - x_low) / (x_high - x_low) * (width - 1)
        ))))
        text = f"{raw:g}"
        for offset, char in enumerate(text):
            pos = col + offset
            if pos < len(x_tick_line):
                x_tick_line[pos] = char
    lines.append("".join(x_tick_line) + f"  ({result.x_label})")
    return "\n".join(lines)
